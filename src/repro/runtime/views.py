"""Typed access to simulated memory — the stand-in for compiled C code.

Native (Python-bodied) processes touch shared segments through
:class:`Mem`, whose every load and store runs under the kernel's
fault-delivery machinery (:meth:`Kernel.run_with_faults`). Dereferencing
a pointer into a segment that is not yet mapped therefore behaves exactly
as it does for machine code: SIGSEGV, the Hemlock handler maps the
segment (or runs the lazy linker), and the access restarts.

:class:`StructDef` describes a C-struct-like record layout once;
:class:`StructView` reads and writes one record instance at an address.
Because public segments sit at the same virtual address in every
process, pointer fields hold plain absolute addresses and work from any
protection domain — the paper's central payoff.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_U16 = struct.Struct("<H")

_FIELD_SIZES = {"u8": 1, "u16": 2, "u32": 4, "i32": 4, "ptr": 4}
_FIELD_ALIGN = {"u8": 1, "u16": 2, "u32": 4, "i32": 4, "ptr": 4}


class Mem:
    """Fault-transparent memory accessor for one process.

    Each access also charges the cost-model clock a few instruction
    cycles, since a native process stands in for compiled code whose
    loads and stores are real instructions — without this, "shared
    memory is faster" comparisons would divide by zero.
    """

    # Roughly: address computation + the load/store itself.
    SCALAR_ACCESS_CYCLES = 4

    def __init__(self, kernel: Kernel, proc: Process) -> None:
        self.kernel = kernel
        self.proc = proc

    def _charge_scalar(self) -> None:
        self.kernel.clock.charge("user_memory", self.SCALAR_ACCESS_CYCLES)

    # -- scalar loads/stores -------------------------------------------

    def load_u32(self, address: int) -> int:
        self._charge_scalar()
        return self.kernel.run_with_faults(
            self.proc, lambda: self.proc.address_space.load_word(address)
        )

    def store_u32(self, address: int, value: int) -> None:
        self._charge_scalar()
        self.kernel.run_with_faults(
            self.proc,
            lambda: self.proc.address_space.store_word(address, value),
        )

    def load_i32(self, address: int) -> int:
        return _I32.unpack(_U32.pack(self.load_u32(address)))[0]

    def store_i32(self, address: int, value: int) -> None:
        self.store_u32(address, _U32.unpack(_I32.pack(value))[0])

    def load_u16(self, address: int) -> int:
        return _U16.unpack(self.load_bytes(address, 2))[0]

    def store_u16(self, address: int, value: int) -> None:
        self.store_bytes(address, _U16.pack(value & 0xFFFF))

    def load_u8(self, address: int) -> int:
        return self.load_bytes(address, 1)[0]

    def store_u8(self, address: int, value: int) -> None:
        self.store_bytes(address, bytes([value & 0xFF]))

    # -- bulk ----------------------------------------------------------

    def load_bytes(self, address: int, length: int) -> bytes:
        self.kernel.clock.copy(length)
        return self.kernel.run_with_faults(
            self.proc,
            lambda: self.proc.address_space.read_bytes(address, length),
        )

    def store_bytes(self, address: int, data: bytes) -> None:
        self.kernel.clock.copy(len(data))
        self.kernel.run_with_faults(
            self.proc,
            lambda: self.proc.address_space.write_bytes(address, data),
        )

    # -- strings -------------------------------------------------------

    def load_cstring(self, address: int, max_length: int = 4096) -> str:
        out = bytearray()
        for index in range(max_length):
            byte = self.load_u8(address + index)
            if byte == 0:
                break
            out.append(byte)
        return out.decode("latin-1")

    def store_cstring(self, address: int, text: str,
                      max_length: int = 4096) -> None:
        encoded = text.encode("latin-1")[: max_length - 1]
        self.store_bytes(address, encoded + b"\x00")


class StructDef:
    """A record layout: ordered (name, type) fields.

    Types: ``u8 u16 u32 i32 ptr`` plus ``cstr:<n>`` (inline NUL-padded
    string of n bytes) and ``bytes:<n>``. Fields are aligned naturally;
    the total size is rounded up to 4 bytes.
    """

    def __init__(self, name: str,
                 fields: Sequence[Tuple[str, str]]) -> None:
        self.name = name
        self.fields: List[Tuple[str, str]] = list(fields)
        self.offsets: Dict[str, int] = {}
        self.types: Dict[str, str] = {}
        offset = 0
        for field_name, field_type in self.fields:
            if field_name in self.offsets:
                raise SimulationError(
                    f"duplicate field {field_name!r} in {name!r}"
                )
            size, align = _field_size(field_type)
            offset = (offset + align - 1) & ~(align - 1)
            self.offsets[field_name] = offset
            self.types[field_name] = field_type
            offset += size
        self.size = (offset + 3) & ~3

    def view(self, mem: Mem, address: int) -> "StructView":
        return StructView(self, mem, address)

    def array_item(self, mem: Mem, base: int, index: int) -> "StructView":
        """View of element *index* of an array of this struct at *base*."""
        return StructView(self, mem, base + index * self.size)


class StructView:
    """One record instance at a concrete address."""

    def __init__(self, struct_def: StructDef, mem: Mem,
                 address: int) -> None:
        self.struct = struct_def
        self.mem = mem
        self.address = address

    def field_address(self, field: str) -> int:
        return self.address + self.struct.offsets[field]

    def get(self, field: str):
        field_type = self.struct.types[field]
        address = self.field_address(field)
        if field_type in ("u32", "ptr"):
            return self.mem.load_u32(address)
        if field_type == "i32":
            return self.mem.load_i32(address)
        if field_type == "u16":
            return self.mem.load_u16(address)
        if field_type == "u8":
            return self.mem.load_u8(address)
        if field_type.startswith("cstr:"):
            return self.mem.load_cstring(address,
                                         int(field_type.split(":")[1]))
        if field_type.startswith("bytes:"):
            return self.mem.load_bytes(address,
                                       int(field_type.split(":")[1]))
        raise SimulationError(f"bad field type {field_type!r}")

    def set(self, field: str, value) -> None:
        field_type = self.struct.types[field]
        address = self.field_address(field)
        if field_type in ("u32", "ptr"):
            self.mem.store_u32(address, value)
        elif field_type == "i32":
            self.mem.store_i32(address, value)
        elif field_type == "u16":
            self.mem.store_u16(address, value)
        elif field_type == "u8":
            self.mem.store_u8(address, value)
        elif field_type.startswith("cstr:"):
            length = int(field_type.split(":")[1])
            padded = value.encode("latin-1")[: length - 1]
            self.mem.store_bytes(address,
                                 padded + b"\x00" * (length - len(padded)))
        elif field_type.startswith("bytes:"):
            length = int(field_type.split(":")[1])
            if len(value) != length:
                raise SimulationError(
                    f"field {field!r} expects exactly {length} bytes"
                )
            self.mem.store_bytes(address, value)
        else:
            raise SimulationError(f"bad field type {field_type!r}")

    def update(self, **values) -> "StructView":
        for field, value in values.items():
            self.set(field, value)
        return self

    def as_dict(self) -> Dict[str, object]:
        return {name: self.get(name) for name, _ in self.struct.fields}


def iterate_list(mem: Mem, head: int, struct_def: StructDef,
                 next_field: str = "next",
                 max_nodes: int = 1_000_000) -> Iterator[StructView]:
    """Walk an intrusive singly linked list of *struct_def* records.

    *head* is the address of the first node (0 terminates). The pointers
    are absolute virtual addresses — meaningful in every process, which
    is the point of the shared file system's uniform addressing.
    """
    address = head
    count = 0
    while address:
        if count >= max_nodes:
            raise SimulationError("linked list too long (cycle?)")
        view = struct_def.view(mem, address)
        yield view
        address = view.get(next_field)
        count += 1


def _field_size(field_type: str) -> Tuple[int, int]:
    if field_type in _FIELD_SIZES:
        return _FIELD_SIZES[field_type], _FIELD_ALIGN[field_type]
    if field_type.startswith("cstr:") or field_type.startswith("bytes:"):
        return int(field_type.split(":")[1]), 1
    raise SimulationError(f"bad field type {field_type!r}")
