"""repro.sanitize — shared-segment race detector + heap sanitizer.

The dynamic half of "reprosan": an Eraser-style lockset +
happens-before race detector over public shared segments, armed at the
VM load/store choke points, plus a shmalloc heap sanitizer (redzones,
use-after-free, double-free, leaks at segment close). The static half
lives in :mod:`repro.analyze.sanitize` (the ``SAN*`` reprolint family).

Typical use::

    from repro.sanitize import request_sanitize, cancel_sanitize

    sanitizer = request_sanitize()
    try:
        kernel = repro.boot()        # joins the armed sanitizer
        ...                          # run the workload
    finally:
        cancel_sanitize()
    print(sanitizer.report.render())

or, per-kernel: ``install_sanitizer(kernel)``. ``repro.boot(sanitize=
True)`` arms ambiently for that boot. Reports are deterministic per
seed, and the sanitizer never charges the simulated clock.
"""

from repro.sanitize.ambient import (
    attach_kernel,
    cancel_sanitize,
    request_sanitize,
    sanitizing_active,
)
from repro.sanitize.report import (
    AccessSite,
    HeapFinding,
    RaceFinding,
    SanReport,
)
from repro.sanitize.sanitizer import (
    SanStats,
    Sanitizer,
    install_sanitizer,
    uninstall_sanitizer,
)
from repro.sanitize.shadow import (
    Access,
    ThreadState,
    WordState,
    happens_before,
    vc_join,
)

__all__ = [
    "Access",
    "AccessSite",
    "HeapFinding",
    "RaceFinding",
    "SanReport",
    "SanStats",
    "Sanitizer",
    "ThreadState",
    "WordState",
    "attach_kernel",
    "cancel_sanitize",
    "happens_before",
    "install_sanitizer",
    "request_sanitize",
    "sanitizing_active",
    "uninstall_sanitizer",
    "vc_join",
]
