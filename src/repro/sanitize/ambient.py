"""Ambient sanitizing: the arming surface ``reprosan`` and
``boot(sanitize=True)`` use.

Mirrors the :mod:`repro.trace` / :mod:`repro.inject` / :mod:`repro.rr`
pattern: :func:`request_sanitize` arms a pending configuration,
``Kernel.__init__`` consumes it by calling :func:`attach_kernel`, and
:func:`cancel_sanitize` disarms. Unlike the recorder — where each boot
gets its own collector — every kernel booted while armed joins ONE
shared :class:`~repro.sanitize.sanitizer.Sanitizer`, because a cluster
is one shared-memory machine from the paper's point of view and races
cross node boundaries.

Pay-for-use: with nothing armed the cost is one ``is None`` check per
boot plus the disarmed ``kernel.sanitizer``/``space.sanitizer``
attribute checks at the choke points. The sanitizer never charges the
simulated clock, so even armed runs keep bit-identical cycle totals
(the A10 benchmark pins both).

Set ``REPRO_SAN=1`` in the environment to arm every boot of the
process (the env-var analogue of ``REPRO_TRACE``).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.sanitize import state as _state
from repro.sanitize.sanitizer import Sanitizer

# Configuration captured by request_sanitize(), consumed per boot.
_PENDING: Optional[dict] = None


def sanitizing_active() -> bool:
    """Is a sanitize request currently armed?"""
    return _PENDING is not None


def request_sanitize(report_limit: int = 256) -> Sanitizer:
    """Arm sanitizing for every kernel booted until
    :func:`cancel_sanitize`; returns the (shared) sanitizer the boots
    will join."""
    global _PENDING
    sanitizer = Sanitizer(report_limit=report_limit)
    _PENDING = {"sanitizer": sanitizer}
    _state.ACTIVE = sanitizer
    return sanitizer


def cancel_sanitize() -> None:
    """Disarm :func:`request_sanitize`. The sanitizer (and its report)
    survives for the caller; kernels already armed stay armed."""
    global _PENDING
    _PENDING = None
    _state.ACTIVE = None


def attach_kernel(kernel) -> None:
    """Called from ``Kernel.__init__``: honour an armed request."""
    if _PENDING is None:
        return
    _PENDING["sanitizer"].register_kernel(kernel)


if os.environ.get("REPRO_SAN"):          # pragma: no cover - env arm
    request_sanitize()
