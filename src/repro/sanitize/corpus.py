"""The seeded race/heap-misuse corpus reprosan replays.

Each :class:`SanCase` is a tiny self-contained workload engineered to
contain exactly one *true* bug class — a data race on a public shared
segment, or a shmalloc heap misuse — that the armed sanitizer must
report deterministically. CI's sanitize-soak job replays the corpus
and fails if any case stops firing; the companion sweep runs every
``examples/`` program armed and fails if anything *starts* firing.

Shapes covered:

* unsynchronized counter increments (write-write, read-write);
* one-sided locking (only one of two writers takes the flock/sem);
* message-queue misuse (reading the payload before the receive);
* races on shmalloc'd heap words;
* machine-code races: Presto workers with the semaphore stripped from
  the accumulator (``presto-total``) or the work cursor
  (``presto-cursor``) — the §4 application, genuinely broken;
* SMP-only races: the same broken Presto sized so that on one core the
  first worker drains every item inside its first quantum and the bug
  is unreachable — only real multi-core interleaving (``boot(ncores=2)``
  sub-quantum rounds) makes both workers claim and collide
  (``presto-smp-total``, ``presto-smp-merge``);
* cluster races: a second process on the granted node piggybacks on
  the node's exclusive mapping and accesses without its own coherence
  acquire (``cluster-piggyback-write``, ``cluster-stale-read``);
* heap misuse: use-after-free, redzone overflow, double free, and a
  leak held until segment close.

Every case is a pure function of its seed: two runs produce
bit-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.runtime.shmalloc import DoubleFreeError, SegmentHeap
from repro.runtime.views import Mem
from repro.sanitize.ambient import cancel_sanitize, request_sanitize
from repro.sanitize.report import SanReport

SEG = "/shared/san.seg"
SEG_SIZE = 4096


@dataclass
class SanCase:
    """One seeded workload with a known, deterministic finding."""

    name: str
    title: str
    kind: str                   # "race" or "heap"
    expect: str                 # substring the rendered report must show
    body: Callable[[], None]    # drives the workload (sanitizer armed)

    def run(self, report_limit: int = 256) -> SanReport:
        """Arm a fresh sanitizer, run the workload, return its report."""
        sanitizer = request_sanitize(report_limit=report_limit)
        try:
            self.body()
        finally:
            cancel_sanitize()
        return sanitizer.report


def san_cases() -> List[SanCase]:
    """The full corpus, races first."""
    return [
        SanCase("counter-unsync",
                "two processes increment a shared counter, no lock",
                "race", "write-write", _counter_unsync),
        SanCase("reader-polling",
                "reader polls a word the writer updates, no sync",
                "race", "write-read", _reader_polling),
        SanCase("flock-one-sided",
                "one writer holds the flock, the other doesn't",
                "race", "write-write", _flock_one_sided),
        SanCase("sem-partial",
                "a write outside the critical section races the one "
                "inside it",
                "race", "write-write", _sem_partial),
        SanCase("msgq-early-read",
                "consumer reads the payload before msgrcv orders it",
                "race", "write-read", _msgq_early_read),
        SanCase("heap-word-race",
                "two processes write one shmalloc'd word, no lock",
                "race", "write-write", _heap_word_race),
        SanCase("presto-total",
                "Presto workers accumulate total without the semaphore",
                "race", "race", _presto_total),
        SanCase("presto-cursor",
                "Presto workers claim the work cursor without the "
                "semaphore",
                "race", "race", _presto_cursor),
        SanCase("presto-smp-total",
                "two-core Presto accumulates total bare; one core "
                "drains the queue before the race exists",
                "race", "race", _presto_smp_total),
        SanCase("presto-smp-merge",
                "disciplined loop, bare end-of-run merge; only "
                "multi-core runs have two finishers",
                "race", "race", _presto_smp_merge),
        SanCase("cluster-piggyback-write",
                "second process writes via the node's exclusive grant "
                "without its own acquire",
                "race", "write-write", _cluster_piggyback_write),
        SanCase("cluster-stale-read",
                "second process reads via the node's grant, racing the "
                "remote writer",
                "race", "read", _cluster_stale_read),
        SanCase("heap-use-after-free",
                "read of a freed shmalloc block",
                "heap", "use-after-free", _heap_uaf),
        SanCase("heap-redzone",
                "write past the requested size into the redzone",
                "heap", "redzone", _heap_redzone),
        SanCase("heap-double-free",
                "the same block freed twice",
                "heap", "double-free", _heap_double_free),
        SanCase("heap-leak",
                "segment deleted with a block still allocated",
                "heap", "leak", _heap_leak),
    ]


def case_named(name: str) -> SanCase:
    for case in san_cases():
        if case.name == name:
            return case
    raise KeyError(f"no sanitizer corpus case named {name!r}")


# ---------------------------------------------------------------------------
# native-process helpers
# ---------------------------------------------------------------------------


def _boot(ncores: Optional[int] = None):
    from repro import boot

    return boot(ncores=ncores).kernel


def _attach(kernel, proc, create: bool) -> int:
    from repro.runtime.libshared import runtime_for

    runtime = runtime_for(kernel, proc)
    if create:
        return runtime.create_segment(SEG, SEG_SIZE)
    return runtime.create_segment(SEG, SEG_SIZE, exclusive=False)


# ---------------------------------------------------------------------------
# race cases: native processes
# ---------------------------------------------------------------------------


def _counter_unsync() -> None:
    kernel = _boot()

    def body(kern, proc):
        base = _attach(kern, proc, create=proc.pid == 1)
        mem = Mem(kern, proc)
        yield
        for _ in range(3):
            mem.store_u32(base, mem.load_u32(base) + 1)
            yield

    kernel.create_native_process("inc1", body)
    kernel.create_native_process("inc2", body)
    kernel.schedule()


def _reader_polling() -> None:
    kernel = _boot()

    def writer(kern, proc):
        base = _attach(kern, proc, create=True)
        mem = Mem(kern, proc)
        yield
        mem.store_u32(base + 8, 7)

    def reader(kern, proc):
        base = _attach(kern, proc, create=False)
        mem = Mem(kern, proc)
        yield
        while mem.load_u32(base + 8) == 0:
            yield

    kernel.create_native_process("poll_w", writer)
    kernel.create_native_process("poll_r", reader)
    kernel.schedule()


def _flock_one_sided() -> None:
    from repro.kernel.syscalls import FLOCK_EX, FLOCK_UN, O_CREAT, \
        O_WRONLY

    kernel = _boot()

    def locked(kern, proc):
        base = _attach(kern, proc, create=True)
        mem = Mem(kern, proc)
        fd = kern.syscalls.open(proc, "/tmp.lock",
                                O_WRONLY | O_CREAT)
        yield
        kern.syscalls.flock(proc, fd, FLOCK_EX)
        mem.store_u32(base + 16, 1)
        kern.syscalls.flock(proc, fd, FLOCK_UN)

    def lockless(kern, proc):
        base = _attach(kern, proc, create=False)
        mem = Mem(kern, proc)
        yield
        mem.store_u32(base + 16, 2)

    kernel.create_native_process("flk_a", locked)
    kernel.create_native_process("flk_b", lockless)
    kernel.schedule()


def _sem_partial() -> None:
    kernel = _boot()

    def disciplined(kern, proc):
        base = _attach(kern, proc, create=True)
        mem = Mem(kern, proc)
        kern.syscalls.semget(proc, 9, value=1)
        yield
        kern.syscalls.sem_p(proc, 9)
        mem.store_u32(base + 24, 1)
        kern.syscalls.sem_v(proc, 9)
        yield
        kern.syscalls.sem_p(proc, 9)
        mem.store_u32(base + 24, 4)    # races sloppy's bare write
        kern.syscalls.sem_v(proc, 9)

    def sloppy(kern, proc):
        base = _attach(kern, proc, create=False)
        mem = Mem(kern, proc)
        kern.syscalls.semget(proc, 9, value=1)
        yield
        kern.syscalls.sem_p(proc, 9)
        mem.store_u32(base + 24, 2)
        kern.syscalls.sem_v(proc, 9)
        mem.store_u32(base + 24, 3)    # outside the critical section

    kernel.create_native_process("sem_a", disciplined)
    kernel.create_native_process("sem_b", sloppy)
    kernel.schedule()


def _msgq_early_read() -> None:
    kernel = _boot()

    def producer(kern, proc):
        base = _attach(kern, proc, create=True)
        mem = Mem(kern, proc)
        yield
        mem.store_u32(base + 32, 41)
        kern.syscalls.msgsnd(proc, 3, b"go")

    def consumer(kern, proc):
        base = _attach(kern, proc, create=False)
        mem = Mem(kern, proc)
        yield
        mem.load_u32(base + 32)        # too early: not yet handed off
        while kern.syscalls.msgrcv(proc, 3, blocking=False) is None:
            yield
        mem.load_u32(base + 32)        # properly ordered

    kernel.create_native_process("msg_p", producer)
    kernel.create_native_process("msg_c", consumer)
    kernel.schedule()


def _heap_word_race() -> None:
    kernel = _boot()
    slot = {}

    def alloc_and_write(kern, proc):
        base = _attach(kern, proc, create=True)
        mem = Mem(kern, proc)
        heap = SegmentHeap(mem, base, SEG_SIZE)
        heap.ensure_initialized()
        slot["payload"] = heap.alloc(8)
        yield
        mem.store_u32(slot["payload"], 1)

    def write_same(kern, proc):
        _attach(kern, proc, create=False)
        mem = Mem(kern, proc)
        yield
        while "payload" not in slot:
            yield
        mem.store_u32(slot["payload"], 2)

    kernel.create_native_process("heap_a", alloc_and_write)
    kernel.create_native_process("heap_b", write_same)
    kernel.schedule()


# ---------------------------------------------------------------------------
# race cases: Presto machine code with the locking stripped
# ---------------------------------------------------------------------------

_RACY_SHARED = """
int next_index = 0;
int total = 0;
int results[{nitems}];
"""

#: total accumulated bare; the cursor stays disciplined.
_RACY_TOTAL_WORKER = """
extern int next_index;
extern int total;
extern int results[{nitems}];
extern int sem_get(int key, int value);
extern int sem_p(int key);
extern int sem_v(int key);

int compute(int i) {{
    return i * i + 1;
}}

int main() {{
    int i;
    int value;
    int claimed = 0;
    sem_get(1, 1);
    while (1) {{
        sem_p(1);
        i = next_index;
        next_index = i + 1;
        sem_v(1);
        if (i >= {nitems}) {{
            break;
        }}
        value = compute(i);
        results[i] = value;
        total = total + value;
        claimed = claimed + 1;
    }}
    return claimed;
}}
"""

#: the cursor claimed bare; total stays disciplined.
_RACY_CURSOR_WORKER = """
extern int next_index;
extern int total;
extern int results[{nitems}];
extern int sem_get(int key, int value);
extern int sem_p(int key);
extern int sem_v(int key);

int compute(int i) {{
    return i * i + 1;
}}

int main() {{
    int i;
    int value;
    int claimed = 0;
    sem_get(1, 1);
    while (1) {{
        i = next_index;
        next_index = i + 1;
        if (i >= {nitems}) {{
            break;
        }}
        value = compute(i);
        results[i] = value;
        sem_p(1);
        total = total + value;
        sem_v(1);
        claimed = claimed + 1;
    }}
    return claimed;
}}
"""


#: disciplined loop, but every finisher that claimed at least one item
#: merges its count into ``done`` bare. On one core the workload is
#: sized so only the first worker ever claims — a single bare writer is
#: not a race. On two cores the round scheduler's sub-quantum
#: interleaving gives the queue to both workers, and their merges (each
#: sequenced *after* the worker's last semaphore release, so no
#: happens-before edge covers them) collide.
_SMP_SHARED = """
int next_index = 0;
int total = 0;
int done = 0;
int results[{nitems}];
"""

_SMP_MERGE_WORKER = """
extern int next_index;
extern int total;
extern int done;
extern int results[{nitems}];
extern int sem_get(int key, int value);
extern int sem_p(int key);
extern int sem_v(int key);

int compute(int i) {{
    return i * i + 1;
}}

int main() {{
    int i;
    int value;
    int claimed = 0;
    sem_get(1, 1);
    while (1) {{
        sem_p(1);
        i = next_index;
        next_index = i + 1;
        sem_v(1);
        if (i >= {nitems}) {{
            break;
        }}
        value = compute(i);
        results[i] = value;
        sem_p(1);
        total = total + value;
        sem_v(1);
        claimed = claimed + 1;
    }}
    if (claimed > 0) {{
        done = done + claimed;
    }}
    return claimed;
}}
"""

#: small enough that one worker's whole run (claim everything, exit)
#: fits in its first 2000-instruction quantum on a uniprocessor.
_SMP_NITEMS = 12


def _racy_presto(worker_source: str, nitems: int = 24,
                 nworkers: int = 3, ncores: Optional[int] = None,
                 shared_source: str = _RACY_SHARED) -> None:
    from repro.apps.libsys import build_libsys
    from repro.bench.workloads import make_shell
    from repro.linker.classes import SharingClass
    from repro.linker.lds import Lds, LinkRequest, store_object
    from repro.toyc import compile_source

    kernel = _boot(ncores=ncores)
    shell = make_shell(kernel)
    kernel.vfs.makedirs("/shared/racy", shell.uid)
    kernel.vfs.makedirs("/opt/racy", shell.uid)
    store_object(kernel, shell, "/shared/racy/shared_data.o",
                 compile_source(shared_source.format(nitems=nitems),
                                "shared_data.o"))
    store_object(kernel, shell, "/opt/racy/worker.o",
                 compile_source(worker_source.format(nitems=nitems),
                                "worker.o"))
    result = Lds(kernel).link(
        shell,
        [LinkRequest("/opt/racy/worker.o", SharingClass.STATIC_PRIVATE),
         LinkRequest("shared_data.o", SharingClass.DYNAMIC_PUBLIC)],
        output="/opt/racy/worker",
        archives=[build_libsys()],
    )
    env = {"LD_LIBRARY_PATH": "/shared/racy"}
    for index in range(nworkers):
        kernel.create_machine_process(f"racy_w{index}",
                                      result.executable, env=dict(env))
    kernel.schedule()


def _presto_total() -> None:
    _racy_presto(_RACY_TOTAL_WORKER)


def _presto_cursor() -> None:
    _racy_presto(_RACY_CURSOR_WORKER)


def _presto_smp_total() -> None:
    _racy_presto(_RACY_TOTAL_WORKER, nitems=_SMP_NITEMS, nworkers=2,
                 ncores=2)


def _presto_smp_merge() -> None:
    _racy_presto(_SMP_MERGE_WORKER, nitems=_SMP_NITEMS, nworkers=2,
                 ncores=2, shared_source=_SMP_SHARED)


# ---------------------------------------------------------------------------
# race cases: cluster coherence piggybacking
# ---------------------------------------------------------------------------


def _cluster_run(second_writes: bool) -> None:
    from repro.net import Cluster
    from repro.runtime.libshared import runtime_for

    path = "/shared/csan.seg"

    def creator(kern, proc):
        runtime_for(kern, proc).create_segment(path, 64)
        yield
        return 0

    def writer(slot, value):
        def body(kern, proc):
            base = runtime_for(kern, proc).segment_base(path)
            Mem(kern, proc).store_u32(base + 4 * slot, value)
            yield
            return 0
        return body

    def reader(slot):
        def body(kern, proc):
            base = runtime_for(kern, proc).segment_base(path)
            Mem(kern, proc).load_u32(base + 4 * slot)
            yield
            return 0
        return body

    cluster = Cluster(3, seed=42)
    cluster.spawn(1, "creator", creator)
    cluster.run()
    # Node 2 takes the segment exclusive through its first process...
    cluster.spawn(2, "grantee", writer(0, 1))
    cluster.run()
    # ...then two of its processes touch the word in one run: the first
    # faults (and acquires), the second piggybacks on the node's
    # exclusive mapping with no acquire of its own — racing the
    # *remote* history the first process synchronized with.
    cluster.spawn(2, "early", writer(1, 2))
    second = writer(1, 3) if second_writes else reader(1)
    cluster.spawn(2, "late", second)
    cluster.run()


def _cluster_piggyback_write() -> None:
    _cluster_run(second_writes=True)


def _cluster_stale_read() -> None:
    _cluster_run(second_writes=False)


# ---------------------------------------------------------------------------
# heap-misuse cases
# ---------------------------------------------------------------------------


def _heap_session(play) -> None:
    """Boot, attach a segment + heap as pid 1, run *play*."""
    kernel = _boot()

    def body(kern, proc):
        from repro.runtime.libshared import runtime_for

        runtime = runtime_for(kern, proc)
        base = runtime.create_segment(SEG, SEG_SIZE)
        mem = Mem(kern, proc)
        heap = SegmentHeap(mem, base, SEG_SIZE)
        heap.ensure_initialized()
        play(runtime, mem, heap)
        yield

    kernel.create_native_process("heapcase", body)
    kernel.schedule()


def _heap_uaf() -> None:
    def play(runtime, mem, heap):
        payload = heap.alloc(16)
        mem.store_u32(payload, 1)
        heap.free(payload)
        mem.load_u32(payload)          # use after free

    _heap_session(play)


def _heap_redzone() -> None:
    def play(runtime, mem, heap):
        # 9 bytes round up to a 16-byte payload: the final word is
        # rounding slack the program never asked for — a redzone.
        payload = heap.alloc(9)
        mem.store_u32(payload + 12, 1)

    _heap_session(play)


def _heap_double_free() -> None:
    def play(runtime, mem, heap):
        payload = heap.alloc(16)
        heap.free(payload)
        try:
            heap.free(payload)
        except DoubleFreeError:
            pass                        # the finding is still recorded

    _heap_session(play)


def _heap_leak() -> None:
    def play(runtime, mem, heap):
        heap.alloc(32)                  # never freed
        runtime.delete_segment(SEG)

    _heap_session(play)
