"""The deterministic reprosan report format.

Everything in a finding derives from simulated state (cycles, pids,
segment paths, addresses), so two armed runs of the same seed render
byte-identical reports — the replay-stability contract ``reprosan``
and the CI soak assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class AccessSite:
    """One half of a racing pair."""

    label: str          # "n0/pid4" or "pid4"
    kind: str           # "read" | "write"
    cycle: int
    locks: Tuple[str, ...]

    def render(self) -> str:
        held = ",".join(self.locks) if self.locks else "-"
        return f"{self.label} {self.kind} @cycle {self.cycle} locks={held}"


@dataclass(frozen=True)
class RaceFinding:
    """An unsynchronized access pair on a shared public word."""

    segment: str        # mapping name (segment path)
    offset: int         # byte offset of the word within the segment
    address: int        # absolute public address of the word
    first: AccessSite
    second: AccessSite

    @property
    def kind(self) -> str:
        return f"{self.first.kind}-{self.second.kind}"

    def render(self) -> str:
        return (f"race {self.kind} {self.segment}+0x{self.offset:x} "
                f"(0x{self.address:09x})\n"
                f"  first:  {self.first.render()}\n"
                f"  second: {self.second.render()}")


@dataclass(frozen=True)
class HeapFinding:
    """A shmalloc misuse caught by the heap sanitizer."""

    kind: str           # redzone | use-after-free | double-free |
                        # invalid-free | leak
    segment: str
    address: int
    cycle: int
    label: str
    detail: str = ""

    def render(self) -> str:
        text = (f"heap {self.kind} {self.segment} 0x{self.address:09x} "
                f"by {self.label} @cycle {self.cycle}")
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class SanReport:
    """Everything one armed run found, in detection order."""

    races: List[RaceFinding] = field(default_factory=list)
    heap: List[HeapFinding] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.races) + len(self.heap)

    @property
    def clean(self) -> bool:
        return not self.races and not self.heap

    def render(self) -> str:
        lines = [f"reprosan: {len(self.races)} race(s), "
                 f"{len(self.heap)} heap finding(s)"]
        for index, race in enumerate(self.races):
            lines.append(f"[race #{index + 1}] {race.render()}")
        for index, finding in enumerate(self.heap):
            lines.append(f"[heap #{index + 1}] {finding.render()}")
        return "\n".join(lines)
