"""The dynamic sanitizer: an Eraser-style lockset + happens-before race
detector over public shared segments, plus a shmalloc heap sanitizer.

Arming model (the same plane discipline as trace/inject/disk/rr/net):
an installed sanitizer hangs off ``kernel.sanitizer`` and
``space.sanitizer``; every instrumented choke point costs one attribute
load and an ``is None`` check when disarmed. The sanitizer *observes*
— it never charges the simulated clock — so simulated cycles are
bit-identical armed or not, and armed reports are a pure function of
the workload (replay-stable per seed).

Tracked memory: accesses through :meth:`AddressSpace.read_bytes` /
``write_bytes`` whose mapping is ``MAP_SHARED`` and lies in the public
SFS region. Kernel ABI copies run with ``force=True`` and are exempt,
exactly like the injector's fault plane. The TLB fast paths are kept
honest by :meth:`Sanitizer.tracks_mapping`: tracked pages are cached
execute-only, so instruction fetch stays fast while every data access
takes the instrumented slow path (the same trick COW uses for writes).

Happens-before sources (each one a release/acquire pair):

* file locks and semaphores (``flock``/``sem_p``/``sem_v``);
* message queues (``msgsnd`` piggybacks the sender's clock on the
  message, ``msgrcv`` joins it) and pipes;
* ``fork`` (parent→child) and ``wait`` (child exit→parent);
* segment lifecycle (create→first map, delete→reuse);
* ``repro.net`` coherence transitions: a GRANT joins the segment's
  clock into the *faulting* thread; INVALIDATE/DOWNGRADE/WRITEBACK on
  the releasing node publish that node's clocks into the segment;
* scheduling phases: each top-level ``kernel.schedule()`` window is a
  phase; host-driven accesses between windows are program-ordered (the
  driving test is one sequential host thread), so they form a rail and
  every window begins after the previous phase. Races are therefore
  detected *within* a scheduling window — where the simulated
  interleaving is real — and never invented from the host's sequential
  driving of the machine.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sanitize import state as _state
from repro.sanitize.report import (
    AccessSite,
    HeapFinding,
    RaceFinding,
    SanReport,
)
from repro.sanitize.shadow import (
    ThreadState,
    WordState,
    vc_join,
)
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.vm.layout import PAGE_SHIFT, PAGE_SIZE, is_public_address

#: Segments span this many bytes (mirrors repro.sfs.sharedfs).
from repro.sfs.sharedfs import SEGMENT_SPAN


class SanStats:
    """Host-side counters (never charged to the simulated clock)."""

    __slots__ = ("accesses", "words", "races", "heap_findings",
                 "hb_edges")

    def __init__(self) -> None:
        self.accesses = 0
        self.words = 0
        self.races = 0
        self.heap_findings = 0
        self.hb_edges = 0

    def as_dict(self) -> Dict[str, int]:
        return {"accesses": self.accesses, "words": self.words,
                "races": self.races,
                "heap_findings": self.heap_findings,
                "hb_edges": self.hb_edges}


def _lock_names(locks: FrozenSet) -> Tuple[str, ...]:
    return tuple(sorted(f"{kind}:{key}" for kind, key in locks))


class Sanitizer:
    """One sanitizer instance, shared by every kernel of a boot (so a
    cluster correlates cross-node accesses)."""

    def __init__(self, report_limit: int = 256) -> None:
        self.enabled = True
        self.report_limit = report_limit
        self.stats = SanStats()
        self.report = SanReport()

        # -- identity ---------------------------------------------------
        self.kernels: List = []                 # machine index -> kernel
        self._machine: Dict[int, int] = {}      # id(kernel) -> index
        self.threads: Dict[Tuple[int, int], ThreadState] = {}
        self._by_tid: List[ThreadState] = []
        self._spaces: Dict[int, tuple] = {}     # id(space) -> (space, thread)

        # -- happens-before state ---------------------------------------
        self._lock_vc: Dict[tuple, dict] = {}
        self._msg_vc: Dict[tuple, list] = {}
        self._pipe_vc: Dict[int, dict] = {}
        self._seg_vc: Dict[int, dict] = {}
        self._exit_vc: Dict[Tuple[int, int], dict] = {}
        self._phase: Dict[int, dict] = {}       # machine -> barrier VC
        self._rail: Dict[int, Optional[ThreadState]] = {}
        self._sched_depth: Dict[int, int] = {}

        # -- shadow memory ----------------------------------------------
        self.words: Dict[int, WordState] = {}
        self._reported: Set[tuple] = set()
        self._space_pages: Dict[int, Set[int]] = {}

        # -- heap sanitizer ---------------------------------------------
        self._in_allocator = 0
        self.heap_live: Dict[int, tuple] = {}   # payload -> record
        self._redzones: Dict[int, int] = {}     # word -> owning payload
        self._freed: Dict[int, tuple] = {}      # word -> (cycle, label)
        self._heap_reported: Set[tuple] = set()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_kernel(self, kernel) -> None:
        """Adopt *kernel* (idempotent); wires existing processes too."""
        kid = id(kernel)
        if kid in self._machine:
            return
        machine = len(self.kernels)
        self._machine[kid] = machine
        self.kernels.append(kernel)
        self._phase[machine] = {}
        self._rail[machine] = None
        self._sched_depth[machine] = 0
        kernel.sanitizer = self
        for proc in sorted(kernel.processes.values(),
                           key=lambda p: p.pid) \
                if hasattr(kernel, "processes") else []:
            self.register_process(kernel, proc)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.SAN, name="armed", value=machine)

    def machine_of(self, kernel) -> Optional[int]:
        return self._machine.get(id(kernel))

    def register_process(self, kernel, proc) -> None:
        """Track one process (called at creation and on fork)."""
        machine = self._machine.get(id(kernel))
        if machine is None:
            return
        key = (machine, proc.pid)
        thread = self.threads.get(key)
        if thread is None:
            tid = len(self._by_tid)
            label = (f"pid{proc.pid}" if machine == 0
                     else f"n{machine}/pid{proc.pid}")
            thread = ThreadState(tid, machine, proc.pid, label)
            vc_join(thread.vc, self._phase[machine])
            self.threads[key] = thread
            self._by_tid.append(thread)
        space = proc.address_space
        if space is not None:
            space.sanitizer = self
            self._spaces[id(space)] = (space, thread)
            self._space_pages[id(space)] = self.recompute_tracked(space)
            space.tlb_flush("sanitize")

    def _thread(self, kernel, proc) -> Optional[ThreadState]:
        machine = self._machine.get(id(kernel))
        if machine is None:
            return None
        return self.threads.get((machine, proc.pid))

    def _threads_of(self, machine: int) -> List[ThreadState]:
        return [self.threads[key] for key in sorted(self.threads)
                if key[0] == machine]

    # ------------------------------------------------------------------
    # tracked-page index (the shadow view the Hypothesis property checks)
    # ------------------------------------------------------------------

    def tracks_mapping(self, mapping) -> bool:
        return mapping.shared and is_public_address(mapping.start)

    def recompute_tracked(self, space) -> Set[int]:
        """The from-scratch view: tracked vpns of *space*'s mappings."""
        pages: Set[int] = set()
        for mapping in space.mappings():
            if self.tracks_mapping(mapping):
                vpn = mapping.start >> PAGE_SHIFT
                pages.update(range(vpn, vpn + mapping.npages))
        return pages

    def tracked_index(self) -> Dict[str, List[int]]:
        """Incrementally maintained view, keyed by thread label."""
        index: Dict[str, List[int]] = {}
        for _sid, (space, thread) in sorted(
                self._spaces.items(),
                key=lambda item: item[1][1].tid):
            pages = self._space_pages.get(id(space), set())
            index[thread.label] = sorted(pages)
        return index

    def recomputed_index(self) -> Dict[str, List[int]]:
        index: Dict[str, List[int]] = {}
        for _sid, (space, thread) in sorted(
                self._spaces.items(),
                key=lambda item: item[1][1].tid):
            index[thread.label] = sorted(self.recompute_tracked(space))
        return index

    def on_map(self, space, mapping) -> None:
        entry = self._spaces.get(id(space))
        if entry is None or not self.tracks_mapping(mapping):
            return
        pages = self._space_pages.setdefault(id(space), set())
        vpn = mapping.start >> PAGE_SHIFT
        pages.update(range(vpn, vpn + mapping.npages))
        thread = entry[1]
        base = mapping.start - mapping.obj_page * PAGE_SIZE
        seg_vc = self._seg_vc.get(base)
        if seg_vc:
            vc_join(thread.vc, seg_vc)
            self.stats.hb_edges += 1

    def on_unmap(self, space, mapping) -> None:
        if not self.tracks_mapping(mapping):
            return
        pages = self._space_pages.get(id(space))
        if pages is None:
            return
        vpn = mapping.start >> PAGE_SHIFT
        for page in range(vpn, vpn + mapping.npages):
            pages.discard(page)

    def on_destroy(self, space) -> None:
        """The space was torn down wholesale (process exit)."""
        pages = self._space_pages.get(id(space))
        if pages is not None:
            pages.clear()

    def on_mprotect(self, space, mapping) -> None:
        # Tracking is protection-independent; nothing to update, but
        # the hook keeps the instrumentation surface symmetric (and the
        # consistency property exercises it).
        return None

    # ------------------------------------------------------------------
    # the access choke point
    # ------------------------------------------------------------------

    def on_read(self, space, address: int, length: int, pte) -> None:
        self._on_access(space, address, length, pte, False)

    def on_write(self, space, address: int, length: int, pte) -> None:
        self._on_access(space, address, length, pte, True)

    def _on_access(self, space, address: int, length: int, pte,
                   is_write: bool) -> None:
        mapping = pte.mapping
        if not (mapping.shared and is_public_address(mapping.start)):
            return
        entry = self._spaces.get(id(space))
        if entry is None:
            return
        thread = entry[1]
        self.stats.accesses += 1
        self._pre_access(thread)
        kernel = self.kernels[thread.machine]
        cycle = kernel.clock.cycles
        name = mapping.name
        base = mapping.start - mapping.obj_page * PAGE_SIZE
        word = address & ~3
        end = address + length
        while word < end:
            self._word(thread, name, base, word, is_write, cycle)
            word += 4

    def _pre_access(self, thread: ThreadState) -> None:
        """Order host-driven accesses on the sequential host rail."""
        machine = thread.machine
        if self._sched_depth.get(machine, 0) > 0:
            return
        rail = self._rail.get(machine)
        if rail is thread:
            return
        vc_join(thread.vc, self._phase[machine])
        if rail is not None:
            vc_join(thread.vc, rail.vc)
            rail.tick()
            self.stats.hb_edges += 1
        self._rail[machine] = thread

    def _word(self, thread: ThreadState, segment: str, base: int,
              word: int, is_write: bool, cycle: int) -> None:
        state = self.words.get(word)
        if state is None:
            state = WordState()
            self.words[word] = state
            self.stats.words += 1
        if not self._in_allocator:
            self._heap_check(thread, segment, word, cycle)
        epoch = thread.epoch(cycle)
        write = state.write
        if is_write:
            if write is not None:
                self._check(thread, segment, base, word, write,
                            "write", "write", cycle)
            for tid in sorted(state.reads):
                self._check(thread, segment, base, word,
                            state.reads[tid], "read", "write", cycle)
            state.write = epoch
            state.reads.clear()
        else:
            if write is not None:
                self._check(thread, segment, base, word, write,
                            "write", "read", cycle)
            state.reads[thread.tid] = epoch

    def _check(self, thread: ThreadState, segment: str, base: int,
               word: int, prev, prev_kind: str, kind: str,
               cycle: int) -> None:
        tid, tick, locks, prev_cycle = prev
        if tid == thread.tid:
            return
        if tick <= thread.vc.get(tid, 0):
            return                              # happens-before ordered
        if locks & thread.locks:
            return                              # common lock (Eraser)
        key = (word, tid, thread.tid, prev_kind, kind)
        if key in self._reported \
                or len(self.report.races) >= self.report_limit:
            return
        self._reported.add(key)
        first = AccessSite(self._by_tid[tid].label, prev_kind,
                           prev_cycle, _lock_names(locks))
        second = AccessSite(thread.label, kind, cycle,
                            _lock_names(thread.locks))
        race = RaceFinding(segment, word - base, word, first, second)
        self.report.races.append(race)
        self.stats.races += 1
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.SAN, name=f"race:{race.kind}",
                        pid=thread.pid, addr=word,
                        value=len(self.report.races))

    # ------------------------------------------------------------------
    # happens-before edges: locks, semaphores, messages, pipes
    # ------------------------------------------------------------------

    def lock_acquired(self, kernel, proc, key: tuple) -> None:
        thread = self._thread(kernel, proc)
        if thread is None:
            return
        thread.acquire(key, self._lock_vc.get(key))
        self.stats.hb_edges += 1

    def lock_released(self, kernel, proc, key: tuple) -> None:
        thread = self._thread(kernel, proc)
        if thread is None:
            return
        vc = self._lock_vc.setdefault(key, {})
        vc_join(vc, thread.vc)
        thread.tick()
        thread.release(key)

    def msg_sent(self, kernel, proc, qkey: int) -> None:
        thread = self._thread(kernel, proc)
        if thread is None:
            return
        queue = self._msg_vc.setdefault((thread.machine, qkey), [])
        queue.append(dict(thread.vc))
        thread.tick()

    def msg_received(self, kernel, proc, qkey: int) -> None:
        thread = self._thread(kernel, proc)
        if thread is None:
            return
        queue = self._msg_vc.get((thread.machine, qkey))
        if queue:
            vc_join(thread.vc, queue.pop(0))
            self.stats.hb_edges += 1

    def pipe_wrote(self, kernel, proc, pipe_id: int) -> None:
        thread = self._thread(kernel, proc)
        if thread is None:
            return
        vc = self._pipe_vc.setdefault(pipe_id, {})
        vc_join(vc, thread.vc)
        thread.tick()

    def pipe_read(self, kernel, proc, pipe_id: int) -> None:
        thread = self._thread(kernel, proc)
        if thread is None:
            return
        vc = self._pipe_vc.get(pipe_id)
        if vc:
            vc_join(thread.vc, vc)
            self.stats.hb_edges += 1

    # ------------------------------------------------------------------
    # happens-before edges: fork / exit / wait
    # ------------------------------------------------------------------

    def on_fork(self, kernel, parent, child) -> None:
        self.register_process(kernel, child)
        pt = self._thread(kernel, parent)
        ct = self._thread(kernel, child)
        if pt is not None and ct is not None:
            vc_join(ct.vc, pt.vc)
            pt.tick()
            self.stats.hb_edges += 1

    def on_exit(self, kernel, proc) -> None:
        thread = self._thread(kernel, proc)
        if thread is not None:
            self._exit_vc[(thread.machine, proc.pid)] = dict(thread.vc)

    def on_wait(self, kernel, parent, child_pid: int) -> None:
        thread = self._thread(kernel, parent)
        if thread is None:
            return
        vc = self._exit_vc.get((thread.machine, child_pid))
        if vc:
            vc_join(thread.vc, vc)
            self.stats.hb_edges += 1

    # ------------------------------------------------------------------
    # happens-before edges: scheduling phases
    # ------------------------------------------------------------------

    def schedule_begin(self, kernel) -> None:
        machine = self._machine.get(id(kernel))
        if machine is None:
            return
        if self._sched_depth[machine] == 0:
            barrier = self._phase[machine]
            rail = self._rail.get(machine)
            if rail is not None:
                vc_join(barrier, rail.vc)
                rail.tick()
                self._rail[machine] = None
            for thread in self._threads_of(machine):
                vc_join(thread.vc, barrier)
        self._sched_depth[machine] += 1

    def schedule_end(self, kernel) -> None:
        machine = self._machine.get(id(kernel))
        if machine is None:
            return
        self._sched_depth[machine] -= 1
        if self._sched_depth[machine] == 0:
            barrier = self._phase[machine]
            for thread in self._threads_of(machine):
                vc_join(barrier, thread.vc)
                thread.tick()
            self._rail[machine] = None

    # ------------------------------------------------------------------
    # happens-before edges: segment lifecycle + cluster coherence
    # ------------------------------------------------------------------

    def segment_created(self, kernel, proc, base: int) -> None:
        thread = self._thread(kernel, proc)
        if thread is None:
            return
        self._seg_vc[base] = dict(thread.vc)
        thread.tick()

    def coherence_acquire(self, kernel, proc, base: int) -> None:
        """A GRANT: order the faulting thread after the segment's
        published clock."""
        thread = self._thread(kernel, proc)
        if thread is None:
            return
        vc = self._seg_vc.get(base)
        if vc:
            vc_join(thread.vc, vc)
            self.stats.hb_edges += 1

    def coherence_release(self, kernel, base: int) -> None:
        """An INVALIDATE/DOWNGRADE/WRITEBACK on *kernel*'s node:
        publish that node's clocks into the segment."""
        machine = self._machine.get(id(kernel))
        if machine is None:
            return
        vc = self._seg_vc.setdefault(base, {})
        for thread in self._threads_of(machine):
            vc_join(vc, thread.vc)
            thread.tick()

    # ------------------------------------------------------------------
    # heap sanitizer
    # ------------------------------------------------------------------

    def allocator_enter(self) -> None:
        self._in_allocator += 1

    def allocator_exit(self) -> None:
        self._in_allocator -= 1

    def _mem_context(self, mem) -> Tuple[str, int]:
        """(thread label, cycle) for an operation through *mem*."""
        thread = self._thread(mem.kernel, mem.proc)
        cycle = mem.kernel.clock.cycles
        return (thread.label if thread is not None else "?", cycle)

    def _segment_name(self, mem, address: int) -> str:
        space = mem.proc.address_space
        if space is not None:
            for mapping in space.mappings():
                start = mapping.start
                if start <= address < start + mapping.npages * PAGE_SIZE:
                    return mapping.name
        return f"0x{address:09x}"

    def heap_alloc(self, heap, payload: int, requested: int,
                   block_size: int) -> None:
        """A successful shmalloc allocation: arm redzones."""
        label, cycle = self._mem_context(heap.mem)
        segment = self._segment_name(heap.mem, heap.base)
        block = payload - 8
        for word in range(block, block + block_size, 4):
            self._freed.pop(word, None)
            self._redzones.pop(word, None)
        self.heap_live[payload] = (requested, block_size, segment,
                                   label, cycle)
        # Header words and the rounded-up tail are redzones.
        self._redzones[block] = payload
        self._redzones[block + 4] = payload
        tail = payload + ((requested + 3) & ~3)
        for word in range(tail, block + block_size, 4):
            self._redzones[word] = payload

    def heap_free(self, heap, payload: int, block_size: int) -> None:
        """A successful shmalloc free: poison the block."""
        label, cycle = self._mem_context(heap.mem)
        self.heap_live.pop(payload, None)
        block = payload - 8
        for word in range(block, block + block_size, 4):
            self._redzones.pop(word, None)
        for word in range(payload, block + block_size, 4):
            self._freed[word] = (cycle, label)

    def heap_bad_free(self, heap, payload: int, kind: str,
                      detail: str) -> None:
        """shmalloc rejected a free (it raises right after this)."""
        label, cycle = self._mem_context(heap.mem)
        segment = self._segment_name(heap.mem, heap.base)
        self._heap_finding(kind, segment, payload, cycle, label, detail)

    def _heap_check(self, thread: ThreadState, segment: str, word: int,
                    cycle: int) -> None:
        owner = self._redzones.get(word)
        if owner is not None:
            self._heap_finding("redzone", segment, word, cycle,
                               thread.label,
                               f"block payload 0x{owner:09x}")
        freed = self._freed.get(word)
        if freed is not None:
            self._heap_finding("use-after-free", segment, word, cycle,
                               thread.label,
                               f"freed @cycle {freed[0]} by {freed[1]}")

    def segment_closed(self, kernel, proc, base: int,
                       path: str) -> None:
        """Leak report + shadow purge at segment delete."""
        for payload in sorted(self.heap_live):
            if base <= payload < base + SEGMENT_SPAN:
                requested, _bsize, segment, label, cycle = \
                    self.heap_live.pop(payload)
                self._heap_finding("leak", segment or path, payload,
                                   cycle, label,
                                   f"{requested} byte(s) still "
                                   f"allocated at segment close")
        for table in (self.words, self._redzones, self._freed):
            for word in [w for w in table
                         if base <= w < base + SEGMENT_SPAN]:
                del table[word]
        thread = self._thread(kernel, proc)
        if thread is not None:
            self._seg_vc[base] = dict(thread.vc)
            thread.tick()

    def _heap_finding(self, kind: str, segment: str, address: int,
                      cycle: int, label: str, detail: str) -> None:
        key = (kind, address, label)
        if key in self._heap_reported \
                or len(self.report.heap) >= self.report_limit:
            return
        self._heap_reported.add(key)
        finding = HeapFinding(kind, segment, address, cycle, label,
                              detail)
        self.report.heap.append(finding)
        self.stats.heap_findings += 1
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.SAN, name=f"heap:{kind}",
                        addr=address, value=len(self.report.heap))


# ----------------------------------------------------------------------
# installation
# ----------------------------------------------------------------------

def install_sanitizer(kernel, sanitizer: Optional[Sanitizer] = None,
                      report_limit: int = 256) -> Sanitizer:
    """Install a sanitizer on *kernel* (creating one if needed) and make
    it the process-wide active sanitizer for shmalloc/runtime hooks."""
    if sanitizer is None:
        active = _state.ACTIVE
        sanitizer = active if isinstance(active, Sanitizer) \
            else Sanitizer(report_limit=report_limit)
    _state.ACTIVE = sanitizer
    sanitizer.register_kernel(kernel)
    return sanitizer


def uninstall_sanitizer() -> None:
    """Drop the process-wide active sanitizer. Kernels already armed
    keep their reference; new boots and heap hooks see nothing."""
    _state.ACTIVE = None
