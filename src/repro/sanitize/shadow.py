"""Shadow state for the race detector.

Vector clocks are plain ``{tid: tick}`` dicts over small, densely
assigned thread ids (registration order, which is deterministic), so
joins and happens-before tests stay cheap and — crucially —
reproducible: nothing here ever iterates an id()-keyed structure.

Per tracked 32-bit word the sanitizer keeps a :class:`WordState` in the
FastTrack style: the last write epoch plus the set of read epochs since
that write, each annotated with the lockset held at access time (the
Eraser half of the hybrid detector).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

VC = Dict[int, int]

#: (tid, tick, locks, cycle) — one recorded access epoch.
Access = Tuple[int, int, FrozenSet, int]


def vc_join(into: VC, other: VC) -> None:
    """Mutate *into* to the pointwise maximum of the two clocks."""
    for tid, tick in other.items():
        if into.get(tid, 0) < tick:
            into[tid] = tick


def happens_before(access: Access, vc: VC) -> bool:
    """Did *access* happen before a thread whose clock is *vc*?"""
    return access[1] <= vc.get(access[0], 0)


class ThreadState:
    """One simulated thread of execution: a (machine, pid) pair."""

    __slots__ = ("tid", "machine", "pid", "label", "vc", "locks")

    def __init__(self, tid: int, machine: int, pid: int,
                 label: str) -> None:
        self.tid = tid
        self.machine = machine
        self.pid = pid
        self.label = label
        self.vc: VC = {tid: 1}
        self.locks: FrozenSet = frozenset()

    def epoch(self, cycle: int) -> Access:
        return (self.tid, self.vc[self.tid], self.locks, cycle)

    def tick(self) -> None:
        self.vc[self.tid] += 1

    def acquire(self, key, vc: Optional[VC]) -> None:
        self.locks = self.locks | {key}
        if vc:
            vc_join(self.vc, vc)

    def release(self, key) -> None:
        self.locks = self.locks - {key}


class WordState:
    """Access history of one tracked 32-bit word."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        self.write: Optional[Access] = None
        self.reads: Dict[int, Access] = {}
