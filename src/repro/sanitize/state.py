"""Process-wide sanitizer registry.

Kept to a single module attribute so low-level subsystems (``shmalloc``,
``libshared``) can consult the active sanitizer without importing the
sanitizer machinery — and so the disarmed cost stays one attribute load
plus an ``is None`` check, matching every other Hemlock plane.
"""

from __future__ import annotations

from typing import Optional

#: The installed :class:`repro.sanitize.Sanitizer`, or None.
ACTIVE: Optional[object] = None
