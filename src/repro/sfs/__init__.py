"""The shared file system (SFS).

§3 "Address Space and File System Organization": a dedicated partition of
exactly 1024 inodes, each file at most 1 MiB, hard links prohibited so
inodes and path names map one-to-one, and a kernel-maintained mapping
between virtual addresses and files. The inode number determines the
file's address — the 1 GiB region divided into 1024 slots of 1 MiB.

The kernel's address→file mapping uses a linear lookup table, as in the
paper's prototype; :class:`BTreeAddressMap` implements the B-tree the
paper plans for the 64-bit version, and benchmark A2 compares the two.
"""

from repro.sfs.sharedfs import (
    SharedFilesystem,
    SFS_BASE,
    SEGMENT_SPAN,
    MAX_INODES,
    MAX_FILE_SIZE,
)
from repro.sfs.addrmap import AddressMap, LinearAddressMap, BTreeAddressMap
from repro.sfs.btree import BTree

__all__ = [
    "SharedFilesystem",
    "SFS_BASE",
    "SEGMENT_SPAN",
    "MAX_INODES",
    "MAX_FILE_SIZE",
    "AddressMap",
    "LinearAddressMap",
    "BTreeAddressMap",
    "BTree",
]
