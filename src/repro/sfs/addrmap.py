"""Kernel address→file lookup tables for the shared file system.

Two implementations of the same interface:

* :class:`LinearAddressMap` — the paper's 32-bit prototype: "For the sake
  of simplicity, the mapping in the kernel from addresses to files
  employs a linear lookup table. We initialize the table at boot time by
  scanning the entire shared file system, and update it as appropriate
  when files are created and destroyed."
* :class:`BTreeAddressMap` — the planned 64-bit design: inode address
  fields linked into a B-tree.

Both count key comparisons so the A2 ablation can report algorithmic
cost as file counts grow.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.errors import AddressMapError
from repro.sfs.btree import BTree


class AddressMap:
    """Interface: register/unregister segments; translate addresses."""

    def register(self, base: int, span: int, ino: int) -> None:
        """Add a segment. Raises :class:`AddressMapError` when *ino* is
        already registered or ``[base, base+span)`` overlaps a live
        segment — silently replacing either would leave the two lookup
        directions (address→ino, ino→base) disagreeing, so a later
        ``unregister`` of the dead row could delete the live one."""
        raise NotImplementedError

    def unregister(self, ino: int) -> None:
        raise NotImplementedError

    def lookup_address(self, address: int) -> Optional[Tuple[int, int]]:
        """(inode number, offset within segment) for *address*, or None."""
        raise NotImplementedError

    def lookup_inode(self, ino: int) -> Optional[int]:
        """Base address of inode *ino*'s segment, or None."""
        raise NotImplementedError

    def entries(self) -> List[Tuple[int, int, int]]:
        """All (base, span, ino) triples, base-ordered."""
        raise NotImplementedError

    def rebuild(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        """Boot-time scan: discard state and reload from *triples*."""
        raise NotImplementedError

    @property
    def comparisons(self) -> int:
        raise NotImplementedError


class LinearAddressMap(AddressMap):
    """Unordered list scanned linearly on every translation."""

    def __init__(self) -> None:
        self._table: List[Tuple[int, int, int]] = []  # (base, span, ino)
        self._comparisons = 0

    def register(self, base: int, span: int, ino: int) -> None:
        # Registration-time checks don't count toward `comparisons`,
        # which measures translation cost only (the A2 ablation).
        for old_base, old_span, old_ino in self._table:
            if old_ino == ino:
                raise AddressMapError(
                    f"inode {ino} already registered at 0x{old_base:08x}"
                )
            if old_base < base + span and base < old_base + old_span:
                raise AddressMapError(
                    f"segment 0x{base:08x}+0x{span:x} overlaps inode "
                    f"{old_ino} at 0x{old_base:08x}+0x{old_span:x}"
                )
        self._table.append((base, span, ino))

    def unregister(self, ino: int) -> None:
        self._table = [row for row in self._table if row[2] != ino]

    def lookup_address(self, address: int) -> Optional[Tuple[int, int]]:
        for base, span, ino in self._table:
            self._comparisons += 1
            if base <= address < base + span:
                return ino, address - base
        return None

    def lookup_inode(self, ino: int) -> Optional[int]:
        for base, _span, number in self._table:
            self._comparisons += 1
            if number == ino:
                return base
        return None

    def entries(self) -> List[Tuple[int, int, int]]:
        return sorted(self._table)

    def rebuild(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        # A boot-time rescan starts a fresh cost baseline, matching
        # BTreeAddressMap.rebuild (whose fresh tree zeroes its counter);
        # otherwise the A2 ablation's comparison counts skew across
        # boot cycles.
        self._table = list(triples)
        self._comparisons = 0

    @property
    def comparisons(self) -> int:
        return self._comparisons


class BTreeAddressMap(AddressMap):
    """B-tree keyed by segment base address (floor search to translate)."""

    def __init__(self, t: int = 16) -> None:
        self._tree = BTree(t)
        self._by_ino: dict = {}

    def register(self, base: int, span: int, ino: int) -> None:
        if ino in self._by_ino:
            raise AddressMapError(
                f"inode {ino} already registered at "
                f"0x{self._by_ino[ino]:08x}"
            )
        # Any live segment overlapping [base, base+span) has the
        # greatest start <= base+span-1, so one floor probe suffices.
        # Registration checks must not skew the translation-cost
        # counter, so the probe's comparisons are refunded.
        before = self._tree.comparisons
        entry = self._tree.floor_entry(base + span - 1)
        self._tree.comparisons = before
        if entry is not None:
            old_base, (old_span, old_ino) = entry
            if old_base + old_span > base:
                raise AddressMapError(
                    f"segment 0x{base:08x}+0x{span:x} overlaps inode "
                    f"{old_ino} at 0x{old_base:08x}+0x{old_span:x}"
                )
        self._tree.insert(base, (span, ino))
        self._by_ino[ino] = base

    def unregister(self, ino: int) -> None:
        base = self._by_ino.pop(ino, None)
        if base is not None:
            self._tree.delete(base)

    def lookup_address(self, address: int) -> Optional[Tuple[int, int]]:
        entry = self._tree.floor_entry(address)
        if entry is None:
            return None
        base, (span, ino) = entry
        if address < base + span:
            return ino, address - base
        return None

    def lookup_inode(self, ino: int) -> Optional[int]:
        return self._by_ino.get(ino)

    def entries(self) -> List[Tuple[int, int, int]]:
        return [(base, span, ino)
                for base, (span, ino) in self._tree.items()]

    def rebuild(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        self._tree = BTree(self._tree.t)
        self._by_ino.clear()
        for base, span, ino in triples:
            self.register(base, span, ino)
        # Fresh cost baseline: the boot scan's own insert comparisons
        # are not translation cost (mirrors LinearAddressMap.rebuild).
        self._tree.comparisons = 0

    @property
    def comparisons(self) -> int:
        return self._tree.comparisons
