"""Kernel address→file lookup tables for the shared file system.

Two implementations of the same interface:

* :class:`LinearAddressMap` — the paper's 32-bit prototype: "For the sake
  of simplicity, the mapping in the kernel from addresses to files
  employs a linear lookup table. We initialize the table at boot time by
  scanning the entire shared file system, and update it as appropriate
  when files are created and destroyed."
* :class:`BTreeAddressMap` — the planned 64-bit design: inode address
  fields linked into a B-tree.

Both count key comparisons so the A2 ablation can report algorithmic
cost as file counts grow.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.sfs.btree import BTree


class AddressMap:
    """Interface: register/unregister segments; translate addresses."""

    def register(self, base: int, span: int, ino: int) -> None:
        raise NotImplementedError

    def unregister(self, ino: int) -> None:
        raise NotImplementedError

    def lookup_address(self, address: int) -> Optional[Tuple[int, int]]:
        """(inode number, offset within segment) for *address*, or None."""
        raise NotImplementedError

    def lookup_inode(self, ino: int) -> Optional[int]:
        """Base address of inode *ino*'s segment, or None."""
        raise NotImplementedError

    def entries(self) -> List[Tuple[int, int, int]]:
        """All (base, span, ino) triples, base-ordered."""
        raise NotImplementedError

    def rebuild(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        """Boot-time scan: discard state and reload from *triples*."""
        raise NotImplementedError

    @property
    def comparisons(self) -> int:
        raise NotImplementedError


class LinearAddressMap(AddressMap):
    """Unordered list scanned linearly on every translation."""

    def __init__(self) -> None:
        self._table: List[Tuple[int, int, int]] = []  # (base, span, ino)
        self._comparisons = 0

    def register(self, base: int, span: int, ino: int) -> None:
        self._table.append((base, span, ino))

    def unregister(self, ino: int) -> None:
        self._table = [row for row in self._table if row[2] != ino]

    def lookup_address(self, address: int) -> Optional[Tuple[int, int]]:
        for base, span, ino in self._table:
            self._comparisons += 1
            if base <= address < base + span:
                return ino, address - base
        return None

    def lookup_inode(self, ino: int) -> Optional[int]:
        for base, _span, number in self._table:
            self._comparisons += 1
            if number == ino:
                return base
        return None

    def entries(self) -> List[Tuple[int, int, int]]:
        return sorted(self._table)

    def rebuild(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        self._table = list(triples)

    @property
    def comparisons(self) -> int:
        return self._comparisons


class BTreeAddressMap(AddressMap):
    """B-tree keyed by segment base address (floor search to translate)."""

    def __init__(self, t: int = 16) -> None:
        self._tree = BTree(t)
        self._by_ino: dict = {}

    def register(self, base: int, span: int, ino: int) -> None:
        self._tree.insert(base, (span, ino))
        self._by_ino[ino] = base

    def unregister(self, ino: int) -> None:
        base = self._by_ino.pop(ino, None)
        if base is not None:
            self._tree.delete(base)

    def lookup_address(self, address: int) -> Optional[Tuple[int, int]]:
        entry = self._tree.floor_entry(address)
        if entry is None:
            return None
        base, (span, ino) = entry
        if address < base + span:
            return ino, address - base
        return None

    def lookup_inode(self, ino: int) -> Optional[int]:
        return self._by_ino.get(ino)

    def entries(self) -> List[Tuple[int, int, int]]:
        return [(base, span, ino)
                for base, (span, ino) in self._tree.items()]

    def rebuild(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        self._tree = BTree(self._tree.t)
        self._by_ino.clear()
        for base, span, ino in triples:
            self.register(base, span, ino)

    @property
    def comparisons(self) -> int:
        return self._tree.comparisons
