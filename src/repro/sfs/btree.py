"""A classic min-degree B-tree (CLRS style) with insert, search, delete.

The paper's 64-bit plan replaces the linear address→inode lookup table
with "a lookup structure — most likely a B-tree — whose presence on the
disk allows it to survive across re-boots". This is that structure; the
A2 ablation benchmark measures it against the linear table.

Keys are integers, values arbitrary. ``comparisons`` counts key
comparisons so benchmarks can report algorithmic cost independent of the
Python constant factor.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("keys", "values", "children", "leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: List[int] = []
        self.values: List[object] = []
        self.children: List["_Node"] = []
        self.leaf = leaf


class BTree:
    """B-tree with minimum degree *t* (each node holds t-1..2t-1 keys)."""

    def __init__(self, t: int = 16) -> None:
        if t < 2:
            raise ValueError("minimum degree must be >= 2")
        self.t = t
        self.root = _Node(leaf=True)
        self.size = 0
        self.comparisons = 0

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def get(self, key: int) -> Optional[object]:
        """The value for *key*, or None."""
        node = self.root
        while True:
            index = self._find_index(node, key)
            if index < len(node.keys) and node.keys[index] == key:
                return node.values[index]
            if node.leaf:
                return None
            node = node.children[index]

    def contains(self, key: int) -> bool:
        return self.get(key) is not None

    def floor_entry(self, key: int) -> Optional[Tuple[int, object]]:
        """The greatest (k, v) with k <= key, or None."""
        node = self.root
        best: Optional[Tuple[int, object]] = None
        while True:
            index = self._find_index(node, key)
            if index < len(node.keys) and node.keys[index] == key:
                return (key, node.values[index])
            if index > 0:
                best = (node.keys[index - 1], node.values[index - 1])
            if node.leaf:
                return best
            node = node.children[index]

    def _find_index(self, node: _Node, key: int) -> int:
        """First index whose key is >= *key* (binary search, counted)."""
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.comparisons += 1
            if node.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------

    def insert(self, key: int, value: object) -> None:
        """Insert or replace."""
        root = self.root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self.root = new_root
            root = new_root
        if self._insert_nonfull(root, key, value):
            self.size += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self.t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]

    def _insert_nonfull(self, node: _Node, key: int, value: object) -> bool:
        while True:
            index = self._find_index(node, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return False
            if node.leaf:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                return True
            child = node.children[index]
            if len(child.keys) == 2 * self.t - 1:
                self._split_child(node, index)
                self.comparisons += 1
                if key == node.keys[index]:
                    node.values[index] = value
                    return False
                if key > node.keys[index]:
                    index += 1
            node = node.children[index]

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Remove *key*; returns True if it was present."""
        removed = self._delete(self.root, key)
        if not self.root.leaf and not self.root.keys:
            self.root = self.root.children[0]
        if removed:
            self.size -= 1
        return removed

    def _delete(self, node: _Node, key: int) -> bool:
        t = self.t
        index = self._find_index(node, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                node.values.pop(index)
                return True
            return self._delete_internal(node, index)
        if node.leaf:
            return False
        child = node.children[index]
        if len(child.keys) == t - 1:
            self._fill_child(node, index)
            # The tree under `node` changed shape; retry from here.
            return self._delete(node, key)
        return self._delete(child, key)

    def _delete_internal(self, node: _Node, index: int) -> bool:
        t = self.t
        key = node.keys[index]
        left, right = node.children[index], node.children[index + 1]
        if len(left.keys) >= t:
            pred_key, pred_value = self._max_entry(left)
            node.keys[index] = pred_key
            node.values[index] = pred_value
            return self._delete(left, pred_key)
        if len(right.keys) >= t:
            succ_key, succ_value = self._min_entry(right)
            node.keys[index] = succ_key
            node.values[index] = succ_value
            return self._delete(right, succ_key)
        self._merge_children(node, index)
        return self._delete(left, key)

    def _max_entry(self, node: _Node) -> Tuple[int, object]:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_entry(self, node: _Node) -> Tuple[int, object]:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    def _fill_child(self, node: _Node, index: int) -> int:
        """Ensure child *index* has >= t keys; may merge (returns the
        possibly shifted child index to descend into)."""
        t = self.t
        if index > 0 and len(node.children[index - 1].keys) >= t:
            self._rotate_right(node, index - 1)
            return index
        if index < len(node.children) - 1 \
                and len(node.children[index + 1].keys) >= t:
            self._rotate_left(node, index)
            return index
        if index == len(node.children) - 1:
            index -= 1
        self._merge_children(node, index)
        return index

    def _rotate_right(self, node: _Node, index: int) -> None:
        left, right = node.children[index], node.children[index + 1]
        right.keys.insert(0, node.keys[index])
        right.values.insert(0, node.values[index])
        node.keys[index] = left.keys.pop()
        node.values[index] = left.values.pop()
        if not left.leaf:
            right.children.insert(0, left.children.pop())

    def _rotate_left(self, node: _Node, index: int) -> None:
        left, right = node.children[index], node.children[index + 1]
        left.keys.append(node.keys[index])
        left.values.append(node.values[index])
        node.keys[index] = right.keys.pop(0)
        node.values[index] = right.values.pop(0)
        if not right.leaf:
            left.children.append(right.children.pop(0))

    def _merge_children(self, node: _Node, index: int) -> None:
        left, right = node.children[index], node.children[index + 1]
        left.keys.append(node.keys.pop(index))
        left.values.append(node.values.pop(index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(index + 1)

    # ------------------------------------------------------------------
    # iteration and invariants
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, object]]:
        """All (key, value) pairs in key order."""
        yield from self._iterate(self.root)

    def _iterate(self, node: _Node) -> Iterator[Tuple[int, object]]:
        if node.leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._iterate(node.children[i])
            yield (key, node.values[i])
        yield from self._iterate(node.children[-1])

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        keys = [k for k, _ in self.items()]
        assert keys == sorted(set(keys)), "keys out of order or duplicated"
        assert len(keys) == self.size, "size counter out of sync"
        self._check_node(self.root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool) -> int:
        t = self.t
        assert len(node.keys) <= 2 * t - 1, "node overfull"
        if not is_root:
            assert len(node.keys) >= t - 1, "node underfull"
        assert node.keys == sorted(node.keys), "node keys unsorted"
        if node.leaf:
            assert not node.children
            return 1
        assert len(node.children) == len(node.keys) + 1, "child count"
        depths = {self._check_node(child, False) for child in node.children}
        assert len(depths) == 1, "leaves at unequal depth"
        return depths.pop() + 1
