"""The 64-bit shared file system — the paper's stated future work.

§3: "With 64-bit addresses, we will extend the shared file system to
include all of secondary store, and will relax the limits on the number
and sizes of shared files. ... Within the kernel, we will abandon the
linear lookup table and the direct association between inode numbers
and addresses. Instead, we will add an address field to the on-disk
version of each inode, and will link these inodes into a lookup
structure — most likely a B-tree — whose presence on the disk allows it
to survive across re-boots."

:class:`SharedFilesystem64` implements that design:

* no inode-count limit and no fixed 1 MiB file ceiling — each file gets
  a *reservation* of address space (default 16 MiB, larger on request)
  and may grow up to it;
* the address is an explicit per-inode field assigned by a range
  allocator over a vast public region above the 32-bit space, not a
  function of the inode number;
* the reverse map is always a B-tree, rebuilt from the on-"disk" inode
  address fields by the boot-time scan.

The simulated CPU is 32-bit, so 64-bit segments are exercised by native
processes (the paper likewise treats the 64-bit system as design work
"beyond the scope of the current paper"); the kernel-side machinery —
allocation, translation, persistence, fault-driven mapping — is fully
functional.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FileLimitError, FileNotFoundSimError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import Inode
from repro.sfs.addrmap import BTreeAddressMap
from repro.util.bits import align_up
from repro.vm.layout import AddressRegion, PAGE_SIZE
from repro.vm.pages import PhysicalMemory

# "The vast majority of the address space would be public" (§5): we
# give the shared file system everything from 4 GiB up to 2^47.
SFS64_REGION = AddressRegion("sfs64", 0x1_0000_0000, 1 << 47,
                             public=True)

DEFAULT_RESERVATION = 16 << 20  # 16 MiB of address space per segment


class SharedFilesystem64(Filesystem):
    """The relaxed, B-tree-indexed shared partition."""

    _index_paths = True  # hard links prohibited: 1:1 inode↔path

    def __init__(self, physmem: PhysicalMemory,
                 region: AddressRegion = SFS64_REGION,
                 default_reservation: int = DEFAULT_RESERVATION,
                 name: str = "sfs64") -> None:
        self.region = region
        self.default_reservation = default_reservation
        self.addrmap = BTreeAddressMap()
        self._cursor = region.start
        # Freed reservations, reusable first-fit: (base, span).
        self._free_ranges: List[Tuple[int, int]] = []
        # Reservation requested for the *next* created file (segment
        # creation passes it through the create call path).
        self._pending_reservation: Optional[int] = None
        super().__init__(physmem, name)

    # ------------------------------------------------------------------
    # address allocation
    # ------------------------------------------------------------------

    def _allocate_range(self, span: int) -> int:
        span = align_up(max(span, PAGE_SIZE), PAGE_SIZE)
        for index, (base, free_span) in enumerate(self._free_ranges):
            if free_span >= span:
                if free_span == span:
                    self._free_ranges.pop(index)
                else:
                    self._free_ranges[index] = (base + span,
                                                free_span - span)
                return base
        base = self._cursor
        if base + span > self.region.end:
            raise FileLimitError("64-bit shared address space exhausted")
        self._cursor += span
        return base

    def _release_range(self, base: int, span: int) -> None:
        self._free_ranges.append((base, span))
        self._free_ranges.sort()

    def create_file_with_reservation(self, directory: Inode, name: str,
                                     uid: int, reservation: int,
                                     mode: int = 0o644) -> Inode:
        """Create a file reserving *reservation* bytes of address space."""
        self._pending_reservation = reservation
        try:
            return self.create_file(directory, name, uid, mode)
        finally:
            self._pending_reservation = None

    def reserving(self, reservation: int):
        """Context manager: the next file created (by any code path,
        e.g. an open(O_CREAT) deep inside the VFS) gets *reservation*
        bytes of address space."""
        fs = self

        class _Reserving:
            def __enter__(self):
                fs._pending_reservation = reservation
                return fs

            def __exit__(self, *exc):
                fs._pending_reservation = None

        return _Reserving()

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------

    def _check_write(self, inode: Inode, end_offset: int) -> None:
        span = getattr(inode, "segment_span", None)
        if span is not None and end_offset > span:
            raise FileLimitError(
                f"file exceeds its {span}-byte address reservation; "
                f"create it with a larger reservation"
            )

    def _allow_hard_links(self) -> bool:
        return False  # the 1:1 inode/path property still holds

    def _on_create(self, inode: Inode) -> None:
        if not inode.is_file:
            return
        span = self._pending_reservation or self.default_reservation
        span = align_up(max(span, PAGE_SIZE), PAGE_SIZE)
        base = self._allocate_range(span)
        # "an address field [on] the on-disk version of each inode":
        inode.segment_address = base          # type: ignore[attr-defined]
        inode.segment_span = span             # type: ignore[attr-defined]
        self.addrmap.register(base, span, inode.number)

    def _on_destroy(self, inode: Inode) -> None:
        if inode.is_file:
            base = getattr(inode, "segment_address", None)
            span = getattr(inode, "segment_span", None)
            if base is not None and span is not None:
                self.addrmap.unregister(inode.number)
                self._release_range(base, span)

    def _journal_create_fields(self, inode: Inode):
        # The reservation is chosen at create time (reserving()), so the
        # CREATE record must carry it for replay to re-allocate the same
        # span — the base address then falls out of the deterministic
        # range allocator.
        span = getattr(inode, "segment_span", None)
        return [] if span is None else [span]

    # ------------------------------------------------------------------
    # translation (same interface as the 32-bit SharedFilesystem)
    # ------------------------------------------------------------------

    def address_of_inode(self, ino: int) -> int:
        inode = self.inode_by_number(ino)
        if inode is None or not hasattr(inode, "segment_address"):
            raise FileNotFoundSimError(f"inode {ino} has no address")
        return inode.segment_address  # type: ignore[attr-defined]

    def inode_of_address(self, address: int) -> Optional[Tuple[Inode, int]]:
        hit = self.addrmap.lookup_address(address)
        if hit is None:
            return None
        ino, offset = hit
        inode = self.inode_by_number(ino)
        if inode is None:
            return None
        return inode, offset

    def path_of_address(self, address: int) -> Optional[Tuple[str, int]]:
        hit = self.inode_of_address(address)
        if hit is None:
            return None
        inode, offset = hit
        return self.path_of_inode(inode.number), offset

    # ------------------------------------------------------------------
    # boot-time recovery from the per-inode address fields
    # ------------------------------------------------------------------

    def rebuild_address_map(self) -> int:
        triples = []
        for inode in self.inodes():
            if inode.is_file and hasattr(inode, "segment_address"):
                triples.append((
                    inode.segment_address,     # type: ignore[attr-defined]
                    inode.segment_span,        # type: ignore[attr-defined]
                    inode.number,
                ))
        self.addrmap.rebuild(triples)
        return len(triples)

    def segments(self) -> List[Tuple[str, Inode]]:
        out: List[Tuple[str, Inode]] = []

        def visit(path: str, inode: Inode) -> None:
            if inode.is_file:
                out.append((path, inode))

        self.walk(visit)
        return out
