"""The shared file system: 1024 inodes, 1 MiB files, addresses by inode.

Every regular file on this volume is a *segment* with a globally agreed
virtual address determined by its inode number::

    address(ino) = SFS_BASE + ino * SEGMENT_SPAN

which partitions the paper's 1 GiB region (0x30000000–0x70000000) into
1024 slots of 1 MiB — exactly the prototype's configuration. Hard links
are prohibited so the inode↔path mapping stays one-to-one, and the
kernel-maintained address map is updated as files are created and
destroyed (and can be rebuilt by a boot-time scan).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FileLimitError, FilesystemError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import Inode
from repro.sfs.addrmap import AddressMap, LinearAddressMap
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.vm.layout import SFS_REGION
from repro.vm.pages import PhysicalMemory

SFS_BASE = SFS_REGION.start          # 0x30000000
MAX_INODES = 1024                    # "exactly 1024 inodes"
SEGMENT_SPAN = SFS_REGION.size // MAX_INODES   # 1 MiB per slot
MAX_FILE_SIZE = 1 << 20              # "limited to a maximum of 1M bytes"

assert SEGMENT_SPAN == MAX_FILE_SIZE


class SharedFilesystem(Filesystem):
    """The dedicated shared partition of §3."""

    # Hard links are prohibited, so the inode↔path mapping is 1:1 and
    # the O(1) reverse index is sound.
    _index_paths = True

    def __init__(self, physmem: PhysicalMemory,
                 addrmap: Optional[AddressMap] = None,
                 name: str = "sfs") -> None:
        self._free_inos = list(range(MAX_INODES - 1, -1, -1))
        self.addrmap = addrmap if addrmap is not None else LinearAddressMap()
        self.region = SFS_REGION
        self.injector = None  # set by repro.inject.install_injector
        self.coherence = None  # set by repro.net when clustered
        super().__init__(physmem, name)

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------

    def _allocate_ino(self) -> int:
        return self._free_inos.pop()

    def _claim_ino(self, ino: int) -> None:
        # Removal by value keeps the remaining free list in the same
        # relative order, so allocation after a journal replay proceeds
        # exactly as it did in the original run.
        try:
            self._free_inos.remove(ino)
        except ValueError:
            raise FilesystemError(f"inode {ino} already allocated")

    def _check_new_inode(self) -> None:
        injector = self.injector
        if injector is not None:
            injector.on_sfs("sfs-create", "/")
        if not self._free_inos:
            raise FileLimitError(
                f"shared file system full ({MAX_INODES} inodes)"
            )

    def _check_write(self, inode: Inode, end_offset: int) -> None:
        injector = self.injector
        if injector is not None:
            injector.on_sfs("sfs-write", f"inode:{inode.number}")
        if end_offset > MAX_FILE_SIZE:
            raise FileLimitError(
                f"shared files are limited to {MAX_FILE_SIZE} bytes"
            )

    def _allow_hard_links(self) -> bool:
        return False

    def _on_create(self, inode: Inode) -> None:
        if inode.is_file:
            base = self.address_of_inode(inode.number)
            self.addrmap.register(base, SEGMENT_SPAN, inode.number)
            tracer = _trace.TRACER
            if tracer.enabled:
                tracer.emit(EventKind.MAP, name="segment-create",
                            addr=base, value=inode.number)
            if self.coherence is not None:
                self.coherence.segment_created(inode)

    def _on_destroy(self, inode: Inode) -> None:
        if inode.is_file:
            if self.coherence is not None:
                self.coherence.segment_destroyed(inode)
            self.addrmap.unregister(inode.number)
            tracer = _trace.TRACER
            if tracer.enabled:
                tracer.emit(EventKind.MAP, name="segment-destroy",
                            addr=self.address_of_inode(inode.number),
                            value=inode.number)
        self._free_inos.append(inode.number)

    # ------------------------------------------------------------------
    # address translation
    # ------------------------------------------------------------------

    @staticmethod
    def address_of_inode(ino: int) -> int:
        """The globally agreed base address of inode *ino*'s segment."""
        if not 0 <= ino < MAX_INODES:
            raise ValueError(f"inode {ino} out of range")
        return SFS_BASE + ino * SEGMENT_SPAN

    def inode_of_address(self, address: int) -> Optional[Tuple[Inode, int]]:
        """(inode, offset) of the segment containing *address*, or None.

        Goes through the kernel-maintained address map, so translation
        cost reflects the configured map implementation.
        """
        hit = self.addrmap.lookup_address(address)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.MAP, name="addr-lookup", addr=address,
                        value=0 if hit is None else 1)
        if hit is None:
            return None
        ino, offset = hit
        inode = self.inode_by_number(ino)
        if inode is None:  # stale map entry should never happen
            return None
        return inode, offset

    def path_of_address(self, address: int) -> Optional[Tuple[str, int]]:
        """(volume path, offset) of *address* — the new kernel call of §3."""
        hit = self.inode_of_address(address)
        if hit is None:
            return None
        inode, offset = hit
        return self.path_of_inode(inode.number), offset

    # ------------------------------------------------------------------
    # boot-time recovery
    # ------------------------------------------------------------------

    def rebuild_address_map(self) -> int:
        """Scan the volume and rebuild the address map (the paper's
        boot-time initialization). Returns the number of segments found."""
        triples = []
        for inode in self.inodes():
            if inode.is_file:
                triples.append(
                    (self.address_of_inode(inode.number), SEGMENT_SPAN,
                     inode.number)
                )
        self.addrmap.rebuild(triples)
        return len(triples)

    def segments(self) -> List[Tuple[str, Inode]]:
        """All (path, inode) segment pairs — the §5 garbage-collection
        affordance: "the ability to peruse all of the segments in
        existence"."""
        out: List[Tuple[str, Inode]] = []

        def visit(path: str, inode: Inode) -> None:
            if inode.is_file:
                out.append((path, inode))

        self.walk(visit)
        return out
