"""Developer tools layered on the Hemlock toolchain.

* :mod:`hgen` — the §6 "Language Heterogeneity" experiment: generate
  declarations and access routines for a shared module in another
  language, from nothing but the module's symbol table.
"""

from repro.tools.hgen import (
    generate_toyc_header,
    generate_python_accessors,
    load_python_accessors,
)
from repro.tools.cli import (
    lds_main,
    toycc_main,
    asm_main,
    nm_main,
    objdump_main,
    ar_main,
    segls_main,
)

__all__ = [
    "generate_toyc_header",
    "generate_python_accessors",
    "load_python_accessors",
    "lds_main",
    "toycc_main",
    "asm_main",
    "nm_main",
    "objdump_main",
    "ar_main",
    "segls_main",
]
