"""Command-line front ends for the simulated toolchain.

§3: "Our current static linker is implemented as a wrapper, lds, around
the standard IRIX ld linker. The wrapper processes new command line
options directly related to its functionality and passes the others to
ld. Lds-specific options allow for the association of sharing classes
with modules and the specification of search paths to be used when
locating modules."

These functions give the toolchain that argv surface (each runs in the
context of a simulated process, reading and writing the simulated file
system):

* :func:`lds_main` — ``lds [-o out] [-L dir]... [-e sym] [--strict]
  [--no-crt0] [-l lib.a]... module.o... [--dynamic-public m.o]...``
* :func:`toycc_main` — ``toycc -o out.o source.c``
* :func:`asm_main` — ``as -o out.o source.s``
* :func:`nm_main` / :func:`objdump_main` — inspection, returning text;
* :func:`ar_main` — ``ar archive.a member.o...``;
* :func:`reprolint_main` — ``reprolint [--strict] [--only cat,cat]
  [--quiet] path...`` runs the :mod:`repro.analyze` static verifier
  over objects, archives, and segment files (auto-detected by magic)
  and renders every finding with its stable diagnostic code. ERROR
  findings raise :class:`repro.errors.LintError`; ``--strict``
  promotes WARNINGs to failures too.

Two tools run on the *host* instead of inside the simulation:

* :func:`reprotrace_main` — ``reprotrace [-o dir] [--kinds K,K]
  [--capacity N] [--top N] script.py [args...]`` runs any example (or
  other host script) with kernel-wide tracing armed, then writes a
  JSONL event log and a ``chrome://tracing`` file and prints the top-N
  hot-spot report. Also installed as the ``reprotrace`` console script.
* :func:`reprochaos_main` — ``reprochaos [--seed N] [--runs N]
  [--planes P,P] [--rate F] script.py...`` soaks host scripts under
  :mod:`repro.inject` fault planes: each seeded configuration runs
  twice and the two ``INJECT`` event streams must be bit-identical
  (replay drift fails the campaign), and no injected fault may escape
  the simulation as a host-level crash (kernel death fails it too).
  ``reprochaos --crash [--stride N] [--max-points N] [--nblocks N]
  script.py...`` instead mounts a durable :mod:`repro.disk` store
  under every kernel the script boots and runs the script once per
  journal-record boundary, crashing the disk mid-record each time;
  every surviving image must pass ``reprofsck`` with zero findings and
  remount with all public segments reopenable by address.
* :func:`repronet_main` — ``repronet topo|run|soak [--nodes N]
  [--seed N] [--hosts N] [--impl shm|file] [--rate F] [--runs N]``
  inspects the deterministic cluster topology, runs the rwho scale
  scenario over a :class:`repro.net.Cluster` with full traffic/cycle
  accounting, or soaks the cluster under NET-plane faults with the
  same twice-run replay-drift discipline as ``reprochaos``. A
  ``reprochaos --net [--nodes N]`` campaign composes both: NET plans
  join the plane mix and ``REPRO_CLUSTER=N`` makes cluster-aware
  scripts boot a cluster.
* :func:`reprofsck_main` — ``reprofsck [--verbose] image...`` checks
  saved device images (``BlockDevice.save``) for damage, rendering
  stable ``DSK###`` findings; exit status 1 when any image has
  findings. Also installed as the ``reprofsck`` console script.
* :func:`reprosan_main` — ``reprosan list|run|soak|sweep`` drives the
  :mod:`repro.sanitize` race detector and heap sanitizer: render the
  deterministic report for a seeded corpus case (``run CASE``, with
  ``--replay`` seeking an rr recording to the first racing access
  pair), replay the whole corpus twice asserting byte-identical
  reports (``soak``), or run every example armed expecting zero
  findings (``sweep``). Also installed as the ``reprosan`` console
  script.
"""

from __future__ import annotations

import os
import runpy
import sys
from typing import List, Optional, Sequence, TextIO

from repro.errors import LinkError, SimulationError
from repro.hw.asm import assemble
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.linker.classes import SharingClass
from repro.linker.lds import Lds, LinkRequest, LinkResult, load_template, \
    store_object
from repro.objfile.archive import Archive
from repro.objfile.format import ObjectFile
from repro.objfile.inspect import nm, objdump
from repro.toyc import compile_source

_CLASS_FLAGS = {
    "--static-private": SharingClass.STATIC_PRIVATE,
    "-spr": SharingClass.STATIC_PRIVATE,
    "--static-public": SharingClass.STATIC_PUBLIC,
    "-sp": SharingClass.STATIC_PUBLIC,
    "--dynamic-public": SharingClass.DYNAMIC_PUBLIC,
    "-dp": SharingClass.DYNAMIC_PUBLIC,
    "--dynamic-private": SharingClass.DYNAMIC_PRIVATE,
    "-dr": SharingClass.DYNAMIC_PRIVATE,
}


class UsageError(SimulationError):
    """Bad command-line arguments."""


def lds_main(kernel: Kernel, proc: Process,
             argv: Sequence[str]) -> LinkResult:
    """Run an lds command line; returns the LinkResult."""
    output = "a.out"
    search_dirs: List[str] = []
    archives: List[Archive] = []
    requests: List[LinkRequest] = []
    entry: Optional[str] = None
    with_crt0 = True
    strict = False
    use_jumptable = False
    verify: Optional[bool] = None

    args = list(argv)
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "-o":
            output = _value(args, index, "-o")
            index += 2
        elif arg == "-L":
            search_dirs.append(_value(args, index, "-L"))
            index += 2
        elif arg == "-e":
            entry = _value(args, index, "-e")
            index += 2
        elif arg == "-l":
            path = _value(args, index, "-l")
            archives.append(load_archive(kernel, proc, path))
            index += 2
        elif arg == "--no-crt0":
            with_crt0 = False
            index += 1
        elif arg == "--strict":
            strict = True
            index += 1
        elif arg == "--jumptable":
            use_jumptable = True
            index += 1
        elif arg == "--verify":
            verify = True
            index += 1
        elif arg == "--no-verify":
            verify = False
            index += 1
        elif arg in _CLASS_FLAGS:
            module = _value(args, index, arg)
            requests.append(LinkRequest(module, _CLASS_FLAGS[arg]))
            index += 2
        elif arg.startswith("-"):
            raise UsageError(f"lds: unknown option {arg!r}")
        else:
            requests.append(LinkRequest(arg))
            index += 1

    if not requests:
        raise UsageError("lds: no input modules")
    return Lds(kernel).link(
        proc, requests, output=output, search_dirs=search_dirs,
        archives=archives, entry=entry, with_crt0=with_crt0,
        strict_dynamic=strict, use_jumptable=use_jumptable,
        verify=verify,
    )


def toycc_main(kernel: Kernel, proc: Process,
               argv: Sequence[str]) -> str:
    """Run a toycc command line; returns the output path."""
    output, source_path = _one_output_one_input(argv, "toycc", ".c")
    source = kernel.vfs.read_whole(source_path, proc.uid,
                                   cwd=proc.cwd).decode("latin-1")
    name = output.rsplit("/", 1)[-1]
    store_object(kernel, proc, output, compile_source(source, name))
    return output


def asm_main(kernel: Kernel, proc: Process, argv: Sequence[str]) -> str:
    """Run an as command line; returns the output path."""
    output, source_path = _one_output_one_input(argv, "as", ".s")
    source = kernel.vfs.read_whole(source_path, proc.uid,
                                   cwd=proc.cwd).decode("latin-1")
    name = output.rsplit("/", 1)[-1]
    store_object(kernel, proc, output, assemble(source, name))
    return output


def nm_main(kernel: Kernel, proc: Process, argv: Sequence[str]) -> str:
    """nm <object>: the symbol table as text."""
    if len(argv) != 1:
        raise UsageError("nm takes exactly one object file")
    return nm(_load_any(kernel, proc, argv[0]))


def objdump_main(kernel: Kernel, proc: Process,
                 argv: Sequence[str]) -> str:
    """objdump [-d] <object>."""
    args = list(argv)
    disassemble = "-d" in args
    if disassemble:
        args.remove("-d")
    if len(args) != 1:
        raise UsageError("objdump takes exactly one object file")
    return objdump(_load_any(kernel, proc, args[0]),
                   disassemble=disassemble)


def ar_main(kernel: Kernel, proc: Process, argv: Sequence[str]) -> str:
    """ar <archive> <member.o>...: build an archive file."""
    if len(argv) < 2:
        raise UsageError("ar takes an archive name and members")
    archive_path = argv[0]
    archive = Archive(archive_path.rsplit("/", 1)[-1])
    for member_path in argv[1:]:
        archive.add(load_template(kernel, proc, member_path))
    kernel.vfs.write_whole(archive_path, archive.to_bytes(), proc.uid,
                           cwd=proc.cwd)
    return archive_path


def segls_main(kernel: Kernel, proc: Process,
               argv: Sequence[str] = ()) -> str:
    """segls: peruse every segment on the shared partition.

    The §5 garbage-collection affordance: manual cleanup requires "the
    ability to peruse all of the segments in existence". Lists path,
    base address, and size; with ``-l`` also whether the file is a
    linked module (has segment metadata).
    """
    long_form = "-l" in argv
    from repro.linker.segments import read_segment_meta

    lines = []
    mount = kernel.sfs_mount.rstrip("/")
    for vol_path, inode in kernel.sfs.segments():
        base = kernel.sfs.address_of_inode(inode.number)
        line = (f"0x{base:012x}  {inode.size:9d}  "
                f"{mount}{vol_path}")
        if long_form:
            try:
                read_segment_meta(kernel, proc, mount + vol_path)
                line += "  [module]"
            except SimulationError:
                line += "  [data]"
        lines.append(line)
    return "\n".join(sorted(lines))


def reprolint_main(kernel: Kernel, proc: Process,
                   argv: Sequence[str]) -> str:
    """reprolint [--strict] [--only cat,cat] [--quiet] <path>...

    Statically verify HOF objects, ``HAR1`` archives, and ``HSEG``
    segment files (detected by magic, like ``file(1)`` would). Returns
    the rendered reports; raises :class:`repro.errors.LintError` when
    any finding meets the failure threshold — ERROR by default,
    WARNING under ``--strict``. ``--only`` restricts to a subset of
    check categories (relocations, symbols, cfg, layout, sharing);
    ``--quiet`` hides INFO findings from the rendering.
    """
    from repro.analyze.pipeline import CHECKS
    from repro.analyze.report import Report, Severity

    strict = False
    quiet = False
    only: Optional[List[str]] = None
    paths: List[str] = []
    args = list(argv)
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--strict":
            strict = True
            index += 1
        elif arg == "--quiet":
            quiet = True
            index += 1
        elif arg == "--only":
            names = _value(args, index, "--only")
            only = [name.strip() for name in names.split(",")
                    if name.strip()]
            known = {name for name, _check in CHECKS}
            unknown = [name for name in only if name not in known]
            if unknown:
                raise UsageError(
                    f"reprolint: unknown categories {unknown} "
                    f"(known: {', '.join(sorted(known))})"
                )
            index += 2
        elif arg.startswith("-"):
            raise UsageError(f"reprolint: unknown option {arg!r}")
        else:
            paths.append(arg)
            index += 1
    if not paths:
        raise UsageError("reprolint: no input files")

    combined = Report(subject=", ".join(paths))
    pieces: List[str] = []
    for path in paths:
        report = _lint_path(kernel, proc, path, only)
        combined.merge(report)
        pieces.append(report.render(
            Severity.WARNING if quiet else Severity.INFO
        ))
    text = "\n".join(pieces)
    threshold = Severity.WARNING if strict else Severity.ERROR
    combined.raise_if(threshold)
    return text


def _lint_path(kernel: Kernel, proc: Process, path: str,
               only: Optional[List[str]]):
    """Analyze one path, dispatching on file magic."""
    from repro.analyze.context import LintContext
    from repro.analyze.pipeline import analyze_object, \
        context_from_kernel
    from repro.analyze.report import Report
    from repro.linker.segments import TRAILER, TRAILER_MAGIC, \
        read_segment_meta
    from repro.objfile.archive import ARCHIVE_MAGIC
    from repro.objfile.format import MAGIC as HOF_MAGIC

    data = kernel.vfs.read_whole(path, proc.uid, cwd=proc.cwd)
    if data[:4] == ARCHIVE_MAGIC:
        archive = Archive.from_bytes(data)
        merged = Report(subject=path)
        for member in archive.members:
            context = context_from_kernel(kernel, proc, member)
            merged.merge(analyze_object(member, context, only=only))
        return merged
    if data[:4] == HOF_MAGIC:
        obj = ObjectFile.from_bytes(data)
        context = context_from_kernel(kernel, proc, obj)
        return analyze_object(obj, context, subject=path, only=only)
    if len(data) >= TRAILER.size \
            and data[-TRAILER.size:][:4] == TRAILER_MAGIC:
        meta, base, _image_len = read_segment_meta(kernel, proc, path)
        context = context_from_kernel(kernel, proc, meta,
                                      expect_public=True)
        context.self_base = base
        return analyze_object(meta, context, subject=path, only=only)
    raise LinkError(f"{path!r}: not a HOF object, archive, or segment")


def reprotrace_main(argv: Sequence[str],
                    stdout: Optional[TextIO] = None) -> int:
    """Run a host script under kernel-wide tracing; export and report.

    ``reprotrace [-o DIR] [--kinds FAULT,LINK_RESOLVE,...]
    [--capacity N] [--top N] script.py [script args...]``

    Tracing is armed before the script runs, so every kernel the script
    boots binds the tracer to its clock (multiple boots are
    distinguished by the events' ``boot`` field). Afterwards the event
    stream is written to ``DIR/<script>.trace.jsonl`` and
    ``DIR/<script>.chrome.json`` (load the latter in chrome://tracing
    or https://ui.perfetto.dev), and a top-N report is printed.
    Exports are deterministic: identical runs produce identical bytes.
    """
    from repro.trace import tracer as trace_state
    from repro.trace.events import EventKind
    from repro.trace.tracer import cancel_tracing, request_tracing

    out = stdout if stdout is not None else sys.stdout
    outdir = "."
    kinds: Optional[List[str]] = None
    capacity = 1 << 16
    top = 10
    script: Optional[str] = None
    script_args: List[str] = []

    args = list(argv)
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "-o":
            outdir = _value(args, index, "-o")
            index += 2
        elif arg == "--kinds":
            names = _value(args, index, "--kinds")
            kinds = [name for name in names.split(",") if name.strip()]
            try:
                for name in kinds:
                    EventKind[name.strip().upper()]
            except KeyError:
                known = ", ".join(k.name for k in EventKind)
                raise UsageError(
                    f"reprotrace: unknown event kind {name!r} "
                    f"(known: {known})"
                )
            index += 2
        elif arg == "--capacity":
            capacity = int(_value(args, index, "--capacity"))
            index += 2
        elif arg == "--top":
            top = int(_value(args, index, "--top"))
            index += 2
        elif arg.startswith("-") and script is None:
            raise UsageError(f"reprotrace: unknown option {arg!r}")
        else:
            script = arg
            script_args = args[index + 1:]
            break
    if script is None:
        raise UsageError(
            "reprotrace: usage: reprotrace [-o dir] [--kinds K,K] "
            "[--capacity N] [--top N] script.py [args...]"
        )
    if not os.path.isfile(script):
        raise UsageError(f"reprotrace: no such script: {script}")

    request_tracing(kinds=kinds, capacity=capacity)
    saved_argv = sys.argv
    sys.argv = [script] + list(script_args)
    try:
        runpy.run_path(script, run_name="__main__")
        tracer = trace_state.TRACER
        if not tracer.enabled:
            print(f"reprotrace: {script} never booted a kernel; "
                  f"no events recorded", file=out)
            return 1
        from repro.trace.export import (
            top_report,
            write_chrome,
            write_jsonl,
        )

        os.makedirs(outdir, exist_ok=True)
        stem = os.path.splitext(os.path.basename(script))[0]
        jsonl_path = os.path.join(outdir, f"{stem}.trace.jsonl")
        chrome_path = os.path.join(outdir, f"{stem}.chrome.json")
        events = tracer.events()
        write_jsonl(events, jsonl_path)
        write_chrome(events, chrome_path)
        print(file=out)
        print(top_report(tracer, top=top), file=out)
        print(f"\nwrote {len(events)} events to {jsonl_path}", file=out)
        print(f"wrote chrome trace to {chrome_path} "
              f"(open in chrome://tracing)", file=out)
        return 0
    finally:
        sys.argv = saved_argv
        cancel_tracing()


def reprotrace_entry() -> int:
    """Console-script entry point (``reprotrace ...``)."""
    try:
        return reprotrace_main(sys.argv[1:])
    except UsageError as error:
        print(error, file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# reprochaos — seeded fault-injection soak campaigns
# ----------------------------------------------------------------------

#: Planes a campaign arms by default (all of them).
_CHAOS_PLANES = ("syscall", "io", "linker", "vmfault")


def _campaign_plans(planes: Sequence[str], rate: float) -> List:
    """The standard soak plan set for *planes* at trigger rate *rate*.

    One representative plan per plane: failing syscalls, short reads
    and torn writes, transient linker failures (exercising the
    retry/backoff hardening), and — far rarer, since every memory
    access is a decision point — spurious page faults.
    """
    from repro.inject import FaultKind, FaultPlan, Plane

    plans = []
    for name in planes:
        plane = Plane.parse(name)
        if plane is Plane.SYSCALL:
            plans.append(FaultPlan(plane, FaultKind.ERROR,
                                   probability=rate, errno="EIO"))
        elif plane is Plane.IO:
            plans.append(FaultPlan(plane, FaultKind.SHORT_READ,
                                   site="read", probability=rate))
            plans.append(FaultPlan(plane, FaultKind.TORN_WRITE,
                                   site="write", probability=rate))
        elif plane is Plane.LINKER:
            plans.append(FaultPlan(plane, FaultKind.ERROR,
                                   probability=rate, transient=True))
        elif plane is Plane.VMFAULT:
            plans.append(FaultPlan(plane, FaultKind.SPURIOUS,
                                   probability=rate / 16.0))
        elif plane is Plane.DISK:
            # Only fires when a durable store is mounted (REPRO_DISK
            # or request_durable); harmless — and deterministically
            # idle — otherwise.
            plans.append(FaultPlan(plane, FaultKind.TORN_WRITE,
                                   site="block-write",
                                   probability=rate))
            plans.append(FaultPlan(plane, FaultKind.CORRUPT,
                                   site="block-read",
                                   probability=rate / 4.0))
        elif plane is Plane.NET:
            plans.append(FaultPlan(plane, FaultKind.DROP,
                                   probability=rate))
            plans.append(FaultPlan(plane, FaultKind.DUP,
                                   probability=rate))
            plans.append(FaultPlan(plane, FaultKind.DELAY,
                                   probability=rate))
            plans.append(FaultPlan(plane, FaultKind.CORRUPT,
                                   probability=rate / 4.0))
        elif plane is Plane.NODE:
            # Whole-machine failures: a few crashes and one wedge per
            # run, a partition window, and an eager reboot draw so a
            # crashed node comes back within a handful of rounds.
            plans.append(FaultPlan(plane, FaultKind.CRASH,
                                   site="crash", probability=rate,
                                   max_faults=2))
            plans.append(FaultPlan(plane, FaultKind.WEDGE,
                                   site="wedge",
                                   probability=rate / 2.0,
                                   max_faults=1))
            plans.append(FaultPlan(plane, FaultKind.PARTITION,
                                   site="partition", probability=rate,
                                   max_faults=2))
            plans.append(FaultPlan(plane, FaultKind.REBOOT,
                                   site="reboot", probability=0.25))
    return plans


def _chaos_run(script: str, plans: Sequence, seed: int,
               kinds: Sequence[str] = ("INJECT",)) -> dict:
    """One seeded soak run of *script*; returns outcome + trace stream.

    Outcomes:
      * ``clean`` — the script finished (exit status 0);
      * ``workload-failure`` — the script aborted on a simulated error
        or a failed assertion: an injected fault surfaced, but through
        the simulation's own typed channels;
      * ``kernel-death`` — a non-simulation exception escaped: an
        injected fault broke the simulator itself. Always a bug.
    """
    import contextlib
    import io

    from repro.inject import CAMPAIGN, cancel_injection, request_injection
    from repro.trace import tracer as trace_state
    from repro.trace.tracer import cancel_tracing, request_tracing

    request_injection(plans, seed=seed)
    request_tracing(kinds=list(kinds))
    saved_argv = sys.argv
    sys.argv = [script]
    outcome, detail, captured = "clean", "", io.StringIO()
    try:
        try:
            with contextlib.redirect_stdout(captured):
                runpy.run_path(script, run_name="__main__")
        except SystemExit as status:
            if status.code not in (None, 0):
                outcome = "workload-failure"
                detail = f"exit status {status.code}"
        except (SimulationError, AssertionError) as error:
            outcome = "workload-failure"
            detail = f"{type(error).__name__}: {error}"
        except Exception as error:  # noqa: BLE001 - the point of the soak
            outcome = "kernel-death"
            detail = f"{type(error).__name__}: {error}"
    finally:
        tracer = trace_state.TRACER
        stream = tuple(
            (event.boot, event.cycle, event.pid, event.addr,
             event.name, event.value)
            for event in tracer.events()
        ) if tracer.enabled else ()
        totals = {
            "boots": len(CAMPAIGN),
            "triggered": sum(i.stats.triggered for i in CAMPAIGN),
            "contained": sum(i.stats.contained for i in CAMPAIGN),
            "retries": sum(i.stats.retries for i in CAMPAIGN),
        }
        sys.argv = saved_argv
        cancel_injection()
        cancel_tracing()
    return {"outcome": outcome, "detail": detail, "stream": stream,
            "totals": totals, "output": captured.getvalue()}


def _durable_run(script: str, seed: int, nblocks: int,
                 plans: Optional[Sequence] = None) -> dict:
    """Run *script* with a durable store mounted under every kernel it
    boots (and, optionally, fault plans armed). Returns the outcome and
    the attached DiskStores for post-mortem inspection."""
    import contextlib
    import io

    from repro.disk import CAMPAIGN as STORES
    from repro.disk import cancel_durable, request_durable
    from repro.inject import cancel_injection, request_injection

    request_durable(nblocks=nblocks, seed=seed)
    if plans:
        request_injection(plans, seed=seed)
    saved_argv = sys.argv
    sys.argv = [script]
    outcome, detail, captured = "clean", "", io.StringIO()
    try:
        try:
            with contextlib.redirect_stdout(captured):
                runpy.run_path(script, run_name="__main__")
        except SystemExit as status:
            if status.code not in (None, 0):
                outcome = "workload-failure"
                detail = f"exit status {status.code}"
        except (SimulationError, AssertionError) as error:
            outcome = "workload-failure"
            detail = f"{type(error).__name__}: {error}"
        except Exception as error:  # noqa: BLE001 - the point of the soak
            outcome = "kernel-death"
            detail = f"{type(error).__name__}: {error}"
        stores = list(STORES)
    finally:
        sys.argv = saved_argv
        cancel_durable()
        if plans:
            cancel_injection()
    return {"outcome": outcome, "detail": detail, "stores": stores,
            "output": captured.getvalue()}


def _crash_soak(script: str, seed: int, nblocks: int, stride: int,
                max_points: Optional[int], out: TextIO) -> List[str]:
    """Crash *script*'s durable store at every journal-record boundary;
    returns the list of failures (ideally empty)."""
    from repro import boot
    from repro.disk import fsck, verify_segments
    from repro.inject import FaultKind, FaultPlan, Plane

    base = _durable_run(script, seed, nblocks)
    if base["outcome"] == "kernel-death":
        return [f"baseline: kernel death: {base['detail']}"]
    total = max((store.journal.records_written
                 for store in base["stores"]), default=0)
    if total == 0:
        print(f"  {script}: wrote no journal records; nothing to crash",
              file=out)
        return []
    ks = list(range(1, total + 1, max(stride, 1)))
    if max_points is not None and len(ks) > max_points:
        step = len(ks) / max_points
        ks = [ks[int(i * step)] for i in range(max_points)]
    failures: List[str] = []
    for k in ks:
        plan = FaultPlan(Plane.DISK, FaultKind.CRASH, site="journal-*",
                        after=k - 1, max_faults=1)
        run = _durable_run(script, seed, nblocks, plans=[plan])
        if run["outcome"] == "kernel-death":
            failures.append(f"record {k}: kernel death: {run['detail']}")
            continue
        for store in run["stores"]:
            survivor = store.device.reopen()
            result = fsck(survivor, subject=f"{script}@{k}")
            if len(result.report):
                failures.extend(f"record {k}: fsck: {item}"
                                for item in result.report)
                continue
            system = boot(disk=survivor)
            seg_failures = verify_segments(system.kernel)
            system.kernel.shutdown()
            failures.extend(f"record {k}: segment: {text}"
                            for text in seg_failures)
    verdict = "clean" if not failures else f"{len(failures)} failure(s)"
    print(f"  {script}: {len(ks)}/{total} crash point(s): {verdict}",
          file=out)
    return failures


def reprochaos_main(argv: Sequence[str],
                    stdout: Optional[TextIO] = None) -> int:
    """Soak host scripts under seeded fault injection.

    ``reprochaos [--seed N] [--runs N] [--planes syscall,io,...]
    [--rate F] script.py...``

    Every (script, seed) configuration is executed twice; because the
    planes are seeded and the simulation is deterministic, the two
    ``INJECT`` event streams must match bit-for-bit ("replay drift"
    otherwise). Returns non-zero if any run died outside the
    simulation's typed error channels or any replay drifted.

    ``reprochaos --crash [--seed N] [--stride N] [--max-points N]
    [--nblocks N] script.py...``

    The crash-recovery soak: each script runs once per journal-record
    boundary with a durable store mounted and a ``DISK``-plane CRASH
    plan armed to kill the power mid-record; every surviving image must
    pass ``reprofsck`` with zero findings and remount with every public
    segment reopenable by address.

    ``reprochaos --net [--nodes N] ...`` adds the ``net`` plane
    (drop/dup/delay/corrupt frames) to the campaign, traces ``NET``
    events alongside ``INJECT`` so the drift check covers frame-level
    ordering, and exports ``REPRO_CLUSTER=N`` so cluster-aware scripts
    boot an N-node :class:`repro.net.Cluster` instead of one kernel.

    ``reprochaos --ha [--nodes N] ...`` is the availability soak: on
    top of ``--net`` it arms the ``node`` plane (seeded crashes,
    wedges, partitions, reboots), traces ``HA`` events so the drift
    check covers the failure schedule and the recovery protocol, and
    exports ``REPRO_HA=1`` so cluster-aware scripts run the
    self-healing scenario and assert re-convergence to the
    single-kernel oracle.
    """
    out = stdout if stdout is not None else sys.stdout
    seed = 1993
    runs = 1
    planes: Sequence[str] = _CHAOS_PLANES
    rate = 0.005
    planes_given = False
    crash = False
    stride = 1
    max_points: Optional[int] = None
    nblocks = 2048
    net = False
    ha = False
    nodes = 4
    scripts: List[str] = []

    args = list(argv)
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--seed":
            seed = int(_value(args, index, "--seed"))
            index += 2
        elif arg == "--runs":
            runs = int(_value(args, index, "--runs"))
            index += 2
        elif arg == "--planes":
            names = _value(args, index, "--planes")
            planes = [name.strip() for name in names.split(",")
                      if name.strip()]
            planes_given = True
            index += 2
        elif arg == "--rate":
            rate = float(_value(args, index, "--rate"))
            index += 2
        elif arg == "--crash":
            crash = True
            index += 1
        elif arg == "--stride":
            stride = int(_value(args, index, "--stride"))
            index += 2
        elif arg == "--max-points":
            max_points = int(_value(args, index, "--max-points"))
            index += 2
        elif arg == "--nblocks":
            nblocks = int(_value(args, index, "--nblocks"))
            index += 2
        elif arg == "--net":
            net = True
            index += 1
        elif arg == "--ha":
            ha = True
            index += 1
        elif arg == "--nodes":
            nodes = int(_value(args, index, "--nodes"))
            index += 2
        elif arg.startswith("-"):
            raise UsageError(f"reprochaos: unknown option {arg!r}")
        else:
            scripts.append(arg)
            index += 1
    if not scripts:
        raise UsageError(
            "reprochaos: usage: reprochaos [--seed N] [--runs N] "
            "[--planes P,P] [--rate F] [--crash [--stride N] "
            "[--max-points N] [--nblocks N]] [--net|--ha [--nodes N]] "
            "script.py..."
        )
    for script in scripts:
        if not os.path.isfile(script):
            raise UsageError(f"reprochaos: no such script: {script}")
    if net and crash:
        raise UsageError("reprochaos: --net and --crash are separate "
                         "soaks; pick one")
    if ha and crash:
        raise UsageError("reprochaos: --ha and --crash are separate "
                         "soaks; pick one")
    if ha:
        net = True  # --ha layers the node plane on the net soak
        if not planes_given:
            # The availability soak targets the failure model: the
            # default syscall/io fuzz would kill the differential
            # oracle before recovery is ever exercised.
            planes = []

    if crash:
        print(f"reprochaos: crash soak, {len(scripts)} script(s), "
              f"seed {seed}, stride {stride}"
              + (f", max {max_points} point(s)" if max_points else ""),
              file=out)
        failures: List[str] = []
        for script in scripts:
            failures.extend(
                _crash_soak(script, seed, nblocks, stride, max_points,
                            out))
        if failures:
            for text in failures[:20]:
                print(f"  FAIL {text}", file=out)
            print(f"reprochaos: FAILED ({len(failures)} crash-recovery "
                  f"failure(s))", file=out)
            return 1
        print("reprochaos: OK (every crash point recovered; fsck clean, "
              "segments reopen by address)", file=out)
        return 0
    kinds: Sequence[str] = ("INJECT",)
    if net:
        if "net" not in planes:
            planes = list(planes) + ["net"]
        kinds = ("INJECT", "NET")
    if ha:
        if "node" not in planes:
            planes = list(planes) + ["node"]
        kinds = ("INJECT", "NET", "HA")
    try:
        plans = _campaign_plans(planes, rate)
    except ValueError as error:
        raise UsageError(f"reprochaos: {error}")

    print(f"reprochaos: {len(scripts)} script(s) x {runs} run(s), "
          f"base seed {seed}, rate {rate:g}"
          + (f", cluster of {nodes}" if net else "")
          + (" (HA armed)" if ha else ""), file=out)
    for plan in plans:
        print(f"  plan: {plan.describe()}", file=out)

    saved_cluster = os.environ.get("REPRO_CLUSTER")
    saved_ha = os.environ.get("REPRO_HA")
    if net:
        # Cluster-aware scripts (examples/rwho_network.py) read this to
        # boot a cluster instead of a single kernel.
        os.environ["REPRO_CLUSTER"] = str(nodes)
    if ha:
        os.environ["REPRO_HA"] = "1"
    failures = 0
    try:
        for script in scripts:
            for run in range(runs):
                run_seed = seed + run
                first = _chaos_run(script, plans, run_seed, kinds)
                replay = _chaos_run(script, plans, run_seed, kinds)
                drift = first["stream"] != replay["stream"] \
                    or first["outcome"] != replay["outcome"]
                totals = first["totals"]
                verdict = first["outcome"]
                if drift:
                    verdict += " REPLAY-DRIFT"
                if first["outcome"] == "kernel-death" or drift:
                    failures += 1
                line = (f"  {script} seed={run_seed}: {verdict} "
                        f"boots={totals['boots']} "
                        f"injected={totals['triggered']} "
                        f"contained={totals['contained']} "
                        f"retries={totals['retries']} "
                        f"events={len(first['stream'])}")
                if first["detail"]:
                    line += f" [{first['detail']}]"
                print(line, file=out)
                if first["outcome"] == "kernel-death":
                    tail = first["output"].strip().splitlines()[-5:]
                    for text in tail:
                        print(f"    | {text}", file=out)
    finally:
        if net:
            if saved_cluster is None:
                os.environ.pop("REPRO_CLUSTER", None)
            else:
                os.environ["REPRO_CLUSTER"] = saved_cluster
        if ha:
            if saved_ha is None:
                os.environ.pop("REPRO_HA", None)
            else:
                os.environ["REPRO_HA"] = saved_ha
    if failures:
        print(f"reprochaos: FAILED ({failures} kernel death(s) or "
              f"replay drift(s))", file=out)
        return 1
    print("reprochaos: OK (all faults contained, all replays "
          "bit-identical)", file=out)
    return 0


def reprochaos_entry() -> int:
    """Console-script entry point (``reprochaos ...``)."""
    try:
        return reprochaos_main(sys.argv[1:])
    except UsageError as error:
        print(error, file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# repronet — deterministic cluster runs and soaks
# ----------------------------------------------------------------------

def _net_scenario(nnodes: int, seed: int, nhosts: int,
                  implementation: str,
                  readers: Optional[List[int]] = None) -> dict:
    """Boot a cluster, run the rwho scale scenario, shut down."""
    from repro.apps.rwho.cluster import run_cluster_rwho, synth_statuses
    from repro.net import Cluster

    cluster = Cluster(nnodes, seed=seed)
    result = run_cluster_rwho(cluster, synth_statuses(nhosts),
                              implementation, readers=readers)
    cluster.shutdown()
    result["rounds"] = cluster.round
    return result


def _net_soak_run(nnodes: int, seed: int, nhosts: int,
                  implementation: str, plans: Sequence) -> dict:
    """One seeded cluster soak: the rwho scenario under NET-plane
    faults with ``NET``+``INJECT`` tracing armed. Same outcome
    vocabulary as :func:`_chaos_run`."""
    from repro.inject import CAMPAIGN, cancel_injection, request_injection
    from repro.trace import tracer as trace_state
    from repro.trace.tracer import cancel_tracing, request_tracing

    request_injection(plans, seed=seed)
    request_tracing(kinds=["NET", "INJECT"])
    outcome, detail = "clean", ""
    outputs: dict = {}
    cycles: List[int] = []
    try:
        try:
            result = _net_scenario(nnodes, seed, nhosts, implementation)
            outputs = result["outputs"]
            cycles = result["cycles"]
        except (SimulationError, AssertionError) as error:
            outcome = "workload-failure"
            detail = f"{type(error).__name__}: {error}"
        except Exception as error:  # noqa: BLE001 - the point of the soak
            outcome = "kernel-death"
            detail = f"{type(error).__name__}: {error}"
    finally:
        tracer = trace_state.TRACER
        stream = tuple(
            (event.boot, event.cycle, event.pid, event.addr,
             event.name, event.value)
            for event in tracer.events()
        ) if tracer.enabled else ()
        totals = {
            "boots": len(CAMPAIGN),
            "triggered": sum(i.stats.triggered for i in CAMPAIGN),
            "contained": sum(i.stats.contained for i in CAMPAIGN),
        }
        cancel_injection()
        cancel_tracing()
    return {"outcome": outcome, "detail": detail, "stream": stream,
            "outputs": outputs, "cycles": cycles, "totals": totals}


def repronet_main(argv: Sequence[str],
                  stdout: Optional[TextIO] = None) -> int:
    """Inspect and soak the deterministic cluster.

    ``repronet topo [--nodes N] [--seed N]`` prints the cluster shape:
    node count, per-node inode stripes (hence segment address ranges),
    and the seeded per-link delay parameters.

    ``repronet run [--nodes N] [--seed N] [--hosts N] [--impl shm|file]
    [--readers a,b]`` boots a cluster, runs the rwho scale scenario
    once, and prints the traffic/cycle accounting.

    ``repronet soak [--nodes N] [--seed N] [--hosts N] [--rate F]
    [--runs N] [--impl shm|file]`` is the cluster replay-drift soak:
    each seeded configuration runs twice under NET-plane faults
    (drop/dup/delay/corrupt) with ``NET``+``INJECT`` tracing; the two
    runs must agree bit-for-bit on reader outputs, trace streams, and
    per-node cycle counts, and no fault may escape the simulation's
    typed error channels.
    """
    out = stdout if stdout is not None else sys.stdout
    args = list(argv)
    if not args or args[0] not in ("topo", "run", "soak"):
        raise UsageError(
            "repronet: usage: repronet topo|run|soak [--nodes N] "
            "[--seed N] [--hosts N] [--impl shm|file] [--readers a,b] "
            "[--rate F] [--runs N]")
    command = args[0]
    nodes = 4
    seed = 1993
    hosts = 64
    implementation = "shm"
    readers: Optional[List[int]] = None
    rate = 0.01
    runs = 1

    index = 1
    while index < len(args):
        arg = args[index]
        if arg == "--nodes":
            nodes = int(_value(args, index, "--nodes"))
            index += 2
        elif arg == "--seed":
            seed = int(_value(args, index, "--seed"))
            index += 2
        elif arg == "--hosts":
            hosts = int(_value(args, index, "--hosts"))
            index += 2
        elif arg == "--impl":
            implementation = _value(args, index, "--impl")
            index += 2
        elif arg == "--readers":
            names = _value(args, index, "--readers")
            readers = [int(name) for name in names.split(",") if name]
            index += 2
        elif arg == "--rate":
            rate = float(_value(args, index, "--rate"))
            index += 2
        elif arg == "--runs":
            runs = int(_value(args, index, "--runs"))
            index += 2
        else:
            raise UsageError(f"repronet: unknown option {arg!r}")
    if implementation not in ("shm", "file"):
        raise UsageError(f"repronet: unknown --impl {implementation!r}")

    if command == "topo":
        from repro.net import Fabric, mix_seed
        from repro.sfs.sharedfs import MAX_INODES

        fabric = Fabric(nodes, seed)
        stripe = MAX_INODES // nodes
        print(f"repronet: {nodes} node(s), seed {seed}, "
              f"{stripe} inos/stripe", file=out)
        for node in range(nodes):
            lo = node * stripe
            home = " (directory home)" if node == 0 else ""
            print(f"  node {node}: inos [{lo}, {lo + stripe}){home}",
                  file=out)
        for (src, dst), link in sorted(fabric._links.items()):
            print(f"  link {src}->{dst}: base {link.base_delay} "
                  f"round(s) + jitter 0..{link.jitter}, "
                  f"seed {mix_seed(seed, src * nodes + dst):#018x}",
                  file=out)
        return 0

    if command == "run":
        result = _net_scenario(nodes, seed, hosts, implementation,
                               readers)
        print(f"repronet: {implementation} rwho over {nodes} node(s), "
              f"{result['nhosts']} host(s), seed {seed}", file=out)
        print(f"  rounds: {result['broadcast_rounds']} broadcast + "
              f"{result['read_rounds']} read", file=out)
        print(f"  frames: {result['frames_sent']} sent, "
              f"{result['frames_delivered']} delivered "
              f"({result['bytes_sent']} -> {result['bytes_delivered']} "
              f"bytes)", file=out)
        kinds = ", ".join(f"{kind}={count}" for kind, count
                          in sorted(result["by_kind"].items()))
        print(f"  by kind: {kinds}", file=out)
        for node in range(nodes):
            print(f"  node {node}: {result['cycles'][node]} cycles "
                  f"({result['net_cycles'][node]} net)", file=out)
        for node in sorted(result["outputs"]):
            lines = result["outputs"][node].count("\n") + 1
            print(f"  reader on node {node}: {lines} line(s)", file=out)
        return 0

    # soak
    plans = _campaign_plans(["net"], rate)
    print(f"repronet: soak, {nodes} node(s) x {hosts} host(s) x "
          f"{runs} run(s), base seed {seed}, rate {rate:g}", file=out)
    for plan in plans:
        print(f"  plan: {plan.describe()}", file=out)
    failures = 0
    for run in range(runs):
        run_seed = seed + run
        first = _net_soak_run(nodes, run_seed, hosts, implementation,
                              plans)
        replay = _net_soak_run(nodes, run_seed, hosts, implementation,
                               plans)
        drift = first["stream"] != replay["stream"] \
            or first["outputs"] != replay["outputs"] \
            or first["cycles"] != replay["cycles"] \
            or first["outcome"] != replay["outcome"]
        totals = first["totals"]
        verdict = first["outcome"]
        if drift:
            verdict += " REPLAY-DRIFT"
        if first["outcome"] == "kernel-death" or drift:
            failures += 1
        line = (f"  seed={run_seed}: {verdict} "
                f"boots={totals['boots']} "
                f"injected={totals['triggered']} "
                f"contained={totals['contained']} "
                f"events={len(first['stream'])}")
        if first["detail"]:
            line += f" [{first['detail']}]"
        print(line, file=out)
    if failures:
        print(f"repronet: FAILED ({failures} kernel death(s) or "
              f"replay drift(s))", file=out)
        return 1
    print("repronet: OK (all faults contained, all replays "
          "bit-identical)", file=out)
    return 0


def repronet_entry() -> int:
    """Console-script entry point (``repronet ...``)."""
    try:
        return repronet_main(sys.argv[1:])
    except UsageError as error:
        print(error, file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# reprofsck — offline disk-image checking
# ----------------------------------------------------------------------


def reprofsck_main(argv: Sequence[str],
                   stdout: Optional[TextIO] = None) -> int:
    """Check saved device images for damage.

    ``reprofsck [--verbose] image...``

    Each *image* is a host file written by ``BlockDevice.save``. All
    findings carry stable ``DSK###`` codes (see repro.analyze.report);
    a torn journal tail is reported as a statistic, never a finding —
    it is the designed outcome of a crash, not damage. Exit status: 0
    when every image is clean, 1 when any image has findings, 2 on
    usage errors.
    """
    from repro.disk import fsck_image
    from repro.errors import DiskError

    out = stdout if stdout is not None else sys.stdout
    verbose = False
    paths: List[str] = []
    for arg in argv:
        if arg in ("--verbose", "-v"):
            verbose = True
        elif arg.startswith("-"):
            raise UsageError(f"reprofsck: unknown option {arg!r}")
        else:
            paths.append(arg)
    if not paths:
        raise UsageError("reprofsck: usage: reprofsck [--verbose] "
                         "image...")

    dirty = 0
    for path in paths:
        if not os.path.isfile(path):
            raise UsageError(f"reprofsck: no such image: {path}")
        try:
            result = fsck_image(path)
        except DiskError as error:
            print(f"{path}: unreadable: {error}", file=out)
            dirty += 1
            continue
        stats = result.stats
        if len(result.report):
            dirty += 1
            print(result.report.render(), file=out)
        else:
            print(f"{path}: clean", file=out)
        if verbose:
            inodes = ", ".join(f"{key}={count}" for key, count
                               in sorted(stats.inodes.items()))
            print(f"  generation {stats.generation}, applied txn "
                  f"{stats.applied_txid}, {stats.committed_txns} "
                  f"committed txn(s) in the journal "
                  f"({stats.replayed_txns} beyond the checkpoint), "
                  f"{stats.discarded_records} torn-tail record(s) "
                  f"discarded", file=out)
            print(f"  inodes: {inodes}; {stats.segments} public "
                  f"segment(s)", file=out)
    return 1 if dirty else 0


def reprofsck_entry() -> int:
    """Console-script entry point (``reprofsck ...``)."""
    try:
        return reprofsck_main(sys.argv[1:])
    except UsageError as error:
        print(error, file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# reprorr — whole-machine record/replay with a divergence oracle
# ----------------------------------------------------------------------

def _rr_load(path: str):
    from repro.errors import RRError
    from repro.rr import Recording

    if not os.path.isfile(path):
        raise UsageError(f"reprorr: no such recording: {path}")
    try:
        return Recording.load(path)
    except RRError as error:
        raise UsageError(f"reprorr: {path}: {error}")


def reprorr_main(argv: Sequence[str],
                 stdout: Optional[TextIO] = None) -> int:
    """Record, replay, and seek inside deterministic runs.

    ``reprorr record [-o FILE] [--interval N] [--planes P,P]
    [--rate F] [--seed N] [--kinds K,K] [--capacity N] [--nodes N]
    script.py [args...]``

    Records one run: the manifest (script, argv, ``REPRO_*``
    environment, fault plans, seeds, cluster topology) plus the full
    trace-event stream and periodic whole-machine checkpoints every
    ``--interval`` cycles (cluster runs checkpoint at round
    boundaries). ``--nodes N`` exports ``REPRO_CLUSTER=N`` so
    cluster-aware scripts boot an N-node cluster; the variable is
    captured into the manifest, so replays inherit it automatically.
    The recording is written to ``FILE`` (default ``<script>.rrr``).

    ``reprorr replay [--script PATH] recording.rrr``

    The divergence oracle: re-executes the recorded run from its
    manifest and compares the trace-event stream, per-boot cycle
    totals, checkpoint digests, and outcome. Exit 0 when bit-identical;
    exit 1 with the first divergent event and its cycle otherwise.

    ``reprorr seek --cycle N [--script PATH] recording.rrr``

    Time travel: restores the nearest checkpoint at or before cycle N
    (verifying its state digest) and re-executes forward, checking the
    event stream from cycle N onward is bit-identical — which also
    gives reverse-step: seek to any earlier cycle of the same
    recording.

    ``reprorr info recording.rrr`` prints the manifest summary.
    """
    from repro.rr import record_script, replay_script, seek_script

    out = stdout if stdout is not None else sys.stdout
    args = list(argv)
    if not args or args[0] not in ("record", "replay", "seek", "info"):
        raise UsageError(
            "reprorr: usage: reprorr record|replay|seek|info ..."
        )
    mode, args = args[0], args[1:]

    if mode == "info":
        if len(args) != 1:
            raise UsageError("reprorr: usage: reprorr info "
                             "recording.rrr")
        print(_rr_load(args[0]).describe(), file=out)
        return 0

    if mode in ("replay", "seek"):
        script: Optional[str] = None
        cycle: Optional[int] = None
        paths: List[str] = []
        index = 0
        while index < len(args):
            arg = args[index]
            if arg == "--script":
                script = _value(args, index, "--script")
                index += 2
            elif arg == "--cycle" and mode == "seek":
                cycle = int(_value(args, index, "--cycle"))
                index += 2
            elif arg.startswith("-"):
                raise UsageError(f"reprorr: unknown option {arg!r}")
            else:
                paths.append(arg)
                index += 1
        if len(paths) != 1:
            raise UsageError(f"reprorr: {mode} takes exactly one "
                             f"recording")
        if mode == "seek" and cycle is None:
            raise UsageError("reprorr: seek requires --cycle N")
        recording = _rr_load(paths[0])
        if script is None and recording.manifest.get("script") \
                and not os.path.isfile(recording.manifest["script"]):
            raise UsageError(
                f"reprorr: recorded script "
                f"{recording.manifest['script']!r} not found; "
                f"pass --script"
            )
        if mode == "replay":
            report = replay_script(recording, script)
            print(report.render(), file=out)
            return 0 if report.ok else 1
        result = seek_script(recording, cycle, script)
        print(result.render(), file=out)
        return 0 if result.digest_ok and result.suffix_identical else 1

    # record
    from repro.rr.recorder import DEFAULT_INTERVAL

    output: Optional[str] = None
    interval = DEFAULT_INTERVAL
    planes: List[str] = []
    rate = 0.005
    seed = 1993
    kinds: Optional[List[str]] = None
    capacity: Optional[int] = None
    nodes: Optional[int] = None
    script = None
    script_args: List[str] = []
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "-o":
            output = _value(args, index, "-o")
            index += 2
        elif arg == "--interval":
            interval = int(_value(args, index, "--interval"))
            index += 2
        elif arg == "--planes":
            names = _value(args, index, "--planes")
            planes = [name.strip() for name in names.split(",")
                      if name.strip()]
            index += 2
        elif arg == "--rate":
            rate = float(_value(args, index, "--rate"))
            index += 2
        elif arg == "--seed":
            seed = int(_value(args, index, "--seed"))
            index += 2
        elif arg == "--kinds":
            names = _value(args, index, "--kinds")
            kinds = [name for name in names.split(",") if name.strip()]
            index += 2
        elif arg == "--capacity":
            capacity = int(_value(args, index, "--capacity"))
            index += 2
        elif arg == "--nodes":
            nodes = int(_value(args, index, "--nodes"))
            index += 2
        elif arg.startswith("-") and script is None:
            raise UsageError(f"reprorr: unknown option {arg!r}")
        else:
            script = arg
            script_args = args[index + 1:]
            break
    if script is None:
        raise UsageError(
            "reprorr: usage: reprorr record [-o file] [--interval N] "
            "[--planes P,P] [--rate F] [--seed N] [--kinds K,K] "
            "[--capacity N] [--nodes N] script.py [args...]"
        )
    if not os.path.isfile(script):
        raise UsageError(f"reprorr: no such script: {script}")
    try:
        plans = _campaign_plans(planes, rate) if planes else []
    except ValueError as error:
        raise UsageError(f"reprorr: {error}")

    saved_cluster = os.environ.get("REPRO_CLUSTER")
    if nodes is not None:
        os.environ["REPRO_CLUSTER"] = str(nodes)
    try:
        extra = {} if capacity is None else {"capacity": capacity}
        recording = record_script(script, script_args,
                                  interval=interval, plans=plans,
                                  inject_seed=seed, kinds=kinds,
                                  **extra)
    finally:
        if nodes is not None:
            if saved_cluster is None:
                os.environ.pop("REPRO_CLUSTER", None)
            else:
                os.environ["REPRO_CLUSTER"] = saved_cluster
    if output is None:
        stem = os.path.splitext(os.path.basename(script))[0]
        output = f"{stem}.rrr"
    recording.save(output)
    size = os.path.getsize(output)
    print(f"recorded {script}: {len(recording.events)} event(s), "
          f"{len(recording.boots)} boot(s), "
          f"{len(recording.checkpoints)} checkpoint(s), outcome "
          f"{recording.outcome}", file=out)
    print(f"wrote {output} ({size} bytes)", file=out)
    return 0 if recording.outcome != "kernel-death" else 1


def reprorr_entry() -> int:
    """Console-script entry point (``reprorr ...``)."""
    try:
        return reprorr_main(sys.argv[1:])
    except UsageError as error:
        print(error, file=sys.stderr)
        return 2


def _san_armed_run(body) -> "tuple":
    """Run *body* with a fresh sanitizer armed; return (report, stats)."""
    from repro.sanitize import cancel_sanitize, request_sanitize

    sanitizer = request_sanitize()
    try:
        body()
    finally:
        cancel_sanitize()
    return sanitizer.report, sanitizer.stats


def _san_examples_dir() -> str:
    """The in-repo ``examples/`` directory (next to ``src/``)."""
    import repro as _repro

    package = os.path.dirname(os.path.abspath(_repro.__file__))
    return os.path.join(os.path.dirname(os.path.dirname(package)),
                        "examples")


def _san_replay(case, out: TextIO, output: Optional[str]) -> int:
    """Record one armed run of *case*, then time-travel to the first
    finding: seek the recording to the earliest racing access (or heap
    misuse) cycle and verify the suffix replays bit-identically."""
    import contextlib
    import io

    from repro.rr import record_call, seek_call
    from repro.sanitize import cancel_sanitize, request_sanitize

    holder = {}

    def runner() -> None:
        sanitizer = request_sanitize()
        try:
            case.body()
        finally:
            cancel_sanitize()
        holder["report"] = sanitizer.report

    with contextlib.redirect_stdout(io.StringIO()):
        recording = record_call(runner)
    report = holder["report"]
    if report.clean:
        print(f"{case.name}: no findings to replay to", file=out)
        return 1
    if report.races:
        race = report.races[0]
        target = min(race.first.cycle, race.second.cycle)
        print(f"first racing pair ({race.kind} "
              f"{race.segment}+0x{race.offset:x}):", file=out)
        print(f"  first:  {race.first.render()}", file=out)
        print(f"  second: {race.second.render()}", file=out)
    else:
        finding = report.heap[0]
        target = finding.cycle
        print(f"first heap finding: {finding.render()}", file=out)
    if output is not None:
        recording.save(output)
        print(f"wrote {output} ({os.path.getsize(output)} bytes)",
              file=out)
    with contextlib.redirect_stdout(io.StringIO()):
        result = seek_call(recording, target, runner)
    print(result.render(), file=out)
    return 0 if result.digest_ok and result.suffix_identical else 1


def reprosan_main(argv: Sequence[str],
                  stdout: Optional[TextIO] = None) -> int:
    """The sanitizer front end — report, soak, and replay-to-race.

    ``reprosan list``

    Shows the seeded race/heap-misuse corpus
    (:func:`repro.sanitize.corpus.san_cases`), one line per case.

    ``reprosan run CASE [--limit N] [--replay] [-o FILE]``

    Arms the sanitizer, runs the named corpus case, and renders the
    deterministic report. Exit 0 when the case's expected finding
    fired; 1 otherwise. With ``--replay`` the case is instead run
    under the :mod:`repro.rr` recorder and the run is re-executed with
    a seek to the first racing access pair (earliest cycle of the
    pair), verifying the event suffix is bit-identical; ``-o FILE``
    additionally saves the recording.

    ``reprosan soak``

    CI's sanitize-soak: every corpus case runs **twice**; each must
    fire its expected finding and both reports must render
    byte-identically (replay stability). Exit 1 on any miss or drift.

    ``reprosan sweep [DIR]``

    The false-positive gate: runs every ``examples/`` program (or
    every ``*.py`` under DIR) with the sanitizer armed and fails if
    *anything* fires — the examples are race-free by construction.
    """
    import contextlib
    import io
    import runpy

    from repro.sanitize.corpus import case_named, san_cases

    out = stdout if stdout is not None else sys.stdout
    args = list(argv)
    if not args or args[0] not in ("list", "run", "soak", "sweep"):
        raise UsageError(
            "reprosan: usage: reprosan list|run|soak|sweep ..."
        )
    mode, args = args[0], args[1:]

    if mode == "list":
        for case in san_cases():
            print(f"{case.name:24s} [{case.kind}] {case.title}",
                  file=out)
        return 0

    if mode == "run":
        limit = 256
        replay = False
        output: Optional[str] = None
        name: Optional[str] = None
        index = 0
        while index < len(args):
            arg = args[index]
            if arg == "--limit":
                limit = int(_value(args, index, "--limit"))
                index += 2
            elif arg == "--replay":
                replay = True
                index += 1
            elif arg == "-o":
                output = _value(args, index, "-o")
                index += 2
            elif arg.startswith("-"):
                raise UsageError(f"reprosan: unknown option {arg!r}")
            elif name is None:
                name = arg
                index += 1
            else:
                raise UsageError("reprosan: run takes exactly one CASE")
        if name is None:
            raise UsageError("reprosan: usage: reprosan run CASE "
                             "[--limit N] [--replay] [-o FILE]")
        try:
            case = case_named(name)
        except KeyError:
            known = ", ".join(c.name for c in san_cases())
            raise UsageError(f"reprosan: no corpus case {name!r} "
                             f"(known: {known})")
        if replay:
            return _san_replay(case, out, output)
        with contextlib.redirect_stdout(io.StringIO()):
            report = case.run(report_limit=limit)
        print(report.render(), file=out)
        fired = case.expect in report.render()
        print(f"expected {case.expect!r}: "
              f"{'fired' if fired else 'MISSING'}", file=out)
        return 0 if fired else 1

    if mode == "soak":
        if args:
            raise UsageError("reprosan: soak takes no arguments")
        failures = 0
        for case in san_cases():
            with contextlib.redirect_stdout(io.StringIO()):
                first = case.run().render()
                second = case.run().render()
            fired = case.expect in first
            stable = first == second
            verdict = "ok" if fired and stable else \
                ("DRIFT" if fired else "MISSING")
            findings = first.splitlines()[0].split(": ", 1)[1]
            print(f"{case.name:24s} {verdict:8s} {findings}", file=out)
            if verdict != "ok":
                failures += 1
        print(f"soak: {len(san_cases()) - failures}/{len(san_cases())} "
              f"case(s) ok", file=out)
        return 0 if failures == 0 else 1

    # sweep
    if len(args) > 1:
        raise UsageError("reprosan: usage: reprosan sweep [DIR]")
    directory = args[0] if args else _san_examples_dir()
    if not os.path.isdir(directory):
        raise UsageError(f"reprosan: no such directory: {directory}")
    scripts = sorted(entry for entry in os.listdir(directory)
                     if entry.endswith(".py"))
    if not scripts:
        raise UsageError(f"reprosan: no *.py scripts in {directory}")
    dirty = 0
    for script in scripts:
        path = os.path.join(directory, script)
        with contextlib.redirect_stdout(io.StringIO()):
            report, stats = _san_armed_run(
                lambda: runpy.run_path(path, run_name="__main__"))
        if report.clean:
            print(f"{script:24s} clean ({stats.accesses} access(es), "
                  f"{stats.hb_edges} hb edge(s))", file=out)
        else:
            dirty += 1
            print(f"{script:24s} {len(report.races)} race(s), "
                  f"{len(report.heap)} heap finding(s):", file=out)
            print(report.render(), file=out)
    print(f"sweep: {len(scripts) - dirty}/{len(scripts)} script(s) "
          f"clean", file=out)
    return 0 if dirty == 0 else 1


def reprosan_entry() -> int:
    """Console-script entry point (``reprosan ...``)."""
    try:
        return reprosan_main(sys.argv[1:])
    except UsageError as error:
        print(error, file=sys.stderr)
        return 2


def load_archive(kernel: Kernel, proc: Process, path: str) -> Archive:
    data = kernel.vfs.read_whole(path, proc.uid, cwd=proc.cwd)
    return Archive.from_bytes(data)


def _load_any(kernel: Kernel, proc: Process, path: str) -> ObjectFile:
    try:
        return load_template(kernel, proc, path)
    except SimulationError as error:
        raise LinkError(f"{path!r} is not a HOF object: {error}")


def _value(args: List[str], index: int, flag: str) -> str:
    if index + 1 >= len(args):
        raise UsageError(f"lds: {flag} needs a value")
    return args[index + 1]


def _one_output_one_input(argv: Sequence[str], tool: str,
                          extension: str) -> "tuple[str, str]":
    args = list(argv)
    output = None
    inputs = []
    index = 0
    while index < len(args):
        if args[index] == "-o":
            output = _value(args, index, "-o")
            index += 2
        elif args[index].startswith("-"):
            raise UsageError(f"{tool}: unknown option {args[index]!r}")
        else:
            inputs.append(args[index])
            index += 1
    if len(inputs) != 1:
        raise UsageError(f"{tool}: exactly one input file required")
    if output is None:
        source = inputs[0]
        base = source[: -len(extension)] if source.endswith(extension) \
            else source
        output = base + ".o"
    return output, inputs[0]


if __name__ == "__main__":  # pragma: no cover - console convenience
    # ``python -m repro.tools.cli [reprotrace|reprochaos|reprofsck]``
    # — the host-side tools; the rest run inside the simulation.
    _ENTRIES = {"reprotrace": reprotrace_entry,
                "reprochaos": reprochaos_entry,
                "repronet": repronet_entry,
                "reprofsck": reprofsck_entry,
                "reprorr": reprorr_entry,
                "reprosan": reprosan_entry}
    _args = sys.argv[1:]
    _entry = reprotrace_entry
    if _args and _args[0] in _ENTRIES:
        _entry = _ENTRIES[_args[0]]
        _args = _args[1:]
    sys.argv = [sys.argv[0]] + _args
    sys.exit(_entry())
