"""toyc — a small C-like compiler targeting the simulated toolchain.

Figure 1 of the paper starts at ``cc``: shared and private ``.c`` files
are compiled to ``.o`` templates that lds/ldl then link. toyc plays that
role, so every Hemlock scenario can be driven from source code rather
than hand-written assembly.

The language ("Toy C") is a C subset:

* types: ``int`` (32-bit), ``char``, pointers (``int *``, ``char *``),
  one-dimensional arrays, and named ``struct`` types (with nested
  structs, array members, and self-reference through pointers — the
  linked-list idiom of §4's xfig and compiler-table examples); structs
  are accessed via ``.``/``->`` and passed by pointer;
* globals with initializers (including string initializers and arrays),
  ``extern`` declarations for objects defined in other modules — this is
  exactly how a program names shared variables (§2: "declared in a
  separate .h file, and defined in a separate .c file");
* functions with up to four ``int``-sized parameters (the a0–a3
  registers), local variables and arrays, recursion;
* statements: blocks, ``if``/``else``, ``while``, ``for``, ``return``,
  expression statements;
* expressions: integer/char/string literals, variables, indexing, calls,
  assignment, ``& * + - ! ~``, the usual binary arithmetic, comparison,
  shift, bitwise and short-circuit logical operators;
* pointer arithmetic scales by the element size, as in C.

The compiler makes no attempt at optimization: it generates
straightforward stack-machine code, which is plenty for studying linking
behaviour. Like the paper's SGI compilers with the ``-G 0`` analogue, it
never uses the global-pointer register (gp-relative addressing is
incompatible with the sparse shared address space, §3).
"""

from repro.toyc.compiler import compile_source, compile_to_assembly

__all__ = ["compile_source", "compile_to_assembly"]
