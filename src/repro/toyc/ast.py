"""AST node definitions for Toy C.

Types are represented by :class:`CType`, a tiny lattice: ``int``,
``char``, pointers to either, and arrays (which decay to pointers in
expressions, as in C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass(frozen=True)
class CType:
    """A Toy C type: base ('int' | 'char' | 'void' | 'struct') + pointer
    depth + array length.

    Struct types carry their tag and (parser-computed) size inline, so
    the type stays a self-contained value and ``size`` needs no
    registry. Member offsets live in the translation unit's struct
    table.
    """

    base: str
    pointers: int = 0
    array_length: Optional[int] = None
    struct_tag: Optional[str] = None
    struct_size: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0 and self.array_length is None

    @property
    def is_array(self) -> bool:
        return self.array_length is not None

    @property
    def is_struct(self) -> bool:
        return self.base == "struct" and self.pointers == 0 \
            and not self.is_array

    def element(self) -> "CType":
        """The type obtained by dereferencing or indexing."""
        if self.is_array:
            return CType(self.base, self.pointers, None,
                         self.struct_tag, self.struct_size)
        if self.pointers > 0:
            return CType(self.base, self.pointers - 1, None,
                         self.struct_tag, self.struct_size)
        raise ValueError(f"cannot dereference {self}")

    def decayed(self) -> "CType":
        """Arrays decay to pointers in expressions."""
        if self.is_array:
            return CType(self.base, self.pointers + 1, None,
                         self.struct_tag, self.struct_size)
        return self

    @property
    def size(self) -> int:
        """Size in bytes of one object of this type."""
        if self.is_array:
            return self.element_size * (self.array_length or 0)
        if self.pointers > 0:
            return 4
        if self.base == "struct":
            return self.struct_size
        return {"int": 4, "char": 1, "void": 0}[self.base]

    @property
    def element_size(self) -> int:
        """Size of the pointed-to / indexed element (for scaling)."""
        if self.is_array or self.pointers > 0:
            return self.element().size
        return self.size

    def __str__(self) -> str:
        base = f"struct {self.struct_tag}" if self.base == "struct" \
            else self.base
        text = base + "*" * self.pointers
        if self.is_array:
            text += f"[{self.array_length}]"
        return text


INT = CType("int")
CHAR = CType("char")
VOID = CType("void")
CHAR_PTR = CType("char", 1)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    line: int


@dataclass
class NumberLit(Expr):
    value: int


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str            # '-', '!', '~', '*', '&'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    target: Expr       # VarRef, Unary('*'), or Index
    value: Expr


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    name: str
    args: List[Expr]


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Expr
    field: str
    arrow: bool


@dataclass
class SizeofType(Expr):
    target: "CType"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    statements: List[Stmt]


@dataclass
class If(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt]


@dataclass
class While(Stmt):
    condition: Expr
    body: Stmt


@dataclass
class For(Stmt):
    init: Optional[Expr]
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class LocalDecl(Stmt):
    name: str
    ctype: CType
    initializer: Optional[Expr]


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------

Initializer = Union[int, str, List[int], None]


@dataclass
class GlobalDecl:
    name: str
    ctype: CType
    initializer: Initializer
    extern: bool
    line: int


@dataclass
class Param:
    name: str
    ctype: CType


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    params: List[Param]
    body: Block
    extern: bool          # declaration only (no body)
    line: int


@dataclass
class StructField:
    name: str
    ctype: CType
    offset: int


@dataclass
class StructDecl:
    """A named struct layout, offsets computed at parse time."""

    tag: str
    fields: List[StructField]
    size: int

    def field(self, name: str) -> Optional[StructField]:
        for entry in self.fields:
            if entry.name == name:
                return entry
        return None


@dataclass
class TranslationUnit:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    structs: dict = field(default_factory=dict)  # tag -> StructDecl
