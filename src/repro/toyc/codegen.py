"""Code generation: Toy C AST -> assembly text for repro.hw.asm.

The generated code is deliberately simple and uniform:

* expression results live in ``v0``; binary operators stash the left
  operand on the stack, so values never live in registers across calls;
* locals and spilled parameters live at negative offsets from ``fp``
  (set to the caller's ``sp`` on entry);
* the global-pointer register is never used (§3: its 16-bit offsets are
  incompatible with a large sparse address space);
* every reference to a global goes through an absolute ``la``/
  symbol-addressed load, producing the HI16/LO16 relocations the linkers
  resolve — which is exactly what makes ``extern`` variables in shared
  modules work with ordinary language syntax.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.toyc import ast

_WORD = 4


class _FunctionContext:
    """Per-function state: frame layout, labels, loop stack."""

    def __init__(self, func: ast.FunctionDef, label_prefix: str) -> None:
        self.func = func
        self.label_prefix = label_prefix
        self.locals: Dict[str, Tuple[int, ast.CType]] = {}
        self.frame_bytes = 8  # saved ra + saved fp
        self.loop_stack: List[Tuple[str, str]] = []  # (break, continue)
        self.label_counter = 0

    def add_local(self, name: str, ctype: ast.CType, line: int) -> int:
        if name in self.locals:
            raise CompileError(f"redefinition of {name!r}", line)
        # Layout: fp-4 = saved ra, fp-8 = saved fp, locals below that.
        size = (max(ctype.size, _WORD) + 3) & ~3
        self.frame_bytes += size
        offset = -self.frame_bytes
        self.locals[name] = (offset, ctype)
        return offset

    def lookup(self, name: str) -> Optional[Tuple[int, ast.CType]]:
        return self.locals.get(name)

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f"__{self.label_prefix}_{hint}_{self.label_counter}"


class CodeGenerator:
    """Generates one module's assembly from a translation unit."""

    def __init__(self, unit: ast.TranslationUnit, module_name: str) -> None:
        self.unit = unit
        self.structs = unit.structs
        self.module = module_name.replace(".", "_").replace("/", "_")
        self.text: List[str] = []
        self.data: List[str] = []
        self.bss: List[str] = []
        self.strings: Dict[str, str] = {}
        self.global_types: Dict[str, ast.CType] = {}
        self.function_returns: Dict[str, ast.CType] = {}
        self.defined_functions: set = set()

    # ------------------------------------------------------------------

    def generate(self) -> str:
        for decl in self.unit.globals:
            self.global_types[decl.name] = decl.ctype
        for func in self.unit.functions:
            self.function_returns[func.name] = func.return_type
            if not func.extern:
                self.defined_functions.add(func.name)
        for decl in self.unit.globals:
            self._gen_global(decl)
        for func in self.unit.functions:
            if not func.extern:
                self._gen_function(func)
        lines = ["        .text"]
        lines += self.text
        if self.data or self.strings:
            lines.append("        .data")
            lines += self.data
            for label, value in self.strings.items():
                lines.append(f"{label}:")
                lines.append(f'        .asciiz "{_escape(value)}"')
        if self.bss:
            lines.append("        .bss")
            lines += self.bss
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # globals
    # ------------------------------------------------------------------

    def _gen_global(self, decl: ast.GlobalDecl) -> None:
        if decl.extern:
            return  # references produce undefined symbols naturally
        name = decl.name
        ctype = decl.ctype
        size = max(ctype.size, _WORD) if not ctype.is_array \
            else ctype.size
        kind = "ptr" if ctype.is_pointer else ctype.base
        if decl.initializer is not None and ctype.is_struct:
            raise CompileError(
                f"struct global {name!r} cannot have an initializer",
                decl.line,
            )
        if decl.initializer is None:
            self.bss.append(f"        .globl {name}")
            self.bss.append(f"        .size {name}, {size}")
            self.bss.append(f"        .type {name}, {kind}")
            self.bss.append("        .align 4")
            self.bss.append(f"{name}:")
            self.bss.append(f"        .space {max(ctype.size, _WORD)}")
            return
        self.data.append(f"        .globl {name}")
        self.data.append(f"        .size {name}, {size}")
        self.data.append(f"        .type {name}, {kind}")
        self.data.append("        .align 4")
        self.data.append(f"{name}:")
        init = decl.initializer
        if isinstance(init, str):
            if ctype.is_pointer:
                label = self._string_label(init)
                self.data.append(f"        .word {label}")
            else:
                self.data.append(f'        .asciiz "{_escape(init)}"')
                pad = ctype.size - (len(init) + 1)
                if pad > 0:
                    self.data.append(f"        .space {pad}")
        elif isinstance(init, list):
            if not ctype.is_array:
                raise CompileError(
                    f"brace initializer on non-array {name!r}", decl.line
                )
            width = ctype.element_size
            directive = ".word" if width == _WORD else ".byte"
            for value in init:
                self.data.append(f"        {directive} {value}")
            remaining = (ctype.array_length or 0) - len(init)
            if remaining > 0:
                self.data.append(f"        .space {remaining * width}")
        else:
            self.data.append(f"        .word {int(init)}")

    def _string_label(self, value: str) -> str:
        for label, existing in self.strings.items():
            if existing == value:
                return label
        label = f"__{self.module}_str_{len(self.strings)}"
        self.strings[label] = value
        return label

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------

    def _gen_function(self, func: ast.FunctionDef) -> None:
        if len(func.params) > 4:
            raise CompileError(
                f"{func.name!r}: at most 4 parameters are supported",
                func.line,
            )
        ctx = _FunctionContext(func, f"{self.module}_{func.name}")
        for param in func.params:
            ctx.add_local(param.name, param.ctype, func.line)
        body_code: List[str] = []
        self._gen_block(ctx, func.body, body_code)

        frame = (ctx.frame_bytes + 7) & ~7
        out = self.text
        out.append(f"        .globl {func.name}")
        out.append(f"{func.name}:")
        out.append(f"        addi sp, sp, -{frame}")
        out.append(f"        sw ra, {frame - 4}(sp)")
        out.append(f"        sw fp, {frame - 8}(sp)")
        out.append(f"        addi fp, sp, {frame}")
        for index, param in enumerate(func.params):
            offset, _ = ctx.locals[param.name]
            out.append(f"        sw a{index}, {offset}(fp)")
        out.extend(body_code)
        out.append("        li v0, 0")  # falling off the end returns 0
        out.append(f"__{ctx.label_prefix}_ret:")
        out.append("        lw ra, -4(fp)")
        out.append("        move t9, fp")
        out.append("        lw fp, -8(t9)")
        out.append("        move sp, t9")
        out.append("        jr ra")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _gen_block(self, ctx: _FunctionContext, block: ast.Block,
                   out: List[str]) -> None:
        for stmt in block.statements:
            self._gen_statement(ctx, stmt, out)

    def _gen_statement(self, ctx: _FunctionContext, stmt: ast.Stmt,
                       out: List[str]) -> None:
        if isinstance(stmt, ast.Block):
            self._gen_block(ctx, stmt, out)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(ctx, stmt.expr, out)
        elif isinstance(stmt, ast.LocalDecl):
            offset = ctx.add_local(stmt.name, stmt.ctype, stmt.line)
            if stmt.initializer is not None:
                self._gen_expr(ctx, stmt.initializer, out)
                self._store_local(stmt.ctype, offset, out)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._gen_expr(ctx, stmt.value, out)
            else:
                out.append("        li v0, 0")
            out.append(f"        b __{ctx.label_prefix}_ret")
        elif isinstance(stmt, ast.If):
            self._gen_if(ctx, stmt, out)
        elif isinstance(stmt, ast.While):
            self._gen_while(ctx, stmt, out)
        elif isinstance(stmt, ast.For):
            self._gen_for(ctx, stmt, out)
        elif isinstance(stmt, ast.Break):
            if not ctx.loop_stack:
                raise CompileError("break outside a loop", stmt.line)
            out.append(f"        b {ctx.loop_stack[-1][0]}")
        elif isinstance(stmt, ast.Continue):
            if not ctx.loop_stack:
                raise CompileError("continue outside a loop", stmt.line)
            out.append(f"        b {ctx.loop_stack[-1][1]}")
        else:
            raise CompileError(f"unsupported statement {stmt!r}", stmt.line)

    def _gen_if(self, ctx: _FunctionContext, stmt: ast.If,
                out: List[str]) -> None:
        else_label = ctx.new_label("else")
        end_label = ctx.new_label("endif")
        self._gen_expr(ctx, stmt.condition, out)
        out.append(f"        beqz v0, {else_label}")
        self._gen_statement(ctx, stmt.then_branch, out)
        if stmt.else_branch is not None:
            out.append(f"        b {end_label}")
        out.append(f"{else_label}:")
        if stmt.else_branch is not None:
            self._gen_statement(ctx, stmt.else_branch, out)
            out.append(f"{end_label}:")

    def _gen_while(self, ctx: _FunctionContext, stmt: ast.While,
                   out: List[str]) -> None:
        top = ctx.new_label("while")
        end = ctx.new_label("wend")
        ctx.loop_stack.append((end, top))
        out.append(f"{top}:")
        self._gen_expr(ctx, stmt.condition, out)
        out.append(f"        beqz v0, {end}")
        self._gen_statement(ctx, stmt.body, out)
        out.append(f"        b {top}")
        out.append(f"{end}:")
        ctx.loop_stack.pop()

    def _gen_for(self, ctx: _FunctionContext, stmt: ast.For,
                 out: List[str]) -> None:
        top = ctx.new_label("for")
        step_label = ctx.new_label("fstep")
        end = ctx.new_label("fend")
        if stmt.init is not None:
            self._gen_expr(ctx, stmt.init, out)
        ctx.loop_stack.append((end, step_label))
        out.append(f"{top}:")
        if stmt.condition is not None:
            self._gen_expr(ctx, stmt.condition, out)
            out.append(f"        beqz v0, {end}")
        self._gen_statement(ctx, stmt.body, out)
        out.append(f"{step_label}:")
        if stmt.step is not None:
            self._gen_expr(ctx, stmt.step, out)
        out.append(f"        b {top}")
        out.append(f"{end}:")
        ctx.loop_stack.pop()

    # ------------------------------------------------------------------
    # expressions (result in v0; returns the expression's type)
    # ------------------------------------------------------------------

    def _gen_expr(self, ctx: _FunctionContext, expr: ast.Expr,
                  out: List[str]) -> ast.CType:
        if isinstance(expr, ast.NumberLit):
            out.append(f"        li v0, {expr.value}")
            return ast.INT
        if isinstance(expr, ast.StringLit):
            label = self._string_label(expr.value)
            out.append(f"        la v0, {label}")
            return ast.CHAR_PTR
        if isinstance(expr, ast.SizeofType):
            out.append(f"        li v0, {expr.target.size}")
            return ast.INT
        if isinstance(expr, ast.VarRef):
            return self._gen_varref(ctx, expr, out)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(ctx, expr, out)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(ctx, expr, out)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(ctx, expr, out)
        if isinstance(expr, ast.Index):
            ctype = self._gen_address(ctx, expr, out)
            return self._load_through(ctype, out)
        if isinstance(expr, ast.Member):
            ctype = self._gen_address(ctx, expr, out)
            return self._load_through(ctype, out)
        if isinstance(expr, ast.Call):
            return self._gen_call(ctx, expr, out)
        raise CompileError(f"unsupported expression {expr!r}", expr.line)

    def _gen_varref(self, ctx: _FunctionContext, expr: ast.VarRef,
                    out: List[str]) -> ast.CType:
        local = ctx.lookup(expr.name)
        if local is not None:
            offset, ctype = local
            if ctype.is_array or ctype.is_struct:
                out.append(f"        addi v0, fp, {offset}")
                return ctype.decayed() if ctype.is_array else ctype
            out.append(f"        {_load_op(ctype)} v0, {offset}(fp)")
            return ctype
        ctype = self.global_types.get(expr.name)
        if ctype is None:
            # Unknown identifier: assume an extern int, as K&R C would.
            ctype = ast.INT
        if ctype.is_array or ctype.is_struct:
            out.append(f"        la v0, {expr.name}")
            return ctype.decayed() if ctype.is_array else ctype
        out.append(f"        {_load_op(ctype)} v0, {expr.name}")
        return ctype

    def _gen_address(self, ctx: _FunctionContext, expr: ast.Expr,
                     out: List[str]) -> ast.CType:
        """Leave an lvalue's address in v0; returns the *object* type."""
        if isinstance(expr, ast.VarRef):
            local = ctx.lookup(expr.name)
            if local is not None:
                offset, ctype = local
                out.append(f"        addi v0, fp, {offset}")
                return ctype
            ctype = self.global_types.get(expr.name, ast.INT)
            out.append(f"        la v0, {expr.name}")
            return ctype
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self._gen_expr(ctx, expr.operand, out)
            return _element_of(pointer, expr.line)
        if isinstance(expr, ast.Index):
            base_type = self._gen_expr(ctx, expr.base, out)
            element = _element_of(base_type, expr.line)
            self._push(out)
            self._gen_expr(ctx, expr.index, out)
            self._scale(element.size, out)
            self._pop("t0", out)
            out.append("        add v0, t0, v0")
            return element
        if isinstance(expr, ast.Member):
            return self._gen_member_address(ctx, expr, out)
        raise CompileError("expression is not an lvalue", expr.line)

    def _gen_member_address(self, ctx: _FunctionContext,
                            expr: ast.Member,
                            out: List[str]) -> ast.CType:
        """Leave the address of ``base.field`` / ``base->field`` in v0;
        returns the field's type."""
        if expr.arrow:
            base_type = self._gen_expr(ctx, expr.base, out)
            if not (base_type.is_pointer and base_type.base == "struct"):
                raise CompileError(
                    f"'->' applied to non-struct-pointer {base_type}",
                    expr.line,
                )
            struct_type = base_type.element()
        else:
            struct_type = self._gen_address(ctx, expr.base, out)
            if not struct_type.is_struct:
                raise CompileError(
                    f"'.' applied to non-struct {struct_type}", expr.line
                )
        decl = self.structs.get(struct_type.struct_tag or "")
        if decl is None:
            raise CompileError(
                f"unknown struct {struct_type.struct_tag!r}", expr.line
            )
        field = decl.field(expr.field)
        if field is None:
            raise CompileError(
                f"struct {decl.tag!r} has no field {expr.field!r}",
                expr.line,
            )
        if field.offset:
            out.append(f"        addi v0, v0, {field.offset}")
        return field.ctype

    def _gen_assign(self, ctx: _FunctionContext, expr: ast.Assign,
                    out: List[str]) -> ast.CType:
        # Fast path: scalar local/global targets avoid address math.
        if isinstance(expr.target, ast.VarRef):
            local = ctx.lookup(expr.target.name)
            if local is not None and not local[1].is_array:
                offset, ctype = local
                self._gen_expr(ctx, expr.value, out)
                self._store_local(ctype, offset, out)
                return ctype
        ctype = self._gen_address(ctx, expr.target, out)
        if ctype.is_struct:
            raise CompileError(
                "struct assignment by value is not supported; copy "
                "members or use pointers", expr.line,
            )
        self._push(out)
        self._gen_expr(ctx, expr.value, out)
        self._pop("t0", out)
        out.append(f"        {_store_op(ctype)} v0, 0(t0)")
        return ctype

    def _gen_unary(self, ctx: _FunctionContext, expr: ast.Unary,
                   out: List[str]) -> ast.CType:
        if expr.op == "&":
            ctype = self._gen_address(ctx, expr.operand, out)
            return ast.CType(ctype.base, ctype.pointers + 1, None,
                             ctype.struct_tag, ctype.struct_size)
        if expr.op == "*":
            pointer = self._gen_expr(ctx, expr.operand, out)
            element = _element_of(pointer, expr.line)
            return self._load_through(element, out)
        ctype = self._gen_expr(ctx, expr.operand, out)
        if expr.op == "-":
            out.append("        sub v0, zero, v0")
        elif expr.op == "!":
            out.append("        sltiu v0, v0, 1")
        elif expr.op == "~":
            out.append("        nor v0, v0, zero")
        else:
            raise CompileError(f"bad unary operator {expr.op!r}", expr.line)
        return ast.INT

    def _gen_binary(self, ctx: _FunctionContext, expr: ast.Binary,
                    out: List[str]) -> ast.CType:
        if expr.op in ("&&", "||"):
            return self._gen_logical(ctx, expr, out)
        if expr.op in ("<<", ">>"):
            return self._gen_shift(ctx, expr, out)

        left_type = self._gen_expr(ctx, expr.left, out)
        self._push(out)
        right_type = self._gen_expr(ctx, expr.right, out)

        # Pointer arithmetic scaling.
        if expr.op == "+" and _is_pointerish(left_type) \
                and not _is_pointerish(right_type):
            self._scale(_element_of(left_type, expr.line).size, out)
        if expr.op == "-" and _is_pointerish(left_type) \
                and not _is_pointerish(right_type):
            self._scale(_element_of(left_type, expr.line).size, out)
        self._pop("t0", out)
        if expr.op == "+" and _is_pointerish(right_type) \
                and not _is_pointerish(left_type):
            # i + p: scale the left operand (now in t0).
            scale = _element_of(right_type, expr.line).size
            if scale != 1:
                out.append(f"        li t1, {scale}")
                out.append("        mul t0, t0, t1")

        table = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
            "&": "and", "|": "or", "^": "xor",
        }
        if expr.op in table:
            out.append(f"        {table[expr.op]} v0, t0, v0")
            if expr.op == "-" and _is_pointerish(left_type) \
                    and _is_pointerish(right_type):
                scale = _element_of(left_type, expr.line).size
                if scale != 1:
                    out.append(f"        li t1, {scale}")
                    out.append("        div v0, v0, t1")
                return ast.INT
            if expr.op in ("+", "-") and _is_pointerish(left_type):
                return left_type.decayed()
            if expr.op == "+" and _is_pointerish(right_type):
                return right_type.decayed()
            return ast.INT
        comparisons = {
            "<": ["        slt v0, t0, v0"],
            ">": ["        slt v0, v0, t0"],
            "<=": ["        slt v0, v0, t0", "        xori v0, v0, 1"],
            ">=": ["        slt v0, t0, v0", "        xori v0, v0, 1"],
            "==": ["        xor t1, t0, v0", "        sltiu v0, t1, 1"],
            "!=": ["        xor t1, t0, v0", "        sltu v0, zero, t1"],
        }
        if expr.op in comparisons:
            out.extend(comparisons[expr.op])
            return ast.INT
        raise CompileError(f"bad binary operator {expr.op!r}", expr.line)

    def _gen_shift(self, ctx: _FunctionContext, expr: ast.Binary,
                   out: List[str]) -> ast.CType:
        if isinstance(expr.right, ast.NumberLit):
            amount = expr.right.value
            if not 0 <= amount < 32:
                raise CompileError("shift amount out of range", expr.line)
            self._gen_expr(ctx, expr.left, out)
            op = "sll" if expr.op == "<<" else "srl"
            out.append(f"        {op} v0, v0, {amount}")
            return ast.INT
        # Variable amount: use the register-shift instructions.
        self._gen_expr(ctx, expr.left, out)
        self._push(out)
        self._gen_expr(ctx, expr.right, out)
        self._pop("t0", out)
        op = "sllv" if expr.op == "<<" else "srlv"
        out.append(f"        {op} v0, t0, v0")
        return ast.INT

    def _gen_logical(self, ctx: _FunctionContext, expr: ast.Binary,
                     out: List[str]) -> ast.CType:
        end = ctx.new_label("lend")
        self._gen_expr(ctx, expr.left, out)
        out.append("        sltu v0, zero, v0")
        if expr.op == "&&":
            out.append(f"        beqz v0, {end}")
        else:
            out.append(f"        bnez v0, {end}")
        self._gen_expr(ctx, expr.right, out)
        out.append("        sltu v0, zero, v0")
        out.append(f"{end}:")
        return ast.INT

    def _gen_call(self, ctx: _FunctionContext, expr: ast.Call,
                  out: List[str]) -> ast.CType:
        if len(expr.args) > 4:
            raise CompileError(
                f"call to {expr.name!r}: at most 4 arguments", expr.line
            )
        for arg in expr.args:
            self._gen_expr(ctx, arg, out)
            self._push(out)
        for index in reversed(range(len(expr.args))):
            self._pop(f"a{index}", out)
        out.append(f"        jal {expr.name}")
        return self.function_returns.get(expr.name, ast.INT)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _push(self, out: List[str]) -> None:
        out.append("        addi sp, sp, -4")
        out.append("        sw v0, 0(sp)")

    def _pop(self, register: str, out: List[str]) -> None:
        out.append(f"        lw {register}, 0(sp)")
        out.append("        addi sp, sp, 4")

    def _scale(self, size: int, out: List[str]) -> None:
        if size == 1:
            return
        if size & (size - 1) == 0:
            out.append(f"        sll v0, v0, {size.bit_length() - 1}")
        else:
            out.append(f"        li t1, {size}")
            out.append("        mul v0, v0, t1")

    def _store_local(self, ctype: ast.CType, offset: int,
                     out: List[str]) -> None:
        out.append(f"        {_store_op(ctype)} v0, {offset}(fp)")

    def _load_through(self, ctype: ast.CType, out: List[str]) -> ast.CType:
        """v0 holds an address of *ctype*; load the value."""
        if ctype.is_array:
            return ctype.decayed()  # address already is the value
        if ctype.is_struct:
            return ctype            # structs are handled by address
        out.append(f"        {_load_op(ctype)} v0, 0(v0)")
        return ctype


def _load_op(ctype: ast.CType) -> str:
    return "lbu" if ctype.size == 1 and not ctype.is_pointer else "lw"


def _store_op(ctype: ast.CType) -> str:
    return "sb" if ctype.size == 1 and not ctype.is_pointer else "sw"


def _is_pointerish(ctype: ast.CType) -> bool:
    return ctype.is_pointer or ctype.is_array


def _element_of(ctype: ast.CType, line: int) -> ast.CType:
    try:
        return ctype.element()
    except ValueError:
        raise CompileError(f"cannot dereference {ctype}", line) from None


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"')
        .replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0")
    )
