"""Compiler driver: Toy C source -> assembly -> HOF template."""

from __future__ import annotations

from repro.hw.asm import assemble
from repro.objfile.format import ObjectFile
from repro.toyc.codegen import CodeGenerator
from repro.toyc.parser import parse


def compile_to_assembly(source: str, name: str = "module") -> str:
    """Compile Toy C *source* to assembly text."""
    unit = parse(source)
    return CodeGenerator(unit, name).generate()

def compile_source(source: str, name: str = "module.o") -> ObjectFile:
    """Compile Toy C *source* to a relocatable object (a template)."""
    base = name[:-2] if name.endswith(".o") else name
    return assemble(compile_to_assembly(source, base), name)
