"""Tokenizer for Toy C."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CompileError

KEYWORDS = {
    "int", "char", "void", "if", "else", "while", "for", "return",
    "extern", "break", "continue", "sizeof", "struct",
}

# Longest-first so that '->' never mis-lexes as '-' then '>'.
OPERATORS = [
    "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str        # 'ident', 'number', 'string', 'char', 'op', 'keyword',
    #                  'eof'
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Produce the token list (ending with an 'eof' token)."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    index = 0
    line = 1
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            continue
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", index, end)
            index = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line)
            continue
        if ch.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X",
                                                                   index):
                index += 2
                while index < length and source[index] in \
                        "0123456789abcdefABCDEF":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            yield Token("number", source[start:index], line)
            continue
        if ch == '"':
            text, index = _string(source, index, line)
            yield Token("string", text, line)
            continue
        if ch == "'":
            text, index = _char(source, index, line)
            yield Token("char", text, line)
            continue
        for op in OPERATORS:
            if source.startswith(op, index):
                yield Token("op", op, line)
                index += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    yield Token("eof", "", line)


_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"',
            "'": "'"}


def _string(source: str, index: int, line: int) -> "tuple[str, int]":
    out = []
    index += 1
    while index < len(source):
        ch = source[index]
        if ch == '"':
            return "".join(out), index + 1
        if ch == "\n":
            raise CompileError("newline in string literal", line)
        if ch == "\\":
            if index + 1 >= len(source):
                break
            escape = source[index + 1]
            if escape not in _ESCAPES:
                raise CompileError(f"bad escape \\{escape}", line)
            out.append(_ESCAPES[escape])
            index += 2
            continue
        out.append(ch)
        index += 1
    raise CompileError("unterminated string literal", line)


def _char(source: str, index: int, line: int) -> "tuple[str, int]":
    index += 1
    if index >= len(source):
        raise CompileError("unterminated char literal", line)
    ch = source[index]
    if ch == "\\":
        if index + 1 >= len(source):
            raise CompileError("unterminated char literal", line)
        escape = source[index + 1]
        if escape not in _ESCAPES:
            raise CompileError(f"bad escape \\{escape}", line)
        value = _ESCAPES[escape]
        index += 2
    else:
        value = ch
        index += 1
    if index >= len(source) or source[index] != "'":
        raise CompileError("unterminated char literal", line)
    return value, index + 1
