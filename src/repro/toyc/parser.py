"""Recursive-descent parser for Toy C."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompileError
from repro.toyc import ast
from repro.toyc.lexer import Token, tokenize

# Binary operator precedence (higher binds tighter). Assignment is
# handled separately (right-associative, lowest).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def parse(source: str) -> ast.TranslationUnit:
    """Parse *source* into a translation unit."""
    return _Parser(tokenize(source)).parse_unit()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self._structs: dict = {}

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None
               ) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise CompileError(
                f"expected {want!r}, found {self.current.text!r}",
                self.current.line,
            )
        return self.advance()

    # -- top level ---------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        self._structs = unit.structs
        while not self.check("eof"):
            self._parse_top_level(unit)
        return unit

    def _parse_top_level(self, unit: ast.TranslationUnit) -> None:
        line = self.current.line
        extern = self.accept("keyword", "extern") is not None
        if self.check("keyword", "struct") \
                and self.tokens[self.pos + 2].text == "{":
            if extern:
                raise CompileError("extern struct declarations make no "
                                   "sense", line)
            self._parse_struct_decl(unit)
            return
        base = self._parse_base_type()
        pointers = 0
        while self.accept("op", "*"):
            pointers += 1
        name = self.expect("ident").text

        if self.check("op", "("):
            unit.functions.append(
                self._parse_function(name, _apply(base, pointers),
                                     extern, line)
            )
            return
        # One or more global object declarators.
        while True:
            unit.globals.append(
                self._parse_global(name, base, pointers, extern, line)
            )
            if self.accept("op", ","):
                pointers = 0
                while self.accept("op", "*"):
                    pointers += 1
                name = self.expect("ident").text
                continue
            break
        self.expect("op", ";")

    def _parse_struct_decl(self, unit: ast.TranslationUnit) -> None:
        """``struct tag { fields... };`` — offsets computed here."""
        line = self.expect("keyword", "struct").line
        tag = self.expect("ident").text
        if tag in unit.structs:
            raise CompileError(f"struct {tag!r} redefined", line)
        # Register a placeholder so fields may be pointers to the
        # struct being defined (the linked-list idiom).
        unit.structs[tag] = ast.StructDecl(tag, [], 0)
        self.expect("op", "{")
        fields: list = []
        offset = 0
        while not self.check("op", "}"):
            field_base = self._parse_base_type()
            pointers = 0
            while self.accept("op", "*"):
                pointers += 1
            field_name = self.expect("ident").text
            array_length = None
            if self.accept("op", "["):
                array_length = self._const_int()
                self.expect("op", "]")
            self.expect("op", ";")
            ctype = _apply(field_base, pointers, array_length)
            if ctype.is_struct and ctype.struct_tag == tag:
                raise CompileError(
                    f"struct {tag!r} cannot contain itself "
                    f"(use a pointer)", line,
                )
            align = 1 if ctype.size == 1 and not ctype.is_array else 4
            if ctype.is_array and ctype.element_size > 1:
                align = 4
            offset = (offset + align - 1) & ~(align - 1)
            if any(f.name == field_name for f in fields):
                raise CompileError(
                    f"duplicate field {field_name!r} in struct {tag!r}",
                    line,
                )
            fields.append(ast.StructField(field_name, ctype, offset))
            offset += ctype.size
        self.expect("op", "}")
        self.expect("op", ";")
        size = (offset + 3) & ~3
        unit.structs[tag] = ast.StructDecl(tag, fields, max(size, 4))

    def _parse_base_type(self) -> ast.CType:
        token = self.current
        if token.kind == "keyword" and token.text in ("int", "char",
                                                      "void"):
            self.advance()
            return ast.CType(token.text)
        if token.kind == "keyword" and token.text == "struct":
            self.advance()
            tag = self.expect("ident").text
            decl = self._structs.get(tag)
            if decl is None:
                raise CompileError(f"unknown struct {tag!r}", token.line)
            return ast.CType("struct", struct_tag=tag,
                             struct_size=decl.size)
        raise CompileError(f"expected a type, found {token.text!r}",
                           token.line)

    def _parse_global(self, name: str, base: ast.CType, pointers: int,
                      extern: bool, line: int) -> ast.GlobalDecl:
        array_length: Optional[int] = None
        if self.accept("op", "["):
            if self.check("op", "]"):
                array_length = -1  # inferred from the initializer
            else:
                array_length = self._const_int()
            self.expect("op", "]")
        initializer: ast.Initializer = None
        if self.accept("op", "="):
            if extern:
                raise CompileError(
                    f"extern declaration of {name!r} cannot have an "
                    f"initializer", line,
                )
            initializer = self._parse_global_initializer()
        ctype = _apply(base, pointers, array_length)
        ctype = _fix_inferred_array(ctype, initializer, name, line)
        return ast.GlobalDecl(name, ctype, initializer, extern, line)

    def _parse_global_initializer(self) -> ast.Initializer:
        if self.check("string"):
            return self.advance().text
        if self.accept("op", "{"):
            values = []
            if not self.check("op", "}"):
                values.append(self._const_int())
                while self.accept("op", ","):
                    if self.check("op", "}"):
                        break
                    values.append(self._const_int())
            self.expect("op", "}")
            return values
        return self._const_int()

    def _const_int(self) -> int:
        negative = self.accept("op", "-") is not None
        token = self.current
        if token.kind == "number":
            self.advance()
            value = int(token.text, 0)
        elif token.kind == "char":
            self.advance()
            value = ord(token.text)
        else:
            raise CompileError(
                f"expected a constant, found {token.text!r}", token.line
            )
        return -value if negative else value

    # -- functions ---------------------------------------------------------

    def _parse_function(self, name: str, return_type: ast.CType,
                        extern: bool, line: int) -> ast.FunctionDef:
        if return_type.is_struct:
            raise CompileError(
                f"{name!r}: structs are returned by pointer, not by "
                f"value", line,
            )
        self.expect("op", "(")
        params: List[ast.Param] = []
        if not self.check("op", ")"):
            if self.check("keyword", "void") \
                    and self.tokens[self.pos + 1].text == ")":
                self.advance()
            else:
                params.append(self._parse_param())
                while self.accept("op", ","):
                    params.append(self._parse_param())
        self.expect("op", ")")
        if self.accept("op", ";"):
            return ast.FunctionDef(name, return_type, params,
                                   ast.Block(line, []), True, line)
        body = self._parse_block()
        return ast.FunctionDef(name, return_type, params, body, extern,
                               line)

    def _parse_param(self) -> ast.Param:
        base = self._parse_base_type()
        pointers = 0
        while self.accept("op", "*"):
            pointers += 1
        ctype = _apply(base, pointers)
        if ctype.is_struct:
            raise CompileError(
                "structs are passed by pointer, not by value",
                self.current.line,
            )
        name = self.expect("ident").text
        return ast.Param(name, ctype)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self.expect("op", "{")
        statements: List[ast.Stmt] = []
        while not self.check("op", "}"):
            statements.append(self._parse_statement())
        self.expect("op", "}")
        return ast.Block(start.line, statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "op" and token.text == "{":
            return self._parse_block()
        if token.kind == "keyword":
            if token.text in ("int", "char", "struct"):
                return self._parse_local_decl()
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self._parse_expression()
                self.expect("op", ";")
                return ast.Return(token.line, value)
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(token.line)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(token.line)
        expr = self._parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(token.line, expr)

    def _parse_local_decl(self) -> ast.Stmt:
        line = self.current.line
        base = self._parse_base_type()
        pointers = 0
        while self.accept("op", "*"):
            pointers += 1
        name = self.expect("ident").text
        array_length: Optional[int] = None
        if self.accept("op", "["):
            array_length = self._const_int()
            self.expect("op", "]")
        initializer = None
        if self.accept("op", "="):
            initializer = self._parse_expression()
        self.expect("op", ";")
        ctype = _apply(base, pointers, array_length)
        if ctype.is_struct and initializer is not None:
            raise CompileError(
                "struct locals cannot have initializers", line
            )
        return ast.LocalDecl(line, name, ctype, initializer)

    def _parse_if(self) -> ast.If:
        token = self.expect("keyword", "if")
        self.expect("op", "(")
        condition = self._parse_expression()
        self.expect("op", ")")
        then_branch = self._parse_statement()
        else_branch = None
        if self.accept("keyword", "else"):
            else_branch = self._parse_statement()
        return ast.If(token.line, condition, then_branch, else_branch)

    def _parse_while(self) -> ast.While:
        token = self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self._parse_expression()
        self.expect("op", ")")
        return ast.While(token.line, condition, self._parse_statement())

    def _parse_for(self) -> ast.For:
        token = self.expect("keyword", "for")
        self.expect("op", "(")
        init = None if self.check("op", ";") else self._parse_expression()
        self.expect("op", ";")
        condition = None if self.check("op", ";") \
            else self._parse_expression()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self._parse_expression()
        self.expect("op", ")")
        return ast.For(token.line, init, condition, step,
                       self._parse_statement())

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_binary(0)
        if self.check("op", "="):
            token = self.advance()
            value = self._parse_assignment()
            if not isinstance(left, (ast.VarRef, ast.Index,
                                     ast.Member)) and not (
                    isinstance(left, ast.Unary) and left.op == "*"):
                raise CompileError("invalid assignment target", token.line)
            return ast.Assign(token.line, left, value)
        return left

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.current
            if token.kind != "op":
                return left
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return left
            self.advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(token.line, token.text, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self.advance()
            return ast.Unary(token.line, token.text, self._parse_unary())
        if token.kind == "keyword" and token.text == "sizeof":
            self.advance()
            self.expect("op", "(")
            base = self._parse_base_type()
            pointers = 0
            while self.accept("op", "*"):
                pointers += 1
            self.expect("op", ")")
            return ast.SizeofType(token.line, _apply(base, pointers))
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.accept("op", "["):
                index = self._parse_expression()
                self.expect("op", "]")
                expr = ast.Index(self.current.line, expr, index)
                continue
            if self.check("op", ".") or self.check("op", "->"):
                token = self.advance()
                field = self.expect("ident").text
                expr = ast.Member(token.line, expr, field,
                                  arrow=token.text == "->")
                continue
            return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberLit(token.line, int(token.text, 0))
        if token.kind == "char":
            self.advance()
            return ast.NumberLit(token.line, ord(token.text))
        if token.kind == "string":
            self.advance()
            return ast.StringLit(token.line, token.text)
        if token.kind == "ident":
            self.advance()
            if self.check("op", "("):
                return self._parse_call(token)
            return ast.VarRef(token.line, token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self._parse_expression()
            self.expect("op", ")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", token.line)

    def _parse_call(self, name_token: Token) -> ast.Call:
        self.expect("op", "(")
        args: List[ast.Expr] = []
        if not self.check("op", ")"):
            args.append(self._parse_expression())
            while self.accept("op", ","):
                args.append(self._parse_expression())
        self.expect("op", ")")
        return ast.Call(name_token.line, name_token.text, args)


def _apply(base: ast.CType, pointers: int,
           array_length: "Optional[int]" = None) -> ast.CType:
    """Combine a parsed base type with declarator pointers/array."""
    return ast.CType(base.base, pointers, array_length,
                     base.struct_tag, base.struct_size)


def _fix_inferred_array(ctype: ast.CType, initializer: ast.Initializer,
                        name: str, line: int) -> ast.CType:
    if ctype.array_length != -1:
        return ctype
    if isinstance(initializer, str):
        return ast.CType(ctype.base, ctype.pointers,
                         len(initializer) + 1,
                         ctype.struct_tag, ctype.struct_size)
    if isinstance(initializer, list):
        return ast.CType(ctype.base, ctype.pointers, len(initializer),
                         ctype.struct_tag, ctype.struct_size)
    raise CompileError(
        f"array {name!r} needs an explicit length or an initializer", line
    )
