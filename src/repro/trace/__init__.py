"""repro.trace — kernel-wide event tracing and metrics.

The observability layer for the reproduction: every interesting kernel,
VM, linker, and IPC event (syscalls, page faults, signal deliveries,
scheduling slices, mappings, per-symbol resolutions, branch islands,
message traffic, disk seeks) can be recorded as a structured event
stamped with the deterministic clock. Exporters turn the stream into
JSONL, a ``chrome://tracing`` file, or a plain-text top-N report; the
``reprotrace`` CLI (``repro.tools.cli``) runs any example under tracing.

Tracing is off by default and costs one attribute check per site; it
never charges the clock, so enabling it cannot perturb any benchmark.

This module deliberately re-exports only the event/tracer API. Import
:mod:`repro.trace.export` explicitly for the exporters — it depends on
:mod:`repro.vm`, which is itself instrumented, and keeping it out of
the package import keeps the dependency graph acyclic.
"""

from repro.trace.events import (
    ALL_KINDS,
    ALL_MASK,
    Event,
    EventKind,
    kinds_mask,
)
from repro.trace.tracer import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    NullTracer,
    Tracer,
    attach_kernel,
    cancel_tracing,
    get_tracer,
    request_tracing,
    set_tracer,
    tracing,
)

__all__ = [
    "ALL_KINDS",
    "ALL_MASK",
    "Event",
    "EventKind",
    "kinds_mask",
    "DEFAULT_CAPACITY",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "attach_kernel",
    "cancel_tracing",
    "get_tracer",
    "request_tracing",
    "set_tracer",
    "tracing",
]
