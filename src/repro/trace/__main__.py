"""``python -m repro.trace [-o DIR] script.py [args...]`` — the
reprotrace CLI (same as the ``reprotrace`` console script)."""

import sys

from repro.tools.cli import reprotrace_entry

sys.exit(reprotrace_entry())
