"""Structured trace events.

The paper's comparisons are all *event-count* arguments — faults taken,
symbols resolved, segments mapped — so the tracing subsystem records
exactly those occurrences as compact structured events stamped with the
deterministic clock's cycle counter. Nothing here touches the clock or
any other simulation state: a trace is a pure observation, and two
identical runs produce identical event streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Union


class EventKind(enum.IntEnum):
    """What happened. One bit per kind in a Tracer's enable mask."""

    SYSCALL = 0        # one kernel service call (name = syscall name)
    FAULT = 1          # a page fault: raised, resolved, or unresolved
    SIGNAL = 2         # a signal handler invocation
    SWITCH = 3         # one scheduling slice of a process (a span)
    MAP = 4            # address-space / segment mapping traffic
    LINK_RESOLVE = 5   # one symbol resolved (or one module linked: a span)
    ISLAND = 6         # a branch island or PLT stub emitted
    IPC = 7            # message-queue / pipe traffic
    DISK = 8           # disk traffic: cold-file seeks, journal records
    TLB = 9            # software-TLB traffic (value = entry/hit count)
    INJECT = 10        # one injected fault (name = plane:kind:site)
    RECOVER = 11       # boot-time recovery traffic (replay, torn tail)
    NET = 12           # cluster traffic: frames and coherence protocol
    SAN = 13           # sanitizer findings (races, heap misuse)
    HA = 14            # node failures, membership, lease reclamation

    @property
    def bit(self) -> int:
        return 1 << int(self)


ALL_KINDS: FrozenSet[EventKind] = frozenset(EventKind)

#: Enable mask covering every kind.
ALL_MASK: int = sum(kind.bit for kind in EventKind)


def kinds_mask(kinds: Iterable[Union[EventKind, str]]) -> int:
    """Build an enable mask from kinds (or their names)."""
    mask = 0
    for kind in kinds:
        if isinstance(kind, str):
            kind = EventKind[kind.strip().upper()]
        mask |= EventKind(kind).bit
    return mask


@dataclass
class Event:
    """One traced occurrence.

    Attributes:
        kind: what happened.
        cycle: deterministic clock reading when it happened (for spans,
            when the region was *entered*).
        pid: the process involved, 0 when no process context exists.
        addr: the relevant virtual address (fault address, mapping base,
            resolved symbol address), 0 when not applicable.
        name: short identifier — syscall name, symbol, module, path.
        value: kind-specific integer payload (byte count, protection
            bits, present flag, inode number).
        dur: cycles spent inside the region for span events, 0 for
            instantaneous events.
        boot: which booted kernel the event came from, for programs
            that boot several simulated machines in one process.
    """

    __slots__ = ("kind", "cycle", "pid", "addr", "name", "value", "dur",
                 "boot")

    kind: EventKind
    cycle: int
    pid: int
    addr: int
    name: str
    value: int
    dur: int
    boot: int

    def to_dict(self) -> Dict[str, object]:
        """A plain dict with a fixed key order (JSONL determinism)."""
        return {
            "kind": self.kind.name,
            "cycle": self.cycle,
            "pid": self.pid,
            "addr": self.addr,
            "name": self.name,
            "value": self.value,
            "dur": self.dur,
            "boot": self.boot,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Event {self.kind.name} @{self.cycle} pid={self.pid} "
            f"addr=0x{self.addr:x} {self.name!r} value={self.value} "
            f"dur={self.dur}>"
        )
