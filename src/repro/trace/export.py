"""Trace exporters: JSONL, Chrome trace-event JSON, and a text report.

All three are deterministic functions of the event stream: fixed key
order, sorted aggregate tables, no wall-clock timestamps. Two identical
simulated runs therefore export byte-identical files — which is itself
a property the test suite asserts.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.trace.events import Event, EventKind
from repro.trace.tracer import Tracer
from repro.vm.layout import PAGE_SIZE

_JSON_SEPARATORS = (",", ":")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def jsonl_lines(events: Iterable[Event]) -> List[str]:
    """One compact JSON object per event, in buffer order."""
    return [
        json.dumps(event.to_dict(), separators=_JSON_SEPARATORS)
        for event in events
    ]


def write_jsonl(events: Iterable[Event], path: str) -> int:
    """Write events to *path* (host filesystem); returns the line count."""
    lines = jsonl_lines(events)
    with open(path, "w", encoding="utf-8") as stream:
        for line in lines:
            stream.write(line)
            stream.write("\n")
    return len(lines)


# ----------------------------------------------------------------------
# Chrome trace-event format (chrome://tracing, Perfetto)
# ----------------------------------------------------------------------

def chrome_trace(events: Iterable[Event]) -> Dict[str, object]:
    """The trace-event JSON object for *events*.

    Span events (``dur > 0``) become complete events (``ph: "X"``);
    instantaneous events become instant events (``ph: "i"``). The
    simulated cycle counter is reported as the microsecond timestamp —
    absolute units are meaningless in simulation, only the shape is.
    Each simulated boot renders as a Chrome "process"; each simulated
    pid as a "thread" within it.
    """
    trace_events: List[Dict[str, object]] = []
    for event in events:
        name = event.name or event.kind.name.lower()
        record: Dict[str, object] = {
            "name": f"{event.kind.name}:{name}",
            "cat": event.kind.name,
            "ts": event.cycle,
            "pid": event.boot,
            "tid": event.pid,
            "args": {"addr": f"0x{event.addr:08x}", "value": event.value},
        }
        if event.dur:
            record["ph"] = "X"
            record["dur"] = event.dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: Iterable[Event], path: str) -> int:
    """Write a chrome://tracing file; returns the event count."""
    document = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, separators=_JSON_SEPARATORS,
                  sort_keys=True)
    return len(document["traceEvents"])  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# plain-text top-N report
# ----------------------------------------------------------------------

def _top(counter: Dict, top: int) -> List[Tuple[object, int]]:
    """Deterministic top-N: by count descending, then key ascending."""
    return sorted(counter.items(), key=lambda kv: (-kv[1], str(kv[0])))[:top]


def _named_counts(tracer: Tracer, kind: EventKind) -> Dict[str, int]:
    return {
        name: count
        for (k, name), count in tracer.counts_by_name.items()
        if k is kind
    }


def top_report(tracer: Tracer, top: int = 10) -> str:
    """The hot spots: syscalls, fault pages, resolved symbols, spans."""
    lines: List[str] = ["== trace report =="]
    lines.append(
        f"events: {tracer.emitted} recorded, {tracer.dropped} dropped "
        f"(ring capacity {tracer.capacity})"
    )

    lines.append("\nevent counts by kind:")
    for kind in EventKind:
        count = tracer.counts_by_kind.get(kind, 0)
        if count:
            lines.append(f"  {kind.name:13s} {count:9d}")

    syscalls = _named_counts(tracer, EventKind.SYSCALL)
    if syscalls:
        lines.append(f"\nhottest syscalls (top {top}):")
        for name, count in _top(syscalls, top):
            lines.append(f"  {name:16s} {count:9d} calls")

    fault_pages: Dict[int, int] = {}
    for event in tracer.events():
        if event.kind is EventKind.FAULT \
                and event.name in ("read", "write", "exec"):
            page = event.addr & ~(PAGE_SIZE - 1)
            fault_pages[page] = fault_pages.get(page, 0) + 1
    if fault_pages:
        lines.append(f"\nfaultiest pages (top {top}, retained events):")
        for page, count in _top(fault_pages, top):
            lines.append(f"  0x{page:08x}     {count:9d} faults")

    resolves = {
        name: count
        for name, count in _named_counts(tracer,
                                         EventKind.LINK_RESOLVE).items()
        if not name.startswith("link:")
    }
    if resolves:
        lines.append(f"\nmost-resolved symbols (top {top}):")
        for name, count in _top(resolves, top):
            lines.append(f"  {name:24s} {count:6d} resolutions")

    tlb: Dict[str, int] = {}
    for event in tracer.events():
        if event.kind is EventKind.TLB:
            name = event.name or "tlb"
            tlb[name] = tlb.get(name, 0) + event.value
    if tlb:
        lines.append(f"\nsoftware-TLB traffic (top {top}, "
                     f"retained events):")
        for name, value in _top(tlb, top):
            lines.append(f"  {name:24s} {value:12,d}")

    spans = {
        (kind, name): cycles
        for (kind, name), cycles in tracer.cycles_by_name.items()
    }
    if spans:
        lines.append(f"\ncostliest timed regions (top {top}):")
        for (kind, name), cycles in _top(spans, top):
            label = f"{kind.name}:{name}"
            lines.append(f"  {label:32s} {cycles:>12,} cycles")

    return "\n".join(lines)
