"""The tracer: a bounded ring buffer of events plus running counters.

Design constraints, in order:

1. **Zero perturbation.** The tracer only *reads* the deterministic
   clock; it never charges it. Cycle totals with tracing enabled are
   byte-for-byte identical to totals with tracing disabled.
2. **Cheap when off.** The module-level :data:`TRACER` defaults to a
   shared :class:`NullTracer` whose ``enabled`` attribute is False, so
   every instrumentation site costs one attribute check when tracing is
   disabled::

       t = tracer.TRACER
       if t.enabled:
           t.emit(...)

3. **Bounded.** Events live in a fixed-capacity ring buffer; overflow
   drops the oldest events but the per-kind/per-name counters keep
   counting, so top-N reports stay exact even for long runs.

Enable tracing either explicitly::

    t = Tracer(kernel.clock)
    set_tracer(t)
    ...            # run the workload
    set_tracer(None)

or ambiently for everything booted after the request (what the
``reprotrace`` CLI and the ``REPRO_TRACE=1`` environment variable do)::

    request_tracing(kinds=["FAULT", "LINK_RESOLVE"])
    system = boot()        # Kernel.__init__ binds the tracer's clock
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import TraceCursorError
from repro.trace.events import (
    ALL_MASK,
    Event,
    EventKind,
    kinds_mask,
)

DEFAULT_CAPACITY = 1 << 16


class _NullSpan:
    """Context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def emit(self, kind: EventKind, name: str = "", pid: int = 0,
             addr: int = 0, value: int = 0, dur: int = 0) -> None:
        return None

    def span(self, kind: EventKind, name: str = "", pid: int = 0,
             addr: int = 0, value: int = 0) -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> List[Event]:
        return []


NULL_TRACER = NullTracer()


class _Span:
    """A timed region: emits one event (with ``dur``) on exit.

    The event's ``cycle`` is the region's *entry* stamp, so nested
    spans render correctly as Chrome complete events.
    """

    __slots__ = ("_tracer", "kind", "name", "pid", "addr", "value",
                 "_start")

    def __init__(self, tracer: "Tracer", kind: EventKind, name: str,
                 pid: int, addr: int, value: int) -> None:
        self._tracer = tracer
        self.kind = kind
        self.name = name
        self.pid = pid
        self.addr = addr
        self.value = value
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = self._tracer.now()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        tracer._record(Event(self.kind, self._start, self.pid, self.addr,
                             self.name, self.value,
                             tracer.now() - self._start,
                             tracer.boot_index))


class Tracer:
    """Bounded event recorder with per-kind enable masks and counters."""

    enabled = True

    def __init__(self, clock=None, capacity: int = DEFAULT_CAPACITY,
                 kinds: Optional[Iterable[Union[EventKind, str]]] = None,
                 autobind: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self._clock = clock                  # anything with .cycles
        self.capacity = capacity
        self.mask = ALL_MASK if kinds is None else kinds_mask(kinds)
        self.autobind = autobind
        self.boot_index = 0
        self._ring: List[Event] = []
        self._head = 0                       # next write slot once full
        self.emitted = 0                     # total accepted events
        # Exact aggregates, unaffected by ring overflow.
        self.counts_by_kind: Dict[EventKind, int] = {}
        self.counts_by_name: Dict[Tuple[EventKind, str], int] = {}
        self.counts_by_pid: Dict[Tuple[EventKind, int], int] = {}
        self.cycles_by_name: Dict[Tuple[EventKind, str], int] = {}

    # ------------------------------------------------------------------
    # clock binding
    # ------------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Stamp subsequent events from *clock* (a new booted kernel)."""
        self._clock = clock
        self.boot_index += 1

    def now(self) -> int:
        clock = self._clock
        return clock.cycles if clock is not None else 0

    # ------------------------------------------------------------------
    # masks
    # ------------------------------------------------------------------

    def wants(self, kind: EventKind) -> bool:
        return bool(self.mask & (1 << kind))

    def enable_kind(self, kind: EventKind) -> None:
        self.mask |= 1 << kind

    def disable_kind(self, kind: EventKind) -> None:
        self.mask &= ~(1 << kind)

    def set_kinds(self,
                  kinds: Iterable[Union[EventKind, str]]) -> None:
        self.mask = kinds_mask(kinds)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def emit(self, kind: EventKind, name: str = "", pid: int = 0,
             addr: int = 0, value: int = 0, dur: int = 0) -> None:
        """Record one event (if *kind* passes the enable mask)."""
        if not self.mask & (1 << kind):
            return
        self._record(Event(kind, self.now(), pid, addr, name, value,
                           dur, self.boot_index))

    def span(self, kind: EventKind, name: str = "", pid: int = 0,
             addr: int = 0, value: int = 0) -> "_Span | _NullSpan":
        """A context manager timing a region; nests freely."""
        if not self.mask & (1 << kind):
            return _NULL_SPAN
        return _Span(self, kind, name, pid, addr, value)

    def _record(self, event: Event) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(event)
        else:
            self._ring[self._head] = event
            self._head = (self._head + 1) % self.capacity
        self.emitted += 1
        kind, name, pid = event.kind, event.name, event.pid
        self.counts_by_kind[kind] = self.counts_by_kind.get(kind, 0) + 1
        self.counts_by_name[(kind, name)] = \
            self.counts_by_name.get((kind, name), 0) + 1
        self.counts_by_pid[(kind, pid)] = \
            self.counts_by_pid.get((kind, pid), 0) + 1
        if event.dur:
            self.cycles_by_name[(kind, name)] = \
                self.cycles_by_name.get((kind, name), 0) + event.dur

    # ------------------------------------------------------------------
    # reading back
    # ------------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events lost to ring-buffer overflow."""
        return self.emitted - len(self._ring)

    def events(self) -> List[Event]:
        """Retained events, oldest first (wraparound unfolded)."""
        return self._ring[self._head:] + self._ring[:self._head]

    def cursor(self) -> int:
        """The sequence number the *next* accepted event will get.

        Sequence numbers count accepted events from the tracer's
        creation and are never reused, so they survive ring-buffer
        wraparound: a cursor taken at a checkpoint addresses a fixed
        point in the event stream no matter how many events are later
        dropped. ``cursor() == emitted`` by construction."""
        return self.emitted

    def events_since(self, cursor: int) -> List[Event]:
        """Retained events with sequence number >= *cursor*, oldest
        first — exactly once and in emit order.

        Raises :class:`~repro.errors.TraceCursorError` if the ring has
        already dropped events past *cursor* (replaying from such a
        cursor would silently skip the gap) or if *cursor* lies beyond
        everything emitted (a stale or corrupt checkpoint)."""
        if cursor < 0 or cursor > self.emitted:
            raise TraceCursorError(
                f"cursor {cursor} is outside the emitted range "
                f"0..{self.emitted}")
        oldest = self.emitted - len(self._ring)
        if cursor < oldest:
            raise TraceCursorError(
                f"ring overflow dropped events {cursor}..{oldest - 1}; "
                f"raise the tracer capacity or checkpoint more often")
        return self.events()[cursor - oldest:]

    def clear(self) -> None:
        self._ring = []
        self._head = 0
        self.emitted = 0
        self.counts_by_kind.clear()
        self.counts_by_name.clear()
        self.counts_by_pid.clear()
        self.cycles_by_name.clear()

    def __len__(self) -> int:
        return len(self._ring)


# ----------------------------------------------------------------------
# the global tracer
# ----------------------------------------------------------------------

#: What every instrumentation site consults. Reassigned, never mutated
#: in place, so sites must read ``tracer.TRACER`` (the module attribute)
#: rather than import the object.
TRACER: Union[Tracer, NullTracer] = NULL_TRACER

# Configuration captured by request_tracing() / REPRO_TRACE, consumed by
# the first Kernel boot after the request.
_PENDING: Optional[dict] = None


def get_tracer() -> Union[Tracer, NullTracer]:
    return TRACER


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> None:
    """Install *tracer* globally (None restores the no-op tracer)."""
    global TRACER
    TRACER = tracer if tracer is not None else NULL_TRACER


def request_tracing(kinds: Optional[Iterable[Union[EventKind, str]]] = None,
                    capacity: int = DEFAULT_CAPACITY) -> None:
    """Arm tracing for the next booted kernel (and rebind on later
    boots), without needing the kernel to exist yet."""
    global _PENDING
    _PENDING = {"kinds": kinds, "capacity": capacity}


def cancel_tracing() -> None:
    """Disarm :func:`request_tracing` and restore the no-op tracer."""
    global _PENDING
    _PENDING = None
    set_tracer(None)


def attach_kernel(kernel) -> None:
    """Called from ``Kernel.__init__``: honour a pending tracing
    request, or rebind an auto-bound tracer to the new kernel's clock."""
    global TRACER, _PENDING
    if _PENDING is not None:
        config = _PENDING
        _PENDING = None
        TRACER = Tracer(clock=None, capacity=config["capacity"],
                        kinds=config["kinds"], autobind=True)
    if TRACER.enabled and getattr(TRACER, "autobind", False):
        TRACER.bind_clock(kernel.clock)


class tracing:
    """``with tracing(kernel) as t:`` — scoped tracing of one kernel."""

    def __init__(self, kernel=None,
                 kinds: Optional[Iterable[Union[EventKind, str]]] = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        clock = kernel.clock if kernel is not None else None
        self.tracer = Tracer(clock=clock, capacity=capacity, kinds=kinds)
        self._previous: Union[Tracer, NullTracer] = NULL_TRACER

    def __enter__(self) -> Tracer:
        global TRACER
        self._previous = TRACER
        TRACER = self.tracer
        return self.tracer

    def __exit__(self, *exc) -> None:
        global TRACER
        TRACER = self._previous


def _arm_from_environment() -> None:
    """REPRO_TRACE=1 arms ambient tracing for any python entry point;
    REPRO_TRACE_KINDS=FAULT,LINK_RESOLVE and REPRO_TRACE_CAPACITY=N
    narrow it."""
    if not os.environ.get("REPRO_TRACE"):
        return
    kinds_env = os.environ.get("REPRO_TRACE_KINDS", "")
    kinds = [k for k in kinds_env.split(",") if k.strip()] or None
    capacity = int(os.environ.get("REPRO_TRACE_CAPACITY",
                                  str(DEFAULT_CAPACITY)))
    request_tracing(kinds=kinds, capacity=capacity)


_arm_from_environment()
