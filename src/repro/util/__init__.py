"""Small shared utilities: bit packing, deterministic RNG, table rendering."""

from repro.util.bits import (
    sign_extend,
    to_signed32,
    to_unsigned32,
    fits_signed,
    fits_unsigned,
    align_down,
    align_up,
    is_aligned,
    hi16,
    lo16,
    compose_hi_lo,
)
from repro.util.rng import DeterministicRng
from repro.util.tables import format_table

__all__ = [
    "sign_extend",
    "to_signed32",
    "to_unsigned32",
    "fits_signed",
    "fits_unsigned",
    "align_down",
    "align_up",
    "is_aligned",
    "hi16",
    "lo16",
    "compose_hi_lo",
    "DeterministicRng",
    "format_table",
]
