"""Bit-manipulation helpers used by the ISA, assembler, and linkers.

All simulated addresses and machine words are 32-bit. Python integers are
unbounded, so these helpers provide the explicit truncation and
sign-extension the hardware would perform.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def to_unsigned32(value: int) -> int:
    """Truncate *value* to its unsigned 32-bit representation."""
    return value & _MASK32


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of *value* as a signed two's-complement int."""
    value &= _MASK32
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low *bits* bits of *value* to a Python int."""
    if bits <= 0:
        raise ValueError("bit width must be positive")
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        value -= 1 << bits
    return value


def fits_signed(value: int, bits: int) -> bool:
    """True if *value* is representable as a *bits*-bit signed integer."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, bits: int) -> bool:
    """True if *value* is representable as a *bits*-bit unsigned integer."""
    return 0 <= value < (1 << bits)


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """True if *value* is a multiple of *alignment*."""
    return (value & (alignment - 1)) == 0


def hi16(address: int) -> int:
    """High half of *address* for a LUI/ORI pair (no carry adjustment).

    The ISA composes full addresses as ``(hi << 16) | lo`` with an
    unsigned low half, so unlike real MIPS no +1 carry correction is
    needed.
    """
    return (to_unsigned32(address) >> 16) & 0xFFFF


def lo16(address: int) -> int:
    """Low half of *address* for a LUI/ORI pair (unsigned)."""
    return to_unsigned32(address) & 0xFFFF


def compose_hi_lo(hi: int, lo: int) -> int:
    """Reassemble an address from its :func:`hi16`/:func:`lo16` halves."""
    return ((hi & 0xFFFF) << 16) | (lo & 0xFFFF)
