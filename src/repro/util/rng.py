"""A small deterministic pseudo-random generator for workload synthesis.

Benchmarks and tests must be exactly reproducible, so workload generators
use this xorshift-based generator seeded explicitly rather than the global
:mod:`random` state.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T")

_MASK64 = 0xFFFFFFFFFFFFFFFF


class DeterministicRng:
    """xorshift64* generator with convenience draws.

    The sequence depends only on the seed, never on interpreter hash
    randomization or global state.
    """

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        # Zero state would lock xorshift at zero forever; remap it.
        self._state = (seed & _MASK64) or 0x106689D45497FDB5

    def next_u64(self) -> int:
        """Return the next raw 64-bit draw."""
        x = self._state
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        if hi < lo:
            raise ValueError("empty range")
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """k distinct items, order randomized (Fisher–Yates prefix)."""
        if k > len(items):
            raise ValueError("sample larger than population")
        pool = list(items)
        for i in range(k):
            j = self.randint(i, len(pool) - 1)
            pool[i], pool[j] = pool[j], pool[i]
        return pool[:k]

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]
