"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's table and figure data as
aligned text tables on stdout; this module does the formatting.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render *rows* under *headers* as an aligned monospace table.

    Cells are converted with ``str``; columns are left-aligned except that
    purely numeric columns are right-aligned.
    """
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [
        all(_is_numeric(row[i]) for row in str_rows) and bool(str_rows)
        for i in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i] and _is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    if not cell:
        return False
    stripped = cell.replace(",", "").lstrip("+-")
    return stripped.replace(".", "", 1).replace("x", "", 1).isdigit()
