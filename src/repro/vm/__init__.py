"""Virtual-memory substrate: layout, frames, memory objects, address spaces.

This package models the part of the IRIX VM system that Hemlock relies on:
page-granular mappings with independent protections, shared mappings of
memory objects (so stores are visible across protection domains and persist
in files), copy-on-write private mappings for ``fork``, and page faults
that the kernel can turn into a user-visible SIGSEGV and then restart.
"""

from repro.vm.layout import (
    PAGE_SIZE,
    PAGE_SHIFT,
    AddressRegion,
    TEXT_REGION,
    HEAP_REGION,
    SFS_REGION,
    STACK_REGION,
    KERNEL_REGION,
    PRIVATE_DYNAMIC_BASE,
    STACK_TOP,
    is_public_address,
    region_of,
    describe_layout,
)
from repro.vm.pages import Frame, PhysicalMemory, MemoryObject
from repro.vm.faults import AccessKind, PageFaultError
from repro.vm.address_space import (
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    PROT_EXEC,
    PROT_RW,
    PROT_RX,
    PROT_RWX,
    MAP_SHARED,
    MAP_PRIVATE,
    Mapping,
    AddressSpace,
)

__all__ = [
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "AddressRegion",
    "TEXT_REGION",
    "HEAP_REGION",
    "SFS_REGION",
    "STACK_REGION",
    "KERNEL_REGION",
    "PRIVATE_DYNAMIC_BASE",
    "STACK_TOP",
    "is_public_address",
    "region_of",
    "describe_layout",
    "Frame",
    "PhysicalMemory",
    "MemoryObject",
    "AccessKind",
    "PageFaultError",
    "PROT_NONE",
    "PROT_READ",
    "PROT_WRITE",
    "PROT_EXEC",
    "PROT_RW",
    "PROT_RX",
    "PROT_RWX",
    "MAP_SHARED",
    "MAP_PRIVATE",
    "Mapping",
    "AddressSpace",
]
