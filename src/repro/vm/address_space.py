"""Per-process address spaces with page-granular mappings and protections.

The design mirrors a simple Unix VM system:

* A :class:`Mapping` is a contiguous run of pages bound to a
  :class:`~repro.vm.pages.MemoryObject` (shared or private/COW) or to
  anonymous zero-fill memory.
* Pages materialize lazily. Shared mappings use the memory object's own
  frames, so stores are immediately visible to every other address space
  mapping the same object — and to file reads of it. Private mappings
  reference the object's frames copy-on-write.
* All frame references held by page-table entries are reference counted,
  so ``fork`` is a page-table copy plus COW marking.
* Any access that touches an unmapped page or violates protections raises
  :class:`~repro.vm.faults.PageFaultError`; the kernel turns that into a
  SIGSEGV delivery and may restart the access afterwards.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError
from repro.trace import tracer as _trace
from repro.trace.events import EventKind
from repro.vm.faults import AccessKind, PageFaultError
from repro.vm.layout import PAGE_SIZE, PAGE_SHIFT, AddressRegion
from repro.vm.pages import Frame, MemoryObject, PhysicalMemory

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4
PROT_RW = PROT_READ | PROT_WRITE
PROT_RX = PROT_READ | PROT_EXEC
PROT_RWX = PROT_READ | PROT_WRITE | PROT_EXEC

MAP_SHARED = 1
MAP_PRIVATE = 2

_ACCESS_PROT = {
    AccessKind.READ: PROT_READ,
    AccessKind.WRITE: PROT_WRITE,
    AccessKind.EXEC: PROT_EXEC,
}

_WORD = struct.Struct("<I")
_HALF = struct.Struct("<H")

_PAGE_MASK = PAGE_SIZE - 1

#: A TLB entry: (frame bytearray, effective protection, frame). The
#: protection is the PTE's at fill time, with PROT_WRITE stripped while
#: the page is COW so a cached translation can never bypass the
#: copy-on-write break.
TlbEntry = Tuple[bytearray, int, Frame]

# The software TLB is a pure host-speed optimization; simulated cycle
# and instruction totals are identical with it on, off, or absent (the
# regression tests pin this). The switch exists so benchmarks can
# measure the win and so a miscompare can be bisected quickly.
_TLB_DEFAULT_ENABLED = os.environ.get("REPRO_TLB", "1") != "0"


def default_tlb_enabled() -> bool:
    """Whether newly created address spaces get a software TLB."""
    return _TLB_DEFAULT_ENABLED


def set_default_tlb_enabled(enabled: bool) -> None:
    """Flip the process-wide default for new address spaces."""
    global _TLB_DEFAULT_ENABLED
    _TLB_DEFAULT_ENABLED = bool(enabled)


def prot_str(prot: int) -> str:
    """Render a protection mask as e.g. ``r-x``."""
    return (
        ("r" if prot & PROT_READ else "-")
        + ("w" if prot & PROT_WRITE else "-")
        + ("x" if prot & PROT_EXEC else "-")
    )


class Mapping:
    """A contiguous mapped region: metadata only; pages live in the PTEs."""

    __slots__ = ("start", "npages", "memobj", "obj_page", "prot", "flags",
                 "name")

    def __init__(self, start: int, npages: int,
                 memobj: Optional[MemoryObject], obj_page: int,
                 prot: int, flags: int, name: str) -> None:
        self.start = start
        self.npages = npages
        self.memobj = memobj
        self.obj_page = obj_page  # page offset into memobj of our first page
        self.prot = prot          # current nominal protection
        self.flags = flags
        self.name = name

    @property
    def end(self) -> int:
        return self.start + self.npages * PAGE_SIZE

    @property
    def shared(self) -> bool:
        return bool(self.flags & MAP_SHARED)

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "shared" if self.shared else "private"
        return (
            f"<Mapping {self.name!r} 0x{self.start:08x}-0x{self.end:08x} "
            f"{prot_str(self.prot)} {kind}>"
        )


class _Pte:
    """Page-table entry. ``frame is None`` means not yet materialized."""

    __slots__ = ("mapping", "frame", "prot", "cow")

    def __init__(self, mapping: Mapping, prot: int) -> None:
        self.mapping = mapping
        self.frame: Optional[Frame] = None
        self.prot = prot
        self.cow = False


class AddressSpace:
    """One protection domain's view of memory."""

    def __init__(self, physmem: PhysicalMemory, name: str = "<as>",
                 tlb_enabled: Optional[bool] = None) -> None:
        self._physmem = physmem
        self._pages: Dict[int, _Pte] = {}
        self._mappings: List[Mapping] = []  # kept sorted by start
        self.name = name
        # vpn -> (frame data, effective prot, frame); see TlbEntry.
        self.tlb: Dict[int, TlbEntry] = {}
        self._tlb_enabled = (_TLB_DEFAULT_ENABLED if tlb_enabled is None
                             else bool(tlb_enabled))
        self.tlb_hits = 0
        self.tlb_misses = 0
        self.tlb_fills = 0
        self.tlb_invalidations = 0
        self.tlb_flushes = 0
        self.injector = None  # set by repro.inject.install_injector
        self.sanitizer = None  # set by repro.sanitize.install_sanitizer
        self.smp = None  # SmpCoordinator on multi-core boots
        self.core = 0  # owning process's home core (repro.smp)

    # ------------------------------------------------------------------
    # mapping management
    # ------------------------------------------------------------------

    def map(self, address: Optional[int], length: int, *,
            memobj: Optional[MemoryObject] = None, offset: int = 0,
            prot: int = PROT_RW, flags: int = MAP_PRIVATE,
            name: str = "<anon>",
            search_region: Optional[AddressRegion] = None) -> Mapping:
        """Create a mapping and return it.

        If *address* is None a free range is found (within *search_region*
        if given). *offset* is a byte offset into *memobj* and must be
        page-aligned. A fixed *address* that overlaps an existing mapping
        is an error — Hemlock's linkers always unmap first.
        """
        if length <= 0:
            raise MappingError("mapping length must be positive")
        if offset % PAGE_SIZE:
            raise MappingError("mapping offset must be page-aligned")
        if memobj is None and flags & MAP_SHARED:
            raise MappingError("anonymous mappings must be private")
        npages = (length + PAGE_SIZE - 1) >> PAGE_SHIFT
        if address is None:
            address = self._find_free(npages, search_region)
        if address % PAGE_SIZE:
            raise MappingError(
                f"mapping address 0x{address:08x} is not page-aligned"
            )
        first_vpn = address >> PAGE_SHIFT
        for vpn in range(first_vpn, first_vpn + npages):
            if vpn in self._pages:
                raise MappingError(
                    f"mapping {name!r} overlaps existing page at "
                    f"0x{vpn << PAGE_SHIFT:08x}"
                )
        mapping = Mapping(address, npages, memobj, offset >> PAGE_SHIFT,
                          prot, flags, name)
        for vpn in range(first_vpn, first_vpn + npages):
            self._pages[vpn] = _Pte(mapping, prot)
        self._tlb_drop_range(first_vpn, npages, "map")
        if memobj is not None:
            memobj.watch(self)
        self._insert_mapping(mapping)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.MAP, name=f"map:{mapping.name}",
                        addr=address, value=npages * PAGE_SIZE)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_map(self, mapping)
        return mapping

    def unmap(self, address: int, length: int) -> None:
        """Remove every whole mapping intersecting ``[address, address+length)``.

        Partial unmaps are not needed by the linkers and are rejected.
        """
        end = address + length
        victims = [m for m in self._mappings
                   if m.start < end and address < m.end]
        for mapping in victims:
            if mapping.start < address or mapping.end > end:
                raise MappingError(
                    f"partial unmap of {mapping.name!r} is not supported"
                )
        for mapping in victims:
            self._drop_mapping(mapping)

    def unmap_mapping(self, mapping: Mapping) -> None:
        """Remove a specific mapping object previously returned by map()."""
        if mapping not in self._mappings:
            raise MappingError(f"{mapping!r} is not part of this address space")
        self._drop_mapping(mapping)

    def _drop_mapping(self, mapping: Mapping) -> None:
        first_vpn = mapping.start >> PAGE_SHIFT
        for vpn in range(first_vpn, first_vpn + mapping.npages):
            pte = self._pages.pop(vpn, None)
            if pte is not None and pte.frame is not None:
                self._physmem.release(pte.frame)
        self._tlb_drop_range(first_vpn, mapping.npages, "unmap")
        self._mappings.remove(mapping)
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.MAP, name=f"unmap:{mapping.name}",
                        addr=mapping.start,
                        value=mapping.npages * PAGE_SIZE)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_unmap(self, mapping)

    def mprotect(self, address: int, length: int, prot: int) -> None:
        """Change protections on all pages in the (page-aligned) range."""
        if address % PAGE_SIZE:
            raise MappingError("mprotect address must be page-aligned")
        npages = (length + PAGE_SIZE - 1) >> PAGE_SHIFT
        first_vpn = address >> PAGE_SHIFT
        ptes = []
        for vpn in range(first_vpn, first_vpn + npages):
            pte = self._pages.get(vpn)
            if pte is None:
                raise MappingError(
                    f"mprotect of unmapped page 0x{vpn << PAGE_SHIFT:08x}"
                )
            ptes.append(pte)
        touched = set()
        for pte in ptes:
            pte.prot = prot
            touched.add(id(pte.mapping))
        self._tlb_drop_range(first_vpn, npages, "mprotect")
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.MAP, name=f"mprotect:{prot_str(prot)}",
                        addr=address, value=npages * PAGE_SIZE)
        # Keep the nominal mapping protection in sync when a whole mapping
        # is covered; per-page divergence is fine otherwise.
        for mapping in self._mappings:
            if id(mapping) in touched and mapping.start >= address \
                    and mapping.end <= address + npages * PAGE_SIZE:
                mapping.prot = prot
                sanitizer = self.sanitizer
                if sanitizer is not None:
                    sanitizer.on_mprotect(self, mapping)

    def mapping_at(self, address: int) -> Optional[Mapping]:
        """The mapping containing *address*, or None."""
        pte = self._pages.get(address >> PAGE_SHIFT)
        return pte.mapping if pte is not None else None

    def mappings(self) -> List[Mapping]:
        """All mappings, sorted by start address."""
        return list(self._mappings)

    def is_mapped(self, address: int) -> bool:
        return (address >> PAGE_SHIFT) in self._pages

    def _insert_mapping(self, mapping: Mapping) -> None:
        lo, hi = 0, len(self._mappings)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._mappings[mid].start < mapping.start:
                lo = mid + 1
            else:
                hi = mid
        self._mappings.insert(lo, mapping)

    def _find_free(self, npages: int,
                   region: Optional[AddressRegion]) -> int:
        lo = region.start if region else PAGE_SIZE
        hi = region.end if region else 0x7FFF_0000
        candidate = lo
        for mapping in self._mappings:
            if mapping.end <= candidate:
                continue
            if mapping.start - candidate >= npages * PAGE_SIZE:
                break
            candidate = mapping.end
        if candidate + npages * PAGE_SIZE > hi:
            raise MappingError(
                f"no free range of {npages} pages in "
                f"0x{lo:08x}-0x{hi:08x}"
            )
        return candidate

    # ------------------------------------------------------------------
    # software TLB
    # ------------------------------------------------------------------
    #
    # Invalidation protocol (every path that can change what a cached
    # (vpn -> frame, prot) translation means):
    #
    #   * map/unmap        -> drop the covered vpns
    #   * mprotect         -> drop the covered vpns (refill reads new prot)
    #   * COW break        -> drop the vpn (the frame changed identity)
    #   * fork             -> flush the parent (private pages became COW)
    #   * MemoryObject truncate/replace_page/free -> flush every watcher
    #   * stores           -> clear the target frame's decode cache (the
    #                         frame bytearray itself is aliased, so data
    #                         entries stay coherent automatically)
    #
    # The decoded-instruction cache lives on the Frame (see
    # repro.vm.pages.Frame.decode), so COW twins and shared mappings
    # invalidate each other for free: whoever mutates the bytes clears
    # the one cache every executor of that frame consults.

    @property
    def tlb_enabled(self) -> bool:
        return self._tlb_enabled

    def set_tlb_enabled(self, enabled: bool) -> None:
        """Turn the TLB on or off for this address space (flushes)."""
        self._tlb_enabled = bool(enabled)
        self.tlb_flush("toggle")

    def _tlb_fill(self, vpn: int, pte: _Pte) -> None:
        """Cache *pte*'s translation after a successful slow access."""
        frame = pte.frame
        if frame is None:
            return
        prot = pte.prot
        if pte.cow:
            prot &= ~PROT_WRITE
        sanitizer = self.sanitizer
        if sanitizer is not None and sanitizer.tracks_mapping(pte.mapping):
            # Sanitized pages are cached execute-only: instruction fetch
            # keeps its fast path, while every data access takes the
            # instrumented slow path (same trick as the COW write strip).
            prot &= PROT_EXEC
            if not prot:
                return
        self.tlb[vpn] = (frame.data, prot, frame)
        self.tlb_fills += 1

    def _tlb_drop(self, vpn: int, reason: str = "cow") -> None:
        if self.tlb.pop(vpn, None) is not None:
            self.tlb_invalidations += 1
            if self.smp is not None:
                self.smp.tlb_shootdown(self, 1, reason)

    def _tlb_drop_range(self, first_vpn: int, npages: int,
                        reason: str = "range") -> None:
        tlb = self.tlb
        if not tlb:
            return
        dropped = 0
        for vpn in range(first_vpn, first_vpn + npages):
            if tlb.pop(vpn, None) is not None:
                dropped += 1
        if dropped:
            self.tlb_invalidations += dropped
            if self.smp is not None:
                self.smp.tlb_shootdown(self, dropped, reason)

    def tlb_flush(self, reason: str = "") -> int:
        """Drop every cached translation; returns the entry count."""
        dropped = len(self.tlb)
        if dropped:
            self.tlb.clear()
            self.tlb_invalidations += dropped
            if self.smp is not None:
                self.smp.tlb_shootdown(self, dropped,
                                       reason or "explicit")
        self.tlb_flushes += 1
        tracer = _trace.TRACER
        if tracer.enabled and dropped:
            tracer.emit(EventKind.TLB, name=f"flush:{reason or 'explicit'}",
                        value=dropped)
        return dropped

    def tlb_object_invalidated(self, memobj: MemoryObject) -> None:
        """A watched memory object changed page identity (truncate,
        replace_page, free): drop everything. Rare enough that a full
        flush beats tracking per-object vpn sets."""
        self.tlb_flush(f"object:{memobj.name}")

    def tlb_stats(self) -> Dict[str, int]:
        """Counter snapshot for benchmarks and the trace layer."""
        return {
            "hits": self.tlb_hits,
            "misses": self.tlb_misses,
            "fills": self.tlb_fills,
            "invalidations": self.tlb_invalidations,
            "flushes": self.tlb_flushes,
            "entries": len(self.tlb),
        }

    def emit_tlb_stats(self) -> None:
        """Publish the counters as TLB trace events (one per counter),
        so ``reprotrace`` reports see hit/miss totals without paying a
        per-access emit in the hot loop."""
        tracer = _trace.TRACER
        if not tracer.enabled:
            return
        for key in ("hits", "misses", "fills", "invalidations",
                    "flushes"):
            value = getattr(self, f"tlb_{key}")
            if value:
                tracer.emit(EventKind.TLB, name=f"tlb:{key}", value=value)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def _pte_for_access(self, address: int, access: AccessKind,
                        force: bool) -> _Pte:
        injector = self.injector
        if injector is not None and not force:
            # Kernel force-paths are exempt: a spurious fault there would
            # escape the restartable-instruction containment boundary.
            injector.on_access(self.name, address, access)
        pte = self._pages.get(address >> PAGE_SHIFT)
        if pte is None:
            raise PageFaultError(address, access, present=False)
        if not force and not (pte.prot & _ACCESS_PROT[access]):
            raise PageFaultError(address, access, present=True)
        return pte

    def _materialize(self, pte: _Pte, vpn: int) -> Frame:
        """Ensure the PTE has a frame for its page, honoring share/COW."""
        if pte.frame is not None:
            return pte.frame
        mapping = pte.mapping
        if mapping.memobj is None:
            pte.frame = self._physmem.alloc()
        else:
            obj_index = mapping.obj_page + (vpn - (mapping.start >> PAGE_SHIFT))
            frame = mapping.memobj.ensure_page(obj_index)
            pte.frame = self._physmem.retain(frame)
            if not mapping.shared:
                pte.cow = True
        return pte.frame

    def _break_cow(self, pte: _Pte, vpn: int) -> Frame:
        frame = pte.frame
        assert frame is not None
        if frame.refcount > 1:
            new_frame = self._physmem.copy(frame)
            self._physmem.release(frame)
            pte.frame = new_frame
        pte.cow = False
        # The translation (and its no-write marking) is stale either way.
        self._tlb_drop(vpn)
        return pte.frame

    def read_bytes(self, address: int, length: int, *,
                   access: AccessKind = AccessKind.READ,
                   force: bool = False) -> bytes:
        """Read *length* bytes, faulting per the page protections.

        *force* is the kernel's own access path: it skips protection
        checks but still requires the pages to be mapped.
        """
        out = bytearray(length)
        pos = 0
        while pos < length:
            addr = address + pos
            vpn = addr >> PAGE_SHIFT
            page_off = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - page_off)
            pte = self._pte_for_access(addr, access, force)
            frame = self._materialize(pte, vpn)
            out[pos: pos + chunk] = frame.data[page_off: page_off + chunk]
            if self._tlb_enabled and vpn not in self.tlb:
                self._tlb_fill(vpn, pte)
            sanitizer = self.sanitizer
            if sanitizer is not None and not force \
                    and access is not AccessKind.EXEC:
                sanitizer.on_read(self, addr, chunk, pte)
            pos += chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes, *,
                    force: bool = False) -> None:
        """Write *data*, faulting per the page protections and resolving COW."""
        pos = 0
        length = len(data)
        while pos < length:
            addr = address + pos
            vpn = addr >> PAGE_SHIFT
            page_off = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - page_off)
            pte = self._pte_for_access(addr, AccessKind.WRITE, force)
            self._materialize(pte, vpn)
            if pte.cow:
                self._break_cow(pte, vpn)
            frame = pte.frame
            assert frame is not None
            if frame.decode:
                frame.decode.clear()
                if frame.decode_cores:
                    if self.smp is not None:
                        self.smp.decode_shootdown(frame)
                    frame.decode_cores.clear()
            frame.data[page_off: page_off + chunk] = data[pos: pos + chunk]
            if self._tlb_enabled and vpn not in self.tlb:
                self._tlb_fill(vpn, pte)
            sanitizer = self.sanitizer
            if sanitizer is not None and not force:
                sanitizer.on_write(self, addr, chunk, pte)
            pos += chunk

    def load_word(self, address: int, *,
                  access: AccessKind = AccessKind.READ,
                  force: bool = False) -> int:
        """Load a little-endian 32-bit word (TLB fast path when aligned)."""
        if not address & 3 and not force and access is AccessKind.READ:
            entry = self.tlb.get(address >> PAGE_SHIFT)
            if entry is not None and entry[1] & PROT_READ:
                self.tlb_hits += 1
                return _WORD.unpack_from(entry[0], address & _PAGE_MASK)[0]
            if self._tlb_enabled:
                self.tlb_misses += 1
        return _WORD.unpack(
            self.read_bytes(address, 4, access=access, force=force)
        )[0]

    def store_word(self, address: int, value: int, *,
                   force: bool = False) -> None:
        """Store a little-endian 32-bit word (TLB fast path when aligned).

        The fast path only fires on entries whose effective protection
        includes PROT_WRITE — COW pages are cached write-protected, so
        break-sharing always takes the slow path first.
        """
        if not address & 3 and not force:
            entry = self.tlb.get(address >> PAGE_SHIFT)
            if entry is not None and entry[1] & PROT_WRITE:
                self.tlb_hits += 1
                frame = entry[2]
                if frame.decode:
                    frame.decode.clear()
                    if frame.decode_cores:
                        if self.smp is not None:
                            self.smp.decode_shootdown(frame)
                        frame.decode_cores.clear()
                _WORD.pack_into(entry[0], address & _PAGE_MASK,
                                value & 0xFFFFFFFF)
                return
            if self._tlb_enabled:
                self.tlb_misses += 1
        self.write_bytes(address, _WORD.pack(value & 0xFFFFFFFF), force=force)

    def load_half(self, address: int, force: bool = False) -> int:
        return _HALF.unpack(self.read_bytes(address, 2, force=force))[0]

    def load_byte(self, address: int, force: bool = False) -> int:
        return self.read_bytes(address, 1, force=force)[0]

    def fetch_word(self, address: int) -> int:
        """Instruction fetch: a 32-bit load with EXEC permission."""
        if not address & 3:
            entry = self.tlb.get(address >> PAGE_SHIFT)
            if entry is not None and entry[1] & PROT_EXEC:
                self.tlb_hits += 1
                return _WORD.unpack_from(entry[0], address & _PAGE_MASK)[0]
            if self._tlb_enabled:
                self.tlb_misses += 1
        return _WORD.unpack(
            self.read_bytes(address, 4, access=AccessKind.EXEC)
        )[0]

    def read_cstring(self, address: int, max_length: int = 4096,
                     force: bool = False) -> str:
        """Read a NUL-terminated byte string (latin-1 decoded)."""
        out = bytearray()
        for i in range(max_length):
            byte = self.read_bytes(address + i, 1, force=force)[0]
            if byte == 0:
                break
            out.append(byte)
        return out.decode("latin-1")

    def write_cstring(self, address: int, text: str,
                      force: bool = False) -> None:
        """Write *text* plus a NUL terminator."""
        self.write_bytes(address, text.encode("latin-1") + b"\x00",
                         force=force)

    # ------------------------------------------------------------------
    # fork
    # ------------------------------------------------------------------

    def fork(self, name: str = "<child>") -> "AddressSpace":
        """Clone per Hemlock §5: private pages become COW twins; pages of
        shared mappings keep referencing the single memory-object copy."""
        child = AddressSpace(self._physmem, name,
                             tlb_enabled=self._tlb_enabled)
        child.sanitizer = self.sanitizer
        mapping_clone: Dict[int, Mapping] = {}
        for mapping in self._mappings:
            clone = Mapping(mapping.start, mapping.npages, mapping.memobj,
                            mapping.obj_page, mapping.prot, mapping.flags,
                            mapping.name)
            mapping_clone[id(mapping)] = clone
            child._insert_mapping(clone)
            if mapping.memobj is not None:
                mapping.memobj.watch(child)
        for vpn, pte in self._pages.items():
            new_pte = _Pte(mapping_clone[id(pte.mapping)], pte.prot)
            if pte.frame is not None:
                if pte.mapping.shared:
                    new_pte.frame = self._physmem.retain(pte.frame)
                else:
                    # Both parent and child now reference the frame COW.
                    pte.cow = True
                    new_pte.cow = True
                    new_pte.frame = self._physmem.retain(pte.frame)
            child._pages[vpn] = new_pte
        # Every private page just turned COW, so any cached writable
        # translation in the parent would let a store leak into the
        # child. Drop everything; the next touches refill.
        self.tlb_flush("fork")
        return child

    def destroy(self) -> None:
        """Release every frame reference (process exit)."""
        for pte in self._pages.values():
            if pte.frame is not None:
                self._physmem.release(pte.frame)
        self._pages.clear()
        self._mappings.clear()
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_destroy(self)
        self.emit_tlb_stats()
        self.tlb.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def resident_pages(self) -> int:
        """Number of materialized page-table entries."""
        return sum(1 for pte in self._pages.values() if pte.frame is not None)

    def describe(self) -> str:
        """Render the mapping table, /proc/pid/maps style."""
        lines = []
        for m in self._mappings:
            kind = "shared" if m.shared else "private"
            lines.append(
                f"0x{m.start:08x}-0x{m.end:08x} {prot_str(m.prot)} "
                f"{kind:7s} {m.name}"
            )
        return "\n".join(lines)

    def page_prot(self, address: int) -> Optional[int]:
        """Current protection of the page containing *address* (or None)."""
        pte = self._pages.get(address >> PAGE_SHIFT)
        return pte.prot if pte is not None else None
