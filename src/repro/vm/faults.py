"""Page-fault events raised by the VM and CPU.

A fault is represented as an exception so the interpreter loop can abort
the current instruction cleanly; the kernel catches it, consults the
process's signal table, runs the user SIGSEGV handler, and (if the handler
fixed the mapping) restarts the faulting instruction. This restartability
is the mechanism behind Hemlock's lazy linking and pointer chasing.
"""

from __future__ import annotations

import enum

from repro.errors import VMError
from repro.trace import tracer as _trace
from repro.trace.events import EventKind


class AccessKind(enum.Enum):
    """The kind of memory access that faulted."""

    READ = "read"
    WRITE = "write"
    EXEC = "exec"


class PageFaultError(VMError):
    """An access touched an unmapped page or violated page protections.

    Attributes:
        address: the faulting virtual address.
        access: which access kind faulted.
        present: True if the page was mapped but the protection forbade
            the access; False if the page was not mapped at all.
    """

    def __init__(self, address: int, access: AccessKind, present: bool) -> None:
        state = "protection" if present else "not-present"
        super().__init__(
            f"page fault ({state}) on {access.value} at 0x{address:08x}"
        )
        self.address = address
        self.access = access
        self.present = present
        # Set True by the vmfault injection plane on spurious faults so
        # the kernel can count containment when the victim dies.
        self.injected = False
        # The raise site is the one place every fault passes through
        # (CPU fetch, typed views, kernel force-paths all end up here);
        # the kernel's delivery emits the resolution outcome separately.
        tracer = _trace.TRACER
        if tracer.enabled:
            tracer.emit(EventKind.FAULT, name=access.value,
                        addr=address, value=int(present))

    @property
    def page(self) -> int:
        """Base address of the faulting page (4 KiB granularity)."""
        return self.address & ~0xFFF
