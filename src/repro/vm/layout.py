"""Address-space layout constants reproducing Figure 3 of the paper.

The paper's 32-bit prototype reserves a 1 GiB region between the Unix heap
and stack for the kernel-maintained shared file system. Addresses in that
region mean the same thing in every protection domain ("public"); all
other user addresses are overloaded per process ("private").

Layout (Figure 3)::

    0x80000000 - 0xFFFFFFFF   kernel
    0x70000000 - 0x7FFF0000   stack (grows down)
    0x30000000 - 0x70000000   shared file system (1 GiB, public)
    0x10000000 - 0x30000000   heap / bss / data (private)
    0x00000000 - 0x10000000   program text + dynamically linked modules
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB pages, as on the R3000


@dataclass(frozen=True)
class AddressRegion:
    """A named half-open address range ``[start, end)``."""

    name: str
    start: int
    end: int
    public: bool

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def __str__(self) -> str:
        kind = "public" if self.public else "private"
        return f"{self.name}: 0x{self.start:08x}-0x{self.end:08x} ({kind})"


TEXT_REGION = AddressRegion("text", 0x0000_0000, 0x1000_0000, public=False)
HEAP_REGION = AddressRegion("heap", 0x1000_0000, 0x3000_0000, public=False)
SFS_REGION = AddressRegion("sfs", 0x3000_0000, 0x7000_0000, public=True)
STACK_REGION = AddressRegion("stack", 0x7000_0000, 0x7FFF_0000, public=False)
KERNEL_REGION = AddressRegion("kernel", 0x8000_0000, 0x1_0000_0000, public=False)

ALL_REGIONS: List[AddressRegion] = [
    TEXT_REGION,
    HEAP_REGION,
    SFS_REGION,
    STACK_REGION,
    KERNEL_REGION,
]

# Default link address for program text (main load image).
TEXT_BASE = 0x0040_0000

# Private dynamic modules (dynamic private sharing class) are mapped here,
# well above the static heap but still in the overloaded private region.
PRIVATE_DYNAMIC_BASE = 0x2000_0000

# Initial stack pointer; the stack grows downward from just below the top
# of the stack region.
STACK_TOP = STACK_REGION.end

# Default size of the brk-style heap placed at the bottom of HEAP_REGION.
HEAP_BASE = HEAP_REGION.start


def is_public_address(address: int) -> bool:
    """True if *address* falls in the globally consistent (SFS) region."""
    return SFS_REGION.contains(address)


def region_of(address: int) -> AddressRegion:
    """Return the named region containing *address*.

    Raises :class:`ValueError` for addresses outside the 32-bit space or in
    the unnamed gap below the kernel.
    """
    for region in ALL_REGIONS:
        if region.contains(address):
            return region
    raise ValueError(f"address 0x{address:08x} lies in no architected region")


def describe_layout() -> str:
    """Human-readable rendering of the Figure 3 layout, top of memory first."""
    lines = [str(region) for region in reversed(ALL_REGIONS)]
    return "\n".join(lines)
