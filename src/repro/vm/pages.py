"""Physical frames and page-backed memory objects.

A :class:`MemoryObject` is the paper's *segment*: a page-backed byte
container that can be accessed as a file (read/write at offsets) or have
its pages mapped directly into address spaces, so shared mappings write
straight through to the object — the same property real mmap(MAP_SHARED)
gives a Unix file.

Frames are reference counted. A frame shared by several address spaces
(or by an address space and a file) has refcount > 1; copy-on-write
resolution copies only when the count demands it.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterator, Optional

from repro.errors import OutOfMemoryError
from repro.vm.layout import PAGE_SIZE


class Frame:
    """One physical page frame: PAGE_SIZE bytes plus a reference count.

    ``decode`` is the per-frame decoded-instruction cache: page offset →
    predecoded instruction tuple, filled by the CPU fast path. Any write
    to ``data`` must clear it (all writers go through
    :meth:`AddressSpace.write_bytes <repro.vm.address_space.AddressSpace.write_bytes>`
    or :class:`MemoryObject`, which do), so stale decodes can never
    execute — the property self-modifying text (PLT patching, ``ldl``
    jump-slot fixups) depends on.

    ``decode_cores`` is the SMP shadow of ``decode``: the set of cores
    that have executed from this frame since the cache was last
    cleared. Only populated on multi-core boots (the CPU fast path
    checks ``space.smp``); a write that clears ``decode`` clears it
    too, counting one decode shootdown per *other* core in the set.
    """

    __slots__ = ("data", "refcount", "decode", "decode_cores")

    def __init__(self, data: Optional[bytes] = None) -> None:
        if data is None:
            self.data = bytearray(PAGE_SIZE)
        else:
            if len(data) > PAGE_SIZE:
                raise ValueError("frame initializer larger than a page")
            self.data = bytearray(PAGE_SIZE)
            self.data[: len(data)] = data
        self.refcount = 1
        self.decode: Dict[int, tuple] = {}
        self.decode_cores: set = set()


class PhysicalMemory:
    """Allocator and accounting for physical frames.

    The frame limit defaults to 256 Mi worth of pages — generous for the
    simulation but finite, so runaway mappings surface as
    :class:`OutOfMemoryError` rather than host memory exhaustion.
    """

    def __init__(self, max_frames: int = (256 << 20) // PAGE_SIZE) -> None:
        self.max_frames = max_frames
        self.allocated = 0
        self.peak = 0

    def alloc(self, data: Optional[bytes] = None) -> Frame:
        """Allocate a zeroed (or initialized) frame with refcount 1."""
        if self.allocated >= self.max_frames:
            raise OutOfMemoryError(
                f"physical memory exhausted ({self.max_frames} frames)"
            )
        self.allocated += 1
        self.peak = max(self.peak, self.allocated)
        return Frame(data)

    def retain(self, frame: Frame) -> Frame:
        """Add a reference to *frame* and return it."""
        frame.refcount += 1
        return frame

    def release(self, frame: Frame) -> None:
        """Drop a reference; free the frame when the count reaches zero."""
        if frame.refcount <= 0:
            raise AssertionError("releasing a dead frame")
        frame.refcount -= 1
        if frame.refcount == 0:
            self.allocated -= 1

    def copy(self, frame: Frame) -> Frame:
        """Allocate a new frame with a copy of *frame*'s contents."""
        return self.alloc(bytes(frame.data))


class MemoryObject:
    """A page-backed segment, usable both as file contents and as a
    mapping target.

    Pages are allocated lazily: reading an unwritten page sees zeros
    without consuming a frame (important for the sparse SFS region).
    ``size`` tracks the byte length when the object backs a file; mappings
    may extend past it (the extension reads as zeros, as mmap of a short
    file does).
    """

    def __init__(self, physmem: PhysicalMemory, size: int = 0,
                 name: str = "<anon>") -> None:
        self._physmem = physmem
        self._pages: Dict[int, Frame] = {}
        self.size = size
        self.name = name
        # Address spaces holding TLB entries over this object's frames.
        # Page-identity changes (truncate, replace_page, free) notify
        # them so cached translations never outlive the frames they
        # name; plain data writes need no notification because TLB
        # entries alias the frame's bytearray.
        self._watchers: "weakref.WeakSet" = weakref.WeakSet()

    # -- TLB coherence -----------------------------------------------------

    def watch(self, watcher) -> None:
        """Register *watcher* (an AddressSpace) for invalidation events."""
        self._watchers.add(watcher)

    def _notify_invalidate(self) -> None:
        for watcher in list(self._watchers):
            watcher.tlb_object_invalidated(self)

    # -- page-level interface (used by AddressSpace) -----------------------

    def page(self, index: int) -> Optional[Frame]:
        """The frame backing page *index*, or None if never written."""
        return self._pages.get(index)

    def ensure_page(self, index: int) -> Frame:
        """The frame backing page *index*, allocating a zero frame if needed."""
        frame = self._pages.get(index)
        if frame is None:
            frame = self._physmem.alloc()
            self._pages[index] = frame
        return frame

    def pages(self) -> Iterator[int]:
        """Indices of materialized pages."""
        return iter(sorted(self._pages))

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    # -- byte-level interface (used by the file systems) -------------------

    def read(self, offset: int, length: int) -> bytes:
        """Read *length* bytes at *offset*, zero-filling unwritten pages.

        Reads are clamped to the object's current size, like file reads.
        """
        if offset < 0 or length < 0:
            raise ValueError("negative offset or length")
        if offset >= self.size:
            return b""
        length = min(length, self.size - offset)
        return self._read_raw(offset, length)

    def _read_raw(self, offset: int, length: int) -> bytes:
        out = bytearray(length)
        pos = 0
        while pos < length:
            addr = offset + pos
            page_index, page_off = divmod(addr, PAGE_SIZE)
            chunk = min(length - pos, PAGE_SIZE - page_off)
            frame = self._pages.get(page_index)
            if frame is not None:
                out[pos: pos + chunk] = frame.data[page_off: page_off + chunk]
            pos += chunk
        return bytes(out)

    def write(self, offset: int, data: bytes) -> int:
        """Write *data* at *offset*, growing the object as needed."""
        if offset < 0:
            raise ValueError("negative offset")
        pos = 0
        length = len(data)
        while pos < length:
            addr = offset + pos
            page_index, page_off = divmod(addr, PAGE_SIZE)
            chunk = min(length - pos, PAGE_SIZE - page_off)
            frame = self.ensure_page(page_index)
            if frame.decode:
                frame.decode.clear()
                if frame.decode_cores:
                    frame.decode_cores.clear()
            frame.data[page_off: page_off + chunk] = data[pos: pos + chunk]
            pos += chunk
        self.size = max(self.size, offset + length)
        return length

    def truncate(self, new_size: int) -> None:
        """Shrink or grow the logical size, freeing frames past the end and
        zeroing the tail of the boundary page so old data cannot reappear."""
        if new_size < 0:
            raise ValueError("negative size")
        if new_size < self.size:
            boundary_page, boundary_off = divmod(new_size, PAGE_SIZE)
            for index in [i for i in self._pages if i > boundary_page]:
                self._physmem.release(self._pages.pop(index))
            if boundary_off == 0 and boundary_page in self._pages:
                self._physmem.release(self._pages.pop(boundary_page))
            elif boundary_page in self._pages:
                frame = self._pages[boundary_page]
                if frame.decode:
                    frame.decode.clear()
                    if frame.decode_cores:
                        frame.decode_cores.clear()
                frame.data[boundary_off:] = bytes(PAGE_SIZE - boundary_off)
            self._notify_invalidate()
        self.size = new_size

    def free(self) -> None:
        """Release every frame. The object must not be mapped anywhere."""
        for frame in self._pages.values():
            self._physmem.release(frame)
        self._pages.clear()
        self.size = 0
        self._notify_invalidate()

    def replace_page(self, index: int, frame: Frame) -> None:
        """Install *frame* as page *index*, releasing any previous frame.

        Used by copy-on-write break-sharing when the object owns the page.
        """
        old = self._pages.get(index)
        if old is not None and old is not frame:
            self._physmem.release(old)
        self._pages[index] = frame
        self._notify_invalidate()

    def snapshot(self) -> bytes:
        """The full contents as a byte string (size-clamped)."""
        return self.read(0, self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MemoryObject {self.name!r} size={self.size} "
            f"resident={self.resident_pages}>"
        )
