"""Shared fixtures: a booted system, a shell process, common dirs."""

from __future__ import annotations

import pytest

from repro import boot
from repro.bench.workloads import make_shell


@pytest.fixture
def system():
    """A freshly booted simulated machine (lazy linking, linear map)."""
    return boot()


@pytest.fixture
def kernel(system):
    return system.kernel


@pytest.fixture
def shell(kernel):
    """A native process used as the context for toolchain operations."""
    return make_shell(kernel)


@pytest.fixture
def physmem(kernel):
    return kernel.physmem


@pytest.fixture
def dirs(kernel, shell):
    """Standard directories used across linking tests."""
    kernel.vfs.makedirs("/shared/lib")
    kernel.vfs.makedirs("/src")
    kernel.vfs.makedirs("/bin")
    return {"lib": "/shared/lib", "src": "/src", "bin": "/bin"}
