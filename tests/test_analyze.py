"""repro.analyze: the reprolint checks, the corpus, and the link gates."""

import pytest

from repro import boot
from repro.apps.presto.runtime import SHARED_DATA_SOURCE, WORKER_SOURCE
from repro.bench.workloads import make_shell
from repro.errors import LinkError, LintError
from repro.hw.asm import assemble
from repro.linker.branch_islands import count_far_jumps
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.linker.ldl import Ldl
from repro.linker.segments import read_segment_meta, update_segment_meta
from repro.objfile.archive import Archive
from repro.objfile.format import (
    ObjectFile,
    ObjectKind,
    Relocation,
    RelocType,
    SEC_TEXT,
)
from repro.toyc import compile_source
from repro.tools.cli import UsageError, reprolint_main
from repro.analyze import (
    CATALOG,
    LintContext,
    Report,
    ScopeModule,
    Severity,
    analyze_object,
    broken_objects,
    finding,
    format_reloc,
    format_site,
    run_self_test,
)

from tests.test_linker_lds import MAIN_CALLS_SHARED, SHARED_MODULE, put
from tests.test_linker_scoped import diamond

# A main that never returns control: reachable flow runs off the end of
# text, which the CFG check classifies as CFG002 (an ERROR) — the shape
# the lds gate must refuse to write to disk.
BROKEN_MAIN = """
        .text
        .globl main
main:
        li v0, 7
"""


def not_defined_in(obj):
    """The lds/ldl branch-island predicate, spelled out for tests."""
    def needs_island(symbol):
        entry = obj.symbols.get(symbol)
        return entry is None or not entry.defined
    return needs_island


# ---------------------------------------------------------------------------
# report model
# ---------------------------------------------------------------------------


class TestReportModel:
    def test_severity_is_ordered(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert str(Severity.ERROR) == "error"

    def test_catalog_codes_are_stable_shapes(self):
        assert len(CATALOG) == 40
        for code, (severity, title) in CATALOG.items():
            assert code[:3] in ("REL", "SYM", "CFG", "LAY", "SHR", "DSK",
                                "SAN")
            assert code[3:].isdigit() and len(code) == 6
            assert isinstance(severity, Severity)
            assert title

    def test_finding_takes_catalog_severity(self):
        item = finding("REL001", "m.o", "lonely half",
                       section="text", offset=8, symbol="g")
        assert item.severity is Severity.ERROR
        assert item.site() == "text+0x8"
        assert "REL001 error:" in str(item)
        assert "[g]" in str(item)

    def test_format_site_spellings(self):
        assert format_site("text", 0x14) == "text+0x14"
        assert format_site("text", 0x14, 0x400014) == "0x00400014"
        assert format_site("bss", None) == "bss"
        assert format_site("", None) == "-"

    def test_format_reloc_with_codes(self):
        reloc = Relocation(SEC_TEXT, 4, RelocType.JUMP26, "fn", 8)
        assert format_reloc(reloc) == "JUMP26 fn+0x8"
        assert format_reloc(reloc, ["REL004"]) == "JUMP26 fn+0x8 [REL004]"

    def test_report_queries_and_render(self):
        report = Report(subject="m.o")
        report.add(finding("SYM003", "m.o", "shadowed", symbol="x"))
        report.add(finding("REL001", "m.o", "broken", section="text",
                           offset=0))
        assert report.count("REL001") == 1
        assert report.codes() == ["REL001", "SYM003"]
        assert report.max_severity is Severity.ERROR
        rendered = report.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("REL001")  # worst first
        assert lines[-1] == "m.o: 2 finding(s) (1 error, 0 warning, 1 info)"
        # min_severity filters the listing but not the tally.
        quiet = report.render(Severity.WARNING)
        assert "SYM003" not in quiet.splitlines()[0]

    def test_raise_if_thresholds(self):
        report = Report(subject="m.o")
        report.add(finding("CFG001", "m.o", "dead code"))
        report.raise_if(Severity.ERROR)  # warnings pass the gate
        with pytest.raises(LintError) as err:
            report.raise_if(Severity.WARNING)
        assert "m.o" in str(err.value)
        assert err.value.findings


# ---------------------------------------------------------------------------
# the seeded broken-object corpus: every code fires, exactly once
# ---------------------------------------------------------------------------


class TestCorpus:
    # DSK* codes fire on disk images (see tests/test_disk.py), not on
    # linker objects, so the broken-object corpus excludes them.
    @pytest.mark.parametrize(
        "code",
        sorted(c for c in CATALOG if not c.startswith("DSK")),
        ids=sorted(c for c in CATALOG if not c.startswith("DSK")),
    )
    def test_each_code_fires_exactly_once(self, code):
        entries = [e for e in broken_objects() if e.code == code]
        assert len(entries) == 1, f"no corpus entry for {code}"
        report = entries[0].analyze()
        assert report.count(code) == 1, report.render()

    def test_strict_self_test_is_clean(self):
        assert run_self_test(strict=True) == []


# ---------------------------------------------------------------------------
# relocation checks on real toolchain output
# ---------------------------------------------------------------------------


class TestRelocationsOnRealObjects:
    def test_clean_hi_lo_pair_not_flagged(self):
        obj = assemble("""
            .text
            .globl fn
        fn:
            la t0, counter
            lw v0, 0(t0)
            jr ra
            .data
            .globl counter
        counter: .word 0
        """, "m.o")
        report = analyze_object(obj)
        assert report.count("REL001") == 0
        assert report.count("REL002") == 0

    @pytest.mark.parametrize("source,name", [
        (MAIN_CALLS_SHARED, "main.o"),
        (SHARED_MODULE, "shared.o"),
    ])
    def test_far_jump_agreement_on_assembly(self, source, name):
        obj = assemble(source, name)
        report = analyze_object(obj)
        assert report.count("REL004") == \
            count_far_jumps(obj, not_defined_in(obj))

    def test_far_jump_agreement_on_toyc_modules(self):
        """Satellite: REL004 == count_far_jumps on toyc-built modules."""
        objects = [
            compile_source(SHARED_DATA_SOURCE.format(nitems=4),
                           "shared_data.o"),
            compile_source(WORKER_SOURCE.format(nitems=4), "worker.o"),
        ]
        flagged_any = False
        for obj in objects:
            report = analyze_object(obj)
            expected = count_far_jumps(obj, not_defined_in(obj))
            assert report.count("REL004") == expected, obj.name
            flagged_any = flagged_any or expected > 0
        # The worker calls extern semaphore routines, so the cross-check
        # exercised a non-zero count.
        assert flagged_any


# ---------------------------------------------------------------------------
# symbol audit over real scope-chain shapes (fixtures from
# test_linker_scoped: the same DAGs scope_chain itself is tested on)
# ---------------------------------------------------------------------------


def levels_from_diamond():
    leaf, left, right, root = diamond()
    def scope(module):
        return ScopeModule(module.name, exports=module.exports())
    return [
        [scope(leaf)],
        [scope(left), scope(right)],
        [scope(root)],
    ]


class TestSymbolAudit:
    def test_duplicate_within_one_level(self):
        obj = assemble(".text\n.globl f\nf:\njr ra", "m.o")
        context = LintContext(scope_levels=levels_from_diamond())
        report = analyze_object(obj, context, only=["symbols"])
        dups = report.by_code("SYM002")
        assert len(dups) == 1 and dups[0].symbol == "dup"

    def test_own_definition_shadows_outer_export(self):
        obj = assemble(".text\n.globl deep\ndeep:\njr ra", "m.o")
        context = LintContext(scope_levels=levels_from_diamond())
        report = analyze_object(obj, context, only=["symbols"])
        shadows = report.by_code("SYM003")
        assert any(f.symbol == "deep" for f in shadows)

    def test_unresolved_only_in_closed_world(self):
        obj = assemble(
            ".text\n.globl f\nf:\njal nowhere\njr ra", "m.o"
        )
        levels = levels_from_diamond()
        open_world = LintContext(scope_levels=levels)
        assert analyze_object(
            obj, open_world, only=["symbols"]
        ).count("SYM001") == 0
        closed = LintContext(scope_levels=levels, closed_world=True)
        report = analyze_object(obj, closed, only=["symbols"])
        assert [f.symbol for f in report.by_code("SYM001")] == ["nowhere"]

    def test_unknown_module_disarms_closed_world(self):
        obj = assemble(
            ".text\n.globl f\nf:\njal nowhere\njr ra", "m.o"
        )
        levels = levels_from_diamond()
        levels[1].append(ScopeModule("mystery", exports=None))
        context = LintContext(scope_levels=levels, closed_world=True)
        assert analyze_object(
            obj, context, only=["symbols"]
        ).count("SYM001") == 0


# ---------------------------------------------------------------------------
# clean in-tree builds produce zero errors end to end
# ---------------------------------------------------------------------------


class TestCleanBuilds:
    def test_static_link_executable_and_template_lint_clean(
            self, system, kernel, shell, dirs):
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        put(kernel, shell, "/src/shared.o", SHARED_MODULE)
        system.lds.link(
            shell,
            [LinkRequest("/src/main.o"), LinkRequest("/src/shared.o")],
            output="/bin/a",
            verify=True,  # the gate itself must pass
        )
        out = reprolint_main(kernel, shell,
                             ["--strict", "/bin/a", "/src/main.o",
                              "/src/shared.o"])
        assert "0 error" in out

    def test_dynamic_public_segment_lints_clean(self, system, kernel,
                                                shell, dirs):
        put(kernel, shell, "/shared/lib/shared.o", SHARED_MODULE)
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        result = system.lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("shared.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/src/main",
            search_dirs=["/shared/lib"],
            verify=True,
        )
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 5
        # The run created the public segment; lint it as a file.
        out = reprolint_main(kernel, shell,
                             ["--strict", "/shared/lib/shared"])
        assert "0 error" in out


# ---------------------------------------------------------------------------
# the lds gate
# ---------------------------------------------------------------------------


class TestLdsGate:
    def test_broken_link_raises_and_writes_nothing(self, system, kernel,
                                                   shell, dirs):
        put(kernel, shell, "/src/broken.o", BROKEN_MAIN)
        with pytest.raises(LintError) as err:
            system.lds.link(shell, [LinkRequest("/src/broken.o")],
                            output="/bin/broken", verify=True)
        assert any("CFG002" in line for line in err.value.findings)
        assert not kernel.vfs.exists("/bin/broken")

    def test_gate_off_by_default(self, system, kernel, shell, dirs,
                                 monkeypatch):
        monkeypatch.delenv("REPRO_LINT", raising=False)
        put(kernel, shell, "/src/broken.o", BROKEN_MAIN)
        system.lds.link(shell, [LinkRequest("/src/broken.o")],
                        output="/bin/broken")
        assert kernel.vfs.exists("/bin/broken")

    def test_env_variable_arms_the_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "1")
        system = boot()
        kernel = system.kernel
        shell = make_shell(kernel)
        kernel.vfs.makedirs("/src")
        kernel.vfs.makedirs("/bin")
        put(kernel, shell, "/src/broken.o", BROKEN_MAIN)
        with pytest.raises(LintError):
            system.lds.link(shell, [LinkRequest("/src/broken.o")],
                            output="/bin/broken")

    def test_explicit_off_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "1")
        system = boot()
        kernel = system.kernel
        shell = make_shell(kernel)
        kernel.vfs.makedirs("/src")
        kernel.vfs.makedirs("/bin")
        put(kernel, shell, "/src/broken.o", BROKEN_MAIN)
        system.lds.link(shell, [LinkRequest("/src/broken.o")],
                        output="/bin/broken", verify=False)
        assert kernel.vfs.exists("/bin/broken")


# ---------------------------------------------------------------------------
# the ldl gates
# ---------------------------------------------------------------------------


COUNTER = """
        .text
        .globl bump
bump:
        la t0, counter
        lw v0, 0(t0)
        addi t1, v0, 1
        sw t1, 0(t0)
        jr ra
        .data
        .globl counter
counter: .word 0
"""


def bootstrap_ldl(kernel, shell, verify):
    ldl = Ldl(kernel, shell, verify=verify)
    root = ObjectFile("root", ObjectKind.EXECUTABLE)
    root.link_info.search_path = ["/shared/lib"]
    ldl.bootstrap(root)
    return ldl


class TestLdlGate:
    def test_clean_public_module_passes(self, kernel, shell, dirs):
        put(kernel, shell, "/shared/lib/counter.o", COUNTER)
        ldl = bootstrap_ldl(kernel, shell, verify=True)
        module = ldl.ensure_module("counter.o",
                                   SharingClass.DYNAMIC_PUBLIC, ldl.root)
        assert module.path == "/shared/lib/counter"

    def test_corrupt_public_meta_refused_before_mapping(self, kernel,
                                                        shell, dirs):
        put(kernel, shell, "/shared/lib/counter.o", COUNTER)
        creator = bootstrap_ldl(kernel, make_shell(kernel), verify=False)
        creator.ensure_module("counter.o", SharingClass.DYNAMIC_PUBLIC,
                              creator.root)
        # Corrupt the on-disk metadata the way a buggy tool would: a
        # JUMP26 retained in a placed image can never be resolved
        # in-region (REL005).
        meta, _base, _length = read_segment_meta(
            kernel, shell, "/shared/lib/counter")
        meta.relocations.append(
            Relocation(SEC_TEXT, 0, RelocType.JUMP26, "faraway"))
        update_segment_meta(kernel, shell, "/shared/lib/counter", meta)

        victim = bootstrap_ldl(kernel, make_shell(kernel), verify=True)
        with pytest.raises(LintError) as err:
            victim.ensure_module("counter.o",
                                 SharingClass.DYNAMIC_PUBLIC, victim.root)
        assert any("REL005" in line for line in err.value.findings)
        # An unverified ldl still maps it (the gate, not the mapper,
        # is what refused).
        tolerant = bootstrap_ldl(kernel, make_shell(kernel), verify=False)
        module = tolerant.ensure_module(
            "counter.o", SharingClass.DYNAMIC_PUBLIC, tolerant.root)
        assert module is not None

    def test_broken_private_template_refused(self, kernel, shell, dirs):
        # A template whose LO16 reloc was dropped: the surviving HI16
        # half can never be patched coherently (REL001).
        obj = assemble(COUNTER, "bad.o")
        obj.relocations = [r for r in obj.relocations
                           if r.type is not RelocType.LO16]
        del obj.symbols["counter"]  # keep the HI16 target unresolved
        store_object(kernel, shell, "/shared/lib/bad.o", obj)
        ldl = bootstrap_ldl(kernel, shell, verify=True)
        with pytest.raises(LintError) as err:
            ldl.ensure_module("bad.o", SharingClass.DYNAMIC_PRIVATE,
                              ldl.root)
        assert any("REL001" in line for line in err.value.findings)

    def test_clean_private_module_passes(self, kernel, shell, dirs):
        put(kernel, shell, "/shared/lib/counter.o", COUNTER)
        ldl = bootstrap_ldl(kernel, shell, verify=True)
        module = ldl.ensure_module("counter.o",
                                   SharingClass.DYNAMIC_PRIVATE, ldl.root)
        assert module is not None


# ---------------------------------------------------------------------------
# the gate is free in simulated time
# ---------------------------------------------------------------------------


class TestGateCycleNeutrality:
    def _run_workload(self, verify):
        system = boot(verify=verify)
        kernel = system.kernel
        shell = make_shell(kernel)
        kernel.vfs.makedirs("/shared/lib")
        kernel.vfs.makedirs("/src")
        put(kernel, shell, "/shared/lib/shared.o", SHARED_MODULE)
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        result = system.lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("shared.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/src/main",
            search_dirs=["/shared/lib"],
        )
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 5
        return kernel.clock.cycles, dict(kernel.clock.by_category)

    def test_verification_charges_zero_cycles(self):
        cycles_off, categories_off = self._run_workload(verify=False)
        cycles_on, categories_on = self._run_workload(verify=True)
        assert cycles_on == cycles_off  # bit-identical simulated time
        assert categories_on == categories_off


# ---------------------------------------------------------------------------
# the reprolint CLI
# ---------------------------------------------------------------------------


class TestReprolintCli:
    def test_lints_a_template(self, kernel, shell, dirs):
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        out = reprolint_main(kernel, shell, ["/src/main.o"])
        assert "/src/main.o" in out
        assert "REL004" in out  # the advisory far-call note

    def test_quiet_hides_info_findings(self, kernel, shell, dirs):
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        out = reprolint_main(kernel, shell, ["--quiet", "/src/main.o"])
        assert "REL004" not in out.splitlines()[0]
        assert "finding(s)" in out

    def test_strict_tolerates_info(self, kernel, shell, dirs):
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        reprolint_main(kernel, shell, ["--strict", "/src/main.o"])

    def test_error_finding_raises(self, kernel, shell, dirs):
        obj = assemble(COUNTER, "bad.o")
        obj.relocations = [r for r in obj.relocations
                           if r.type is not RelocType.LO16]
        store_object(kernel, shell, "/src/bad.o", obj)
        with pytest.raises(LintError):
            reprolint_main(kernel, shell, ["/src/bad.o"])

    def test_only_restricts_categories(self, kernel, shell, dirs):
        obj = assemble(COUNTER, "bad.o")
        obj.relocations = [r for r in obj.relocations
                           if r.type is not RelocType.LO16]
        store_object(kernel, shell, "/src/bad.o", obj)
        # The defect is a relocation defect; skipping that category
        # passes, selecting it fails.
        reprolint_main(kernel, shell,
                       ["--only", "symbols,layout", "/src/bad.o"])
        with pytest.raises(LintError):
            reprolint_main(kernel, shell,
                           ["--only", "relocations", "/src/bad.o"])

    def test_lints_archive_members(self, kernel, shell, dirs):
        archive = Archive("lib.a")
        archive.add(assemble(SHARED_MODULE, "shared.o"))
        archive.add(assemble(MAIN_CALLS_SHARED, "main.o"))
        kernel.vfs.write_whole("/src/lib.a", archive.to_bytes(),
                               shell.uid)
        out = reprolint_main(kernel, shell, ["/src/lib.a"])
        assert "REL004" in out  # main.o's far call, found inside the .a

    def test_lints_segment_file(self, kernel, shell, dirs):
        put(kernel, shell, "/shared/lib/counter.o", COUNTER)
        ldl = bootstrap_ldl(kernel, shell, verify=False)
        ldl.ensure_module("counter.o", SharingClass.DYNAMIC_PUBLIC,
                          ldl.root)
        out = reprolint_main(kernel, shell,
                             ["--strict", "/shared/lib/counter"])
        assert "0 error" in out

    def test_usage_errors(self, kernel, shell, dirs):
        with pytest.raises(UsageError):
            reprolint_main(kernel, shell, [])
        with pytest.raises(UsageError):
            reprolint_main(kernel, shell,
                           ["--only", "nonsense", "/src/x.o"])

    def test_non_object_file_rejected(self, kernel, shell, dirs):
        kernel.vfs.write_whole("/src/notes.txt", b"hello world, no magic",
                               shell.uid)
        with pytest.raises(LinkError):
            reprolint_main(kernel, shell, ["/src/notes.txt"])
