"""Administrative files: /etc/passwd as text vs shared data structure."""

import pytest

from repro.apps.admin import (
    FilePasswd,
    PasswdEntry,
    SharedPasswd,
    generate_users,
)
from repro.apps.admin.common import ValidationError, validate_database
from repro.apps.admin.fileimpl import format_line, parse_line
from repro.bench.workloads import make_shell
from repro.errors import SimulationError


@pytest.fixture
def users():
    return generate_users(40)


class TestTextFormat:
    def test_line_roundtrip(self, users):
        for entry in users:
            clone = parse_line(format_line(entry))
            assert clone == entry

    def test_malformed_line(self):
        with pytest.raises(SimulationError):
            parse_line("too:few:fields")

    def test_file_roundtrip(self, kernel, shell, users):
        db = FilePasswd(kernel, shell)
        db.write_all(users)
        assert db.read_all() == users

    def test_getpwnam(self, kernel, shell, users):
        db = FilePasswd(kernel, shell)
        db.write_all(users)
        assert db.getpwnam("user005").uid == 1005
        assert db.getpwnam("nobody") is None


class TestValidation:
    def test_rules(self):
        ok = PasswdEntry("alice", 1000, 100, "Alice", "/home/alice",
                         "/bin/sh")
        validate_database([ok])
        bad_cases = [
            PasswdEntry("", 1, 1, "", "/h", "/s"),
            PasswdEntry("1abc", 1, 1, "", "/h", "/s"),
            PasswdEntry("a:b", 1, 1, "", "/h", "/s"),
            PasswdEntry("bob", -1, 1, "", "/h", "/s"),
            PasswdEntry("bob", 1, 1, "x:y", "/h", "/s"),
            PasswdEntry("bob", 1, 1, "", "home", "/s"),
            PasswdEntry("bob", 1, 1, "", "/h", "sh"),
        ]
        for entry in bad_cases:
            with pytest.raises(ValidationError):
                validate_database([entry])

    def test_duplicate_names(self):
        a = PasswdEntry("dup", 1, 1, "", "/h", "/sh")
        b = PasswdEntry("dup", 2, 1, "", "/h", "/sh")
        with pytest.raises(ValidationError):
            validate_database([a, b])

    def test_vipw_rejects_invalid_edit(self, kernel, shell, users):
        db = FilePasswd(kernel, shell)
        db.write_all(users)

        def corrupt(entries):
            entries[0].home = "not-absolute"

        with pytest.raises(ValidationError):
            db.vipw(corrupt)


class TestSharedDatabase:
    def test_roundtrip_and_equivalence(self, kernel, shell, users):
        text_db = FilePasswd(kernel, shell)
        shm_db = SharedPasswd(kernel, shell)
        text_db.write_all(users)
        shm_db.write_all(users)
        for probe in ("user000", "user020", "user039", "ghost"):
            assert text_db.getpwnam(probe) == shm_db.getpwnam(probe)

    def test_getpwuid(self, kernel, shell, users):
        db = SharedPasswd(kernel, shell)
        db.write_all(users)
        assert db.getpwuid(1007).name == "user007"
        assert db.getpwuid(9) is None

    def test_visible_across_processes(self, kernel, shell, users):
        db = SharedPasswd(kernel, shell)
        db.write_all(users)
        other = make_shell(kernel, "nss-client")
        other_view = SharedPasswd(kernel, other)
        assert other_view.getpwnam("user013").home == "/home/user013"

    def test_update_entry_in_place(self, kernel, shell, users):
        db = SharedPasswd(kernel, shell)
        db.write_all(users)

        def change_shell(entry):
            entry.shell = "/bin/zsh"

        assert db.update_entry("user003", change_shell)
        assert db.getpwnam("user003").shell == "/bin/zsh"
        assert not db.update_entry("ghost", change_shell)

    def test_update_entry_validates(self, kernel, shell, users):
        db = SharedPasswd(kernel, shell)
        db.write_all(users)

        def corrupt(entry):
            entry.home = "relative"

        with pytest.raises(ValidationError):
            db.update_entry("user001", corrupt)
        # Nothing was committed.
        assert db.getpwnam("user001").home == "/home/user001"

    def test_rename_through_update_rejected(self, kernel, shell, users):
        db = SharedPasswd(kernel, shell)
        db.write_all(users)

        def rename(entry):
            entry.name = "other"

        with pytest.raises(SimulationError):
            db.update_entry("user002", rename)

    def test_vipw_add_user(self, kernel, shell, users):
        db = SharedPasswd(kernel, shell)
        db.write_all(users)

        def add(entries):
            entries.append(PasswdEntry("newbie", 2000, 100, "New",
                                       "/home/newbie", "/bin/sh"))

        db.vipw(add)
        assert db.count == len(users) + 1
        assert db.getpwnam("newbie").uid == 2000

    def test_capacity_enforced(self, kernel, shell):
        db = SharedPasswd(kernel, shell, max_users=5)
        with pytest.raises(SimulationError):
            db.write_all(generate_users(6))

    def test_lock_released_after_edit(self, kernel, shell, users):
        db = SharedPasswd(kernel, shell)
        db.write_all(users)
        db.update_entry("user001", lambda e: None)
        _fs, inode = kernel.vfs.resolve(db.segment)
        assert inode.lock_owner is None


class TestLossOfCommonality:
    def test_export_import_bridge(self, kernel, shell, users):
        """§5: the shared form abandons text-tool compatibility; the
        explicit export restores it on demand (the terminfo pattern)."""
        db = SharedPasswd(kernel, shell)
        db.write_all(users)
        db.export_text("/etc/passwd.txt")
        text = kernel.vfs.read_whole("/etc/passwd.txt").decode("latin-1")
        # grep-able, line-oriented, colon-separated:
        assert f"user000:x:1000:" in text
        assert len(text.splitlines()) == len(users)

        # And a text edit can be imported back, with validation.
        edited = text.replace("/home/user000", "/users/zero")
        kernel.vfs.write_whole("/etc/passwd.txt",
                               edited.encode("latin-1"))
        db.import_text("/etc/passwd.txt")
        assert db.getpwnam("user000").home == "/users/zero"


class TestCosts:
    def test_shared_lookup_cheaper(self, kernel, shell):
        users = generate_users(120)
        text_db = FilePasswd(kernel, shell)
        shm_db = SharedPasswd(kernel, shell)
        text_db.write_all(users)
        shm_db.write_all(users)
        text_db.getpwnam("user060")   # warm the file cache

        start = kernel.clock.snapshot()
        text_db.getpwnam("user060")
        file_cycles = kernel.clock.snapshot() - start
        start = kernel.clock.snapshot()
        shm_db.getpwnam("user060")
        shm_cycles = kernel.clock.snapshot() - start
        assert shm_cycles < file_cycles
