"""Lynx table sharing and the Presto parallel runtime."""

import pytest

from repro.apps.libsys import build_libsys
from repro.apps.lynx import (
    EXPR_GRAMMAR,
    build_expression_tables,
    build_slr_tables,
    parse_expression,
    read_tables_segment,
    tables_from_ascii,
    tables_to_ascii,
    tables_to_toyc,
    tokenize_expression,
    write_tables_segment,
)
from repro.apps.lynx.slr import Grammar, flatten_tables
from repro.apps.lynx.tablegen import (
    load_tables_ascii,
    save_tables_ascii,
)
from repro.apps.presto import PrestoApp
from repro.errors import SimulationError
from repro.toyc import compile_source


class TestSlrGenerator:
    def test_expression_grammar_states(self):
        tables = build_slr_tables(EXPR_GRAMMAR)
        assert tables.nstates == 12  # the textbook SLR automaton

    def test_no_conflicts(self):
        build_slr_tables(EXPR_GRAMMAR)  # raises on conflict

    def test_conflicting_grammar_detected(self):
        ambiguous = Grammar(
            terminals=["a"],
            nonterminals=["S'", "S"],
            productions=[("S'", ("S",)), ("S", ("S", "S")),
                         ("S", ("a",))],
        )
        with pytest.raises(SimulationError):
            build_slr_tables(ambiguous)

    def test_unknown_symbol_rejected(self):
        with pytest.raises(SimulationError):
            Grammar(terminals=["a"], nonterminals=["S'"],
                    productions=[("S'", ("mystery",))])

    def test_flatten_shape(self):
        tables = build_slr_tables(EXPR_GRAMMAR)
        flat = flatten_tables(tables)
        nstates, nterms, nnonterms, nprods = flat["dims"]
        assert len(flat["action"]) == nstates * nterms
        assert len(flat["goto"]) == nstates * nnonterms
        assert len(flat["prod_heads"]) == nprods


class TestDriver:
    @pytest.fixture(scope="class")
    def tables(self):
        return build_expression_tables()

    def test_tokenizer(self):
        tokens = tokenize_expression("12 + 3*(4)")
        assert tokens == [("num", 12), ("+", 0), ("num", 3), ("*", 0),
                          ("(", 0), ("num", 4), (")", 0), ("$", 0)]

    def test_tokenizer_rejects_garbage(self):
        with pytest.raises(SimulationError):
            tokenize_expression("2 $ 3")

    @pytest.mark.parametrize("text,value", [
        ("1", 1),
        ("2+3", 5),
        ("2*3+4", 10),
        ("2+3*4", 14),
        ("(2+3)*4", 20),
        ("((((7))))", 7),
        ("1+2*3+4*5", 27),
        ("10*10*10", 1000),
    ])
    def test_evaluation(self, tables, text, value):
        assert parse_expression(tables, text) == value

    @pytest.mark.parametrize("text", ["+", "2+", "(2", "2)+1", ""])
    def test_parse_errors(self, tables, text):
        with pytest.raises(SimulationError):
            parse_expression(tables, text)


class TestTablePipelines:
    def test_ascii_roundtrip(self):
        tables = build_expression_tables()
        clone = tables_from_ascii(tables_to_ascii(tables))
        assert clone.action == tables.action
        assert clone.goto == tables.goto
        assert parse_expression(clone, "6*7") == 42

    def test_ascii_file_pipeline(self, kernel, shell):
        tables = build_expression_tables()
        save_tables_ascii(kernel, shell, tables, "/tables.txt")
        loaded = load_tables_ascii(kernel, shell, "/tables.txt")
        assert parse_expression(loaded, "2+2") == 4

    def test_toyc_emission_compiles(self):
        """The paper's pipeline: tables as (Toy) C source that compiles."""
        tables = build_expression_tables()
        source = tables_to_toyc(tables)
        obj = compile_source(source, "lynx_tables.o")
        exported = {s.name for s in obj.defined_globals()}
        assert {"lynx_action", "lynx_goto", "lynx_prod_heads",
                "lynx_prod_lengths", "lynx_nstates"} <= exported
        # "over 5400 lines" in the paper; ours is proportionally sized
        # (one initializer per line, ~146 lines for the 12-state tables).
        assert source.count("\n") > 100

    def test_segment_pipeline(self, kernel, shell):
        """The Hemlock pipeline: write once, link in, use directly."""
        from repro.bench.workloads import make_shell

        tables = build_expression_tables()
        write_tables_segment(kernel, shell, tables, "/shared/lynx")
        compiler_proc = make_shell(kernel, "compiler")
        loaded = read_tables_segment(kernel, compiler_proc,
                                     "/shared/lynx")
        assert parse_expression(loaded, "(1+2)*(3+4)") == 21

    def test_segment_cheaper_than_ascii(self, kernel, shell):
        tables = build_expression_tables()
        save_tables_ascii(kernel, shell, tables, "/tables.txt")
        write_tables_segment(kernel, shell, tables, "/shared/lynx")
        # Warm both paths once.
        load_tables_ascii(kernel, shell, "/tables.txt")
        read_tables_segment(kernel, shell, "/shared/lynx")

        start = kernel.clock.snapshot()
        load_tables_ascii(kernel, shell, "/tables.txt")
        ascii_cycles = kernel.clock.snapshot() - start
        start = kernel.clock.snapshot()
        read_tables_segment(kernel, shell, "/shared/lynx")
        segment_cycles = kernel.clock.snapshot() - start
        assert segment_cycles < ascii_cycles


class TestLibsys:
    def test_archive_contents(self):
        archive = build_libsys()
        index = archive.symbol_index()
        for name in ("exit", "put_int", "sem_p", "sem_v", "msg_send",
                     "strlen", "put_str"):
            assert name in index

    def test_put_str_machine(self, kernel):
        from repro.hw.asm import assemble
        from repro.linker.baseline_ld import link_static

        main = assemble("""
            .text
            .globl main
        main:
            addi sp, sp, -8
            sw ra, 0(sp)
            la a0, msg
            jal put_str
            lw ra, 0(sp)
            addi sp, sp, 8
            li v0, 0
            jr ra
            .data
        msg: .asciiz "from libsys"
        """, "m.o")
        image = link_static([main], archives=[build_libsys()])
        proc = kernel.create_machine_process("p", image)
        kernel.run_until_exit(proc)
        assert proc.stdout_text() == "from libsys"


class TestPresto:
    def test_parallel_sum_exact(self, kernel, shell):
        app = PrestoApp(kernel, shell, nitems=48)
        result = app.run_instance(nworkers=4)
        assert result.total == app.expected_total()
        assert sorted(result.results) == \
            sorted(i * i + 1 for i in range(48))
        assert sum(result.per_worker_items) == 48

    def test_work_is_distributed(self, kernel, shell):
        app = PrestoApp(kernel, shell, nitems=64)
        result = app.run_instance(nworkers=4)
        # More than one worker made progress (preemptive round-robin).
        busy = [count for count in result.per_worker_items if count > 0]
        assert len(busy) >= 2

    def test_instances_are_isolated(self, kernel, shell):
        app = PrestoApp(kernel, shell, nitems=16)
        first = app.run_instance(nworkers=2)
        second = app.run_instance(nworkers=2)
        assert first.total == second.total == app.expected_total()
        assert first.instance_dir != second.instance_dir

    def test_cleanup_removes_everything(self, kernel, shell):
        app = PrestoApp(kernel, shell, nitems=16)
        result = app.run_instance(nworkers=2)
        assert not kernel.vfs.exists(result.instance_dir)
        assert kernel.vfs.listdir("/shared/tmp") == []

    def test_single_worker_does_all(self, kernel, shell):
        app = PrestoApp(kernel, shell, nitems=8)
        result = app.run_instance(nworkers=1)
        assert result.per_worker_items == [8]
        assert result.total == app.expected_total()
