"""rwho: the file baseline and the shared-memory version must agree —
and the shared version must be cheaper."""

import pytest

from repro.apps.rwho import (
    FileRwhod,
    ShmRwhod,
    file_ruptime,
    file_rwho,
    generate_network,
    shm_ruptime,
    shm_rwho,
)
from repro.apps.rwho.common import updated_status
from repro.apps.rwho.fileimpl import pack_status, unpack_status
from repro.apps.rwho.shmimpl import read_database
from repro.util.rng import DeterministicRng


@pytest.fixture
def network():
    return generate_network(nhosts=12, seed=3)


class TestWorkload:
    def test_deterministic(self):
        a = generate_network(nhosts=5, seed=1)
        b = generate_network(nhosts=5, seed=1)
        assert [h.hostname for h in a] == [h.hostname for h in b]
        assert [h.load_1 for h in a] == [h.load_1 for h in b]

    def test_paper_network_size(self):
        assert len(generate_network()) == 65

    def test_update_preserves_identity(self):
        rng = DeterministicRng(9)
        host = generate_network(nhosts=1)[0]
        updated = updated_status(host, 60, rng)
        assert updated.hostname == host.hostname
        assert updated.boot_time == host.boot_time
        assert updated.update_time == host.update_time + 60


class TestWireFormat:
    def test_pack_unpack_roundtrip(self, network):
        for status in network:
            clone = unpack_status(pack_status(status))
            assert clone.hostname == status.hostname
            assert clone.load_1 == status.load_1
            assert len(clone.users) == len(status.users)
            for a, b in zip(clone.users, status.users):
                assert (a.name, a.tty, a.idle_seconds) == \
                    (b.name, b.tty, b.idle_seconds)


class TestEquivalence:
    def test_rwho_outputs_identical(self, kernel, shell, network):
        file_daemon = FileRwhod(kernel, shell)
        shm_daemon = ShmRwhod(kernel, shell, nhosts=len(network))
        for status in network:
            file_daemon.receive(status)
            shm_daemon.receive(status)
        assert file_rwho(kernel, shell) == shm_rwho(kernel, shell)
        assert file_ruptime(kernel, shell) == shm_ruptime(kernel, shell)

    def test_update_in_place(self, kernel, shell, network):
        daemon = ShmRwhod(kernel, shell, nhosts=len(network))
        for status in network:
            daemon.receive(status)
        rng = DeterministicRng(4)
        refreshed = updated_status(network[0], 60, rng)
        daemon.receive(refreshed)
        records = read_database(kernel, shell)
        assert len(records) == len(network)  # no duplicate slot
        by_name = {r.hostname: r for r in records}
        assert by_name[network[0].hostname].update_time == \
            refreshed.update_time

    def test_database_survives_daemon_restart(self, kernel, shell,
                                              network):
        daemon = ShmRwhod(kernel, shell, nhosts=len(network))
        for status in network:
            daemon.receive(status)
        # A "restarted" daemon attaches to the existing segment.
        daemon2 = ShmRwhod(kernel, shell, nhosts=len(network))
        assert daemon2.base == daemon.base
        rng = DeterministicRng(4)
        daemon2.receive(updated_status(network[1], 60, rng))
        assert len(read_database(kernel, shell)) == len(network)

    def test_reader_in_other_process(self, kernel, shell, network):
        from repro.bench.workloads import make_shell

        daemon = ShmRwhod(kernel, shell, nhosts=len(network))
        for status in network:
            daemon.receive(status)
        reader = make_shell(kernel, "reader")
        assert shm_rwho(kernel, reader) == shm_rwho(kernel, shell)


class TestCosts:
    def test_shared_query_cheaper_than_files(self, kernel, shell):
        """The headline claim: rwho against the shared database beats
        rwho against 65 files."""
        network = generate_network(nhosts=65)
        file_daemon = FileRwhod(kernel, shell)
        shm_daemon = ShmRwhod(kernel, shell, nhosts=65)
        for status in network:
            file_daemon.receive(status)
            shm_daemon.receive(status)

        start = kernel.clock.snapshot()
        file_rwho(kernel, shell)
        file_cycles = kernel.clock.snapshot() - start

        start = kernel.clock.snapshot()
        shm_rwho(kernel, shell)
        shm_cycles = kernel.clock.snapshot() - start

        assert shm_cycles < file_cycles / 5

    def test_shared_update_cheaper_than_rewrite(self, kernel, shell):
        network = generate_network(nhosts=20)
        file_daemon = FileRwhod(kernel, shell)
        shm_daemon = ShmRwhod(kernel, shell, nhosts=20)
        for status in network:  # warm both
            file_daemon.receive(status)
            shm_daemon.receive(status)
        rng = DeterministicRng(8)

        start = kernel.clock.snapshot()
        for status in network:
            file_daemon.receive(updated_status(status, 60, rng))
        file_cycles = kernel.clock.snapshot() - start

        start = kernel.clock.snapshot()
        for status in network:
            shm_daemon.receive(updated_status(status, 60, rng))
        shm_cycles = kernel.clock.snapshot() - start

        assert shm_cycles < file_cycles


class TestDaemonProcesses:
    """rwhod running as a real process, fed by a message-queue network."""

    def test_daemon_processes_broadcasts(self, kernel, network):
        from repro.apps.rwho.daemon import run_network

        received = run_network(kernel, network, "shm")
        assert received == len(network)
        assert shm_rwho(kernel,
                        kernel.create_native_process("u", _noop_body))

    def test_both_daemons_agree(self, kernel, network):
        from repro.apps.rwho.daemon import run_network
        from repro.bench.workloads import make_shell

        run_network(kernel, network, "file")
        run_network(kernel, network, "shm")
        user = make_shell(kernel, "user")
        assert file_rwho(kernel, user) == shm_rwho(kernel, user)
        assert file_ruptime(kernel, user) == shm_ruptime(kernel, user)

    def test_daemon_handles_interleaved_rounds(self, kernel, network):
        from repro.apps.rwho.daemon import run_network
        from repro.apps.rwho.common import updated_status
        from repro.apps.rwho.shmimpl import read_database
        from repro.bench.workloads import make_shell
        from repro.util.rng import DeterministicRng

        rng = DeterministicRng(6)
        rounds = list(network)
        for status in network:
            rounds.append(updated_status(status, 60, rng))
        received = run_network(kernel, rounds, "shm")
        assert received == len(rounds)
        user = make_shell(kernel, "user")
        records = read_database(kernel, user)
        assert len(records) == len(network)  # updates, not duplicates


def _noop_body(_kernel, _proc):
    return
    yield
