"""xfig: ASCII translation baseline vs pointer-rich shared figures."""

import pytest

from repro.apps.xfig import (
    FigCircle,
    FigLine,
    FigText,
    Figure,
    SharedFigure,
    figure_from_ascii,
    figure_to_ascii,
    generate_figure,
)
from repro.apps.xfig.ascii import load_figure_ascii, save_figure_ascii
from repro.errors import SimulationError


def figures_equal(a: Figure, b: Figure) -> bool:
    if len(a.objects) != len(b.objects):
        return False
    for left, right in zip(a.objects, b.objects):
        if type(left) is not type(right):
            return False
        if left.__dict__ != right.__dict__:
            return False
    return True


class TestModel:
    def test_generator_deterministic(self):
        assert figures_equal(generate_figure(40, seed=5),
                             generate_figure(40, seed=5))

    def test_counts(self):
        figure = generate_figure(100, seed=1)
        counts = figure.counts()
        assert sum(counts.values()) == 100
        assert all(count > 0 for count in counts.values())


class TestAsciiFormat:
    def test_roundtrip(self):
        figure = generate_figure(60, seed=2)
        assert figures_equal(figure,
                             figure_from_ascii(figure_to_ascii(figure)))

    def test_text_with_spaces_and_backslashes(self):
        figure = Figure([FigText(1, 2, "hello world \\ done", 3, 12)])
        assert figures_equal(figure,
                             figure_from_ascii(figure_to_ascii(figure)))

    def test_bad_header_rejected(self):
        with pytest.raises(SimulationError):
            figure_from_ascii("not a figure\n0\n")

    def test_file_roundtrip(self, kernel, shell):
        figure = generate_figure(30, seed=3)
        save_figure_ascii(kernel, shell, figure, "/fig.txt")
        assert figures_equal(figure,
                             load_figure_ascii(kernel, shell, "/fig.txt"))


class TestSharedFigure:
    def test_build_and_read_back(self, kernel, shell):
        figure = generate_figure(50, seed=4)
        shared = SharedFigure(kernel, shell, "/shared/fig", create=True)
        shared.build_from(figure)
        assert shared.count == 50
        assert figures_equal(figure, shared.to_figure())

    def test_open_existing_from_other_process(self, kernel, shell):
        from repro.bench.workloads import make_shell

        figure = generate_figure(20, seed=5)
        shared = SharedFigure(kernel, shell, "/shared/fig", create=True)
        shared.build_from(figure)
        other = make_shell(kernel, "viewer")
        reopened = SharedFigure(kernel, other, "/shared/fig")
        assert figures_equal(figure, reopened.to_figure())

    def test_copy_object_duplicates_deeply(self, kernel, shell):
        shared = SharedFigure(kernel, shell, "/shared/fig", create=True)
        original = shared.add_object(FigLine([(1, 2), (3, 4)], 5, 2))
        copy = shared.copy_object(original)
        assert copy != original
        a = shared.read_object(original)
        b = shared.read_object(copy)
        assert a.points == b.points
        # Deep: the copies have separate point storage.
        from repro.apps.xfig.shared import OBJ

        extra_a = OBJ.view(shared.mem, original).get("extra")
        extra_b = OBJ.view(shared.mem, copy).get("extra")
        assert extra_a != extra_b

    def test_delete_object(self, kernel, shell):
        shared = SharedFigure(kernel, shell, "/shared/fig", create=True)
        a = shared.add_object(FigCircle(1, 2, 3))
        b = shared.add_object(FigText(1, 1, "keep"))
        shared.delete_object(a)
        assert shared.count == 1
        remaining = shared.to_figure().objects
        assert isinstance(remaining[0], FigText)
        del b

    def test_delete_unknown_rejected(self, kernel, shell):
        shared = SharedFigure(kernel, shell, "/shared/fig", create=True)
        with pytest.raises(SimulationError):
            shared.delete_object(0x30000000)

    def test_heap_reuse_after_delete(self, kernel, shell):
        shared = SharedFigure(kernel, shell, "/shared/fig", create=True)
        first = shared.add_object(FigCircle(1, 1, 1))
        shared.delete_object(first)
        second = shared.add_object(FigCircle(2, 2, 2))
        assert second == first  # freed record block reused

    def test_editing_is_the_persistent_form(self, kernel, shell):
        """No explicit save step exists: mutate, reopen, see it."""
        from repro.bench.workloads import make_shell

        shared = SharedFigure(kernel, shell, "/shared/fig", create=True)
        address = shared.add_object(FigText(5, 6, "draft"))
        from repro.apps.xfig.shared import OBJ

        OBJ.view(shared.mem, address).set("p1", 50)  # move the text
        other = make_shell(kernel, "viewer")
        reopened = SharedFigure(kernel, other, "/shared/fig")
        text = reopened.to_figure().objects[0]
        assert text.x == 50

    def test_costs_favor_shared_load(self, kernel, shell):
        """'Loading' a figure from the segment must beat parsing ASCII."""
        figure = generate_figure(80, seed=6)
        save_figure_ascii(kernel, shell, figure, "/fig.txt")
        shared = SharedFigure(kernel, shell, "/shared/fig",
                              size=512 * 1024, create=True)
        shared.build_from(figure)

        start = kernel.clock.snapshot()
        load_figure_ascii(kernel, shell, "/fig.txt")
        ascii_cycles = kernel.clock.snapshot() - start

        start = kernel.clock.snapshot()
        count = SharedFigure(kernel, shell, "/shared/fig").count
        shared_cycles = kernel.clock.snapshot() - start
        assert count == 80
        assert shared_cycles < ascii_cycles
