"""Property tests tying the assembler, disassembler, and CPU together."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import isa
from repro.hw.asm import assemble
from repro.hw.cpu import Cpu, SyscallTrap
from repro.util.bits import to_signed32
from repro.vm.address_space import AddressSpace, PROT_RWX
from repro.vm.pages import PhysicalMemory

REG_NAMES = [n for n in isa.REG_NAMES
             if n not in ("zero", "k0", "k1", "gp", "sp", "fp", "ra",
                          "at")]

register = st.sampled_from(REG_NAMES)
imm16 = st.integers(min_value=-32768, max_value=32767)


class TestAssembleDisassemble:
    @settings(max_examples=60)
    @given(register, register, register,
           st.sampled_from(["add", "sub", "and", "or", "xor", "slt",
                            "sltu", "mul"]))
    def test_three_reg_roundtrip(self, rd, rs, rt, op):
        obj = assemble(f".text\n{op} {rd}, {rs}, {rt}")
        word = int.from_bytes(obj.text[:4], "little")
        assert isa.disassemble_word(word) == f"{op} {rd}, {rs}, {rt}"

    @settings(max_examples=60)
    @given(register, register, imm16,
           st.sampled_from(["lw", "sw", "lb", "lbu", "sb"]))
    def test_loadstore_roundtrip(self, rt, base, offset, op):
        obj = assemble(f".text\n{op} {rt}, {offset}({base})")
        word = int.from_bytes(obj.text[:4], "little")
        assert isa.disassemble_word(word) == f"{op} {rt}, {offset}({base})"

    @settings(max_examples=40)
    @given(register, register, st.integers(min_value=0, max_value=31),
           st.sampled_from(["sll", "srl", "sra"]))
    def test_shift_roundtrip(self, rd, rt, amount, op):
        obj = assemble(f".text\n{op} {rd}, {rt}, {amount}")
        word = int.from_bytes(obj.text[:4], "little")
        assert isa.disassemble_word(word) == f"{op} {rd}, {rt}, {amount}"


def _run_fragment(body: str, max_instructions: int = 200) -> Cpu:
    obj = assemble(f".text\n{body}\nsyscall\n")
    pm = PhysicalMemory()
    space = AddressSpace(pm)
    space.map(0x1000, 0x2000, prot=PROT_RWX)
    space.write_bytes(0x1000, bytes(obj.text))
    cpu = Cpu(space)
    cpu.pc = 0x1000
    with pytest.raises(SyscallTrap):
        cpu.run(max_instructions)
    return cpu


class TestCpuArithmeticProperties:
    @settings(max_examples=40)
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
           st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_add_matches_python(self, a, b):
        cpu = _run_fragment(f"li t0, {a}\nli t1, {b}\nadd t2, t0, t1")
        assert to_signed32(cpu.regs[10]) == to_signed32(a + b)

    @settings(max_examples=40)
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
           st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_slt_matches_python(self, a, b):
        cpu = _run_fragment(f"li t0, {a}\nli t1, {b}\nslt t2, t0, t1")
        assert cpu.regs[10] == (1 if a < b else 0)

    @settings(max_examples=40)
    @given(st.integers(min_value=-(2**20), max_value=2**20),
           st.integers(min_value=1, max_value=2**20))
    def test_div_rem_identity(self, a, b):
        cpu = _run_fragment(
            f"li t0, {a}\nli t1, {b}\n"
            f"div t2, t0, t1\nrem t3, t0, t1"
        )
        quotient = to_signed32(cpu.regs[10])
        remainder = to_signed32(cpu.regs[11])
        assert quotient * b + remainder == a
        assert abs(remainder) < b

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=31))
    def test_variable_shift_matches_immediate(self, value, amount):
        cpu = _run_fragment(
            f"li t0, {value}\nli t1, {amount}\n"
            f"sllv t2, t0, t1\nsll t3, t0, {amount}\n"
            f"srlv t4, t0, t1\nsrl t5, t0, {amount}"
        )
        assert cpu.regs[10] == cpu.regs[11]
        assert cpu.regs[12] == cpu.regs[13]

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=8))
    def test_stack_push_pop_order(self, values):
        pushes = "".join(
            f"li t0, {v}\naddi sp, sp, -4\nsw t0, 0(sp)\n"
            for v in values
        )
        pops = "".join(
            f"lw s{i}, 0(sp)\naddi sp, sp, 4\n"
            for i in range(min(len(values), 8))
        )
        body = "li sp, 0x2800\n" + pushes + pops
        cpu = _run_fragment(body, max_instructions=500)
        for i, value in enumerate(reversed(values[-8:])):
            assert to_signed32(cpu.regs[16 + i]) == value
