"""The public boot()/System facade and remaining process plumbing."""

import pytest

from repro import CostModel, SharingClass, StructDef, boot
from repro.bench.workloads import make_shell
from repro.sfs.addrmap import BTreeAddressMap
from repro.sfs.sfs64 import SharedFilesystem64
from repro.sfs.sharedfs import SharedFilesystem


class TestBoot:
    def test_default_configuration(self):
        system = boot()
        assert isinstance(system.kernel.sfs, SharedFilesystem)
        assert system.vfs is system.kernel.vfs
        assert system.sfs is system.kernel.sfs
        assert system.clock is system.kernel.clock
        assert system.kernel.on_exec is not None

    def test_custom_addrmap(self):
        system = boot(addrmap=BTreeAddressMap())
        assert isinstance(system.kernel.sfs.addrmap, BTreeAddressMap)

    def test_custom_costs(self):
        system = boot(costs=CostModel(syscall=1))
        assert system.clock.costs.syscall == 1

    def test_wide_addresses(self):
        system = boot(wide_addresses=True)
        assert isinstance(system.kernel.sfs, SharedFilesystem64)
        assert system.kernel.is_public_address(1 << 33)
        assert not system.kernel.is_public_address(0x4000_0000)

    def test_narrow_addresses(self):
        system = boot()
        assert system.kernel.is_public_address(0x4000_0000)
        assert not system.kernel.is_public_address(1 << 33)

    def test_machines_are_isolated(self):
        a = boot()
        b = boot()
        a.kernel.vfs.write_whole("/only-in-a", b"x")
        assert not b.kernel.vfs.exists("/only-in-a")

    def test_public_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
        assert SharingClass.DYNAMIC_PUBLIC  # re-exported and usable
        assert StructDef("t", [("a", "u32")]).size == 4


class TestProcessPlumbing:
    def test_fd_shared_offset_after_fork(self, kernel):
        """Parent and child share the open file description (offset)."""
        from repro.hw.asm import assemble
        from repro.linker.baseline_ld import link_static

        source = """
            .text
            .globl main
        main:
            la a0, path
            li a1, 0x41        # O_WRONLY|O_CREAT
            li a2, 0x1A4
            li v0, 4
            syscall
            move s0, v0
            li v0, 6           # fork
            syscall
            move s1, v0
            # both write 2 bytes through the SHARED description
            move a0, s0
            la a1, chunk
            li a2, 2
            li v0, 2
            syscall
            li v0, 1
            move a0, s1
            syscall
            .data
        path: .asciiz "/log"
        chunk: .asciiz "ab"
        """
        image = link_static([assemble(source, "m.o")])
        kernel.create_machine_process("p", image)
        kernel.schedule()
        # Two writes through one description: 4 bytes, not overlapping.
        assert kernel.vfs.stat("/log").st_size == 4

    def test_environment_inherited_by_fork(self, kernel):
        from repro.hw.asm import assemble
        from repro.linker.baseline_ld import link_static

        source = """
            .text
            .globl main
        main:
            li v0, 6
            syscall
            bnez v0, parent
            la a0, name
            la a1, buf
            li a2, 8
            li v0, 30          # getenv
            syscall
            la t0, buf
            lbu a0, 0(t0)
            li v0, 1
            syscall
        parent:
            li a0, 0
            li v0, 1
            syscall
            .data
        name: .asciiz "FLAVOR"
            .bss
        buf: .space 8
        """
        image = link_static([assemble(source, "m.o")])
        parent = kernel.create_machine_process("p", image,
                                               env={"FLAVOR": "X"})
        kernel.schedule()
        child = [p for p in kernel.processes.values()
                 if p.ppid == parent.pid][0]
        assert child.exit_code == ord("X")

    def test_stats_string(self, kernel):
        make_shell(kernel)
        text = kernel.stats()
        assert "processes=1" in text
        assert "cycles=" in text

    def test_runnable_excludes_zombies(self, kernel):
        proc = make_shell(kernel)
        assert proc in kernel.runnable()
        kernel.run_until_exit(proc)
        assert proc not in kernel.runnable()
