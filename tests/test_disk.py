"""repro.disk: the durable block store, journal, recovery, and fsck.

The acceptance heart is :class:`TestCrashMatrix`: a scripted workload
of 50+ journaled metadata operations is crashed at *every* journal
record boundary; every surviving image must pass ``reprofsck`` with
zero findings, remount, and reopen every public segment by address —
and a second identically-seeded run must recover bit-identically.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.disk import (
    BlockDevice,
    fsck,
    run_crash_point,
    run_crash_matrix,
    scripted_workload,
    verify_segments,
)
from repro.disk.blockdev import BLOCK_SIZE
from repro.disk.codec import encode_fields
from repro.disk.crash import run_baseline
from repro.disk.fsck import _check_addrmap, _check_sfs, _check_tree, \
    _scratch_volume
from repro.disk.image import serialize_volume
from repro.disk.journal import REC_OP, scan_journal
from repro.disk.mount import compute_geometry, read_superblock
from repro.analyze.report import Report
from repro.errors import (
    DiskCrashedError,
    DiskError,
    DiskFormatError,
    FileExistsSimError,
    FileNotFoundSimError,
    SimulationError,
)


def mount(device):
    return repro.boot(disk=device)


def tree_digest(kernel) -> str:
    """A canonical rendering of both volumes' durable state."""
    return repr([serialize_volume(kernel.vfs.filesystem_at("/")),
                 serialize_volume(kernel.sfs)])


# ---------------------------------------------------------------------------
# the block device
# ---------------------------------------------------------------------------


class TestBlockDevice:
    def test_write_read_and_zero_default(self):
        device = BlockDevice(nblocks=64, seed=1)
        assert device.read(7) == b"\0" * BLOCK_SIZE
        device.write(7, b"hello")
        assert device.read(7).startswith(b"hello\0")

    def test_out_of_range_rejected(self):
        device = BlockDevice(nblocks=64)
        with pytest.raises(DiskError):
            device.read(64)
        with pytest.raises(DiskError):
            device.write(-1, b"")

    def test_barrier_makes_pending_durable(self):
        device = BlockDevice(nblocks=64, seed=1, window=8)
        device.write(3, b"volatile")
        assert device.reopen().read(3).startswith(b"volatile")  # handover
        device2 = BlockDevice(nblocks=64, seed=1, window=8)
        device2.write(3, b"volatile")
        device2.crash()  # window resolves under the seed
        device2.write(4, b"after death")
        assert device2.dropped_writes >= 1
        assert device2.reopen().read(4) == b"\0" * BLOCK_SIZE

    def test_crash_is_seed_deterministic(self):
        def run(seed):
            device = BlockDevice(nblocks=64, seed=seed, window=16)
            for index in range(10):
                device.write(index, bytes([index + 1]) * 32)
            device.crash()
            return [device.read(index) for index in range(10)]

        assert run(7) == run(7)
        # With 10 pending writes at p=0.5 each, seeds differ somewhere.
        assert any(run(7)[i] != run(8)[i] for i in range(10))

    def test_crashed_device_refuses_mount(self):
        device = BlockDevice(nblocks=64)
        device.crash()
        with pytest.raises(DiskCrashedError):
            device.require_alive()

    def test_save_load_round_trip(self, tmp_path):
        device = BlockDevice(nblocks=64, seed=3)
        device.write(5, b"persisted")
        device.barrier()
        path = str(tmp_path / "image.hdsk")
        device.save(path)
        loaded = BlockDevice.load(path)
        assert loaded.nblocks == 64
        assert loaded.read(5).startswith(b"persisted")

    def test_load_rejects_garbage(self, tmp_path):
        path = str(tmp_path / "bad.hdsk")
        with open(path, "wb") as handle:
            handle.write(b"not a device image at all")
        with pytest.raises(DiskError):
            BlockDevice.load(path)

    def test_state_after_requires_history(self):
        plain = BlockDevice(nblocks=64)
        with pytest.raises(DiskError):
            plain.state_after(0)
        recording = BlockDevice(nblocks=64, record_history=True)
        recording.write(2, b"first")
        recording.write(2, b"second")
        assert recording.state_after(1).read(2).startswith(b"first")
        assert recording.state_after(2).read(2).startswith(b"second")


# ---------------------------------------------------------------------------
# journal scan: commit prefixes, torn tails, stale generations
# ---------------------------------------------------------------------------


class TestJournalScan:
    def _armed(self, nblocks=256, seed=2):
        device = BlockDevice(nblocks=nblocks, seed=seed)
        system = mount(device)
        return device, system

    def _geometry(self, device):
        return compute_geometry(device.nblocks)

    def test_committed_transactions_scan_in_order(self):
        device, system = self._armed()
        system.vfs.mkdir("/shared/a")
        system.vfs.mkdir("/shared/b")
        store = system.kernel.disk
        geo = self._geometry(device)
        scan = scan_journal(device.reopen(), geo.journal_start,
                           geo.journal_blocks, store.generation)
        assert [op for _txid, ops in scan.committed
                for _vol, op, _args in ops] == ["mkdir", "mkdir"]
        txids = [txid for txid, _ops in scan.committed]
        assert txids == sorted(txids)
        assert not scan.malformed and not scan.discarded_records

    def test_torn_tail_is_discarded_not_damage(self):
        device, system = self._armed()
        system.vfs.mkdir("/shared/a")
        journal = system.kernel.disk.journal
        # Hand-write a BEGIN+OP with no COMMIT: an interrupted txn.
        journal._write_record(1, 999, b"", "torn")
        journal._write_record(
            REC_OP, 999,
            encode_fields(["sfs", "mkdir", 2, "ghost", 0, 0o755, 77]),
            "torn")
        device.barrier()
        geo = self._geometry(device)
        scan = scan_journal(device.reopen(), geo.journal_start,
                           geo.journal_blocks,
                           system.kernel.disk.generation, deep=True)
        assert scan.discarded_records == 2
        assert scan.uncommitted_txid == 999
        assert not scan.mid_corruption
        # The committed prefix is unaffected.
        assert any(op == "mkdir" and args[1] == "a"
                   for _t, ops in scan.committed
                   for _v, op, args in ops)

    def test_stale_generation_ignored_after_checkpoint(self):
        device, system = self._armed()
        system.vfs.mkdir("/shared/old")
        generation = system.kernel.disk.generation
        system.kernel.sync()  # checkpoint: bumps the generation
        assert system.kernel.disk.generation == generation + 1
        geo = self._geometry(device)
        scan = scan_journal(device.reopen(), geo.journal_start,
                           geo.journal_blocks,
                           system.kernel.disk.generation)
        assert scan.records == []  # old-gen records are stale, not read

    def test_mid_stream_corruption_detected_by_deep_scan(self):
        device, system = self._armed()
        for index in range(4):
            system.vfs.mkdir(f"/shared/d{index}")
        system.kernel.crash()
        survivor = device.reopen()
        geo = self._geometry(device)
        # Zap the first record block: the scan now tears at record 0,
        # but valid records remain beyond it.
        survivor._blocks[geo.journal_start] = b"\xde\xad" * 256
        scan = scan_journal(survivor, geo.journal_start,
                           geo.journal_blocks,
                           system.kernel.disk.generation, deep=True)
        assert scan.committed == []
        assert scan.mid_corruption


# ---------------------------------------------------------------------------
# mount / recovery round trips
# ---------------------------------------------------------------------------


class TestMountRoundTrip:
    def test_clean_shutdown_and_remount(self):
        device = BlockDevice(nblocks=2048, seed=5)
        system = mount(device)
        system.vfs.makedirs("/shared/deep/dir")
        system.vfs.write_whole("/shared/deep/dir/seg", b"abc" * 100)
        system.vfs.symlink("deep/dir/seg", "/shared/alias")
        system.vfs.makedirs("/work")
        system.vfs.write_whole("/work/notes", b"root volume too")
        system.kernel.shutdown()

        system2 = mount(device.reopen())
        assert system2.vfs.read_whole("/shared/deep/dir/seg") \
            == b"abc" * 100
        assert system2.vfs.read_whole("/shared/alias") == b"abc" * 100
        assert system2.vfs.read_whole("/work/notes") == b"root volume too"
        recovery = system2.kernel.recovery
        assert recovery.clean
        assert recovery.replayed_txns == 0
        assert verify_segments(system2.kernel) == []

    def test_crash_recovery_replays_the_journal(self):
        device = BlockDevice(nblocks=2048, seed=5)
        system = mount(device)
        system.vfs.write_whole("/shared/seg", b"committed")
        system.vfs.mkdir("/shared/dir")
        system.vfs.rename("/shared/seg", "/shared/dir/seg")
        system.kernel.crash()  # no checkpoint: only the journal survives

        system2 = mount(device.reopen())
        recovery = system2.kernel.recovery
        assert not recovery.clean
        assert recovery.replayed_txns >= 3
        assert system2.vfs.read_whole("/shared/dir/seg") == b"committed"
        assert not system2.vfs.exists("/shared/seg")
        assert "recovered_txns=" in system2.kernel.stats()

    def test_replay_is_idempotent(self):
        device = BlockDevice(nblocks=2048, seed=5)
        system = mount(device)
        for index in range(8):
            system.vfs.write_whole(f"/shared/seg{index}",
                                   bytes([index]) * 64)
        system.kernel.crash()

        survivor = device.reopen()
        first = mount(survivor)
        digest = tree_digest(first.kernel)
        assert first.kernel.recovery.replayed_txns > 0
        first.kernel.shutdown()

        second = mount(survivor.reopen())
        assert second.kernel.recovery.replayed_txns == 0
        assert tree_digest(second.kernel) == digest

    def test_segments_reopen_by_address_across_reboot(self):
        device = BlockDevice(nblocks=2048, seed=5)
        system = mount(device)
        system.vfs.write_whole("/shared/one", b"first segment")
        system.vfs.write_whole("/shared/two", b"second segment")
        address = system.kernel.sfs.address_of_inode(
            system.vfs.resolve("/shared/one")[1].number)
        system.kernel.crash()

        system2 = mount(device.reopen())
        assert verify_segments(system2.kernel) == []
        inode, offset = system2.kernel.sfs.inode_of_address(address)
        assert offset == 0
        assert inode.memobj.read(0, inode.size) == b"first segment"

    def test_journal_full_triggers_checkpoint(self):
        device = BlockDevice(nblocks=256, seed=9)  # tiny journal region
        system = mount(device)
        generation = system.kernel.disk.generation
        for index in range(60):
            system.vfs.write_whole(f"/shared/f{index}", b"x" * 700)
            system.vfs.unlink(f"/shared/f{index}")
        system.vfs.write_whole("/shared/last", b"still here")
        assert system.kernel.disk.generation > generation  # checkpointed
        system.kernel.crash()
        system2 = mount(device.reopen())
        assert system2.vfs.read_whole("/shared/last") == b"still here"
        assert fsck(device.reopen()).report.codes() == []

    def test_mapped_store_mutations_persist_via_checkpoint(self):
        """Page-level writes through mapped segments bypass the journal
        (the paper's segments are mapped, not written through a file
        API) — sync() makes them durable wholesale."""
        device = BlockDevice(nblocks=2048, seed=5)
        system = mount(device)
        system.vfs.write_whole("/shared/seg", b"AAAA")
        _fs, inode = system.vfs.resolve("/shared/seg")
        inode.memobj.write(0, b"BBBB")  # a mapped-page store
        system.kernel.sync()
        system.kernel.crash()
        system2 = mount(device.reopen())
        assert system2.vfs.read_whole("/shared/seg") == b"BBBB"

    def test_blank_too_small_device_rejected(self):
        with pytest.raises(DiskError):
            mount(BlockDevice(nblocks=16))

    def test_structurally_damaged_journal_refuses_mount(self):
        device = BlockDevice(nblocks=2048, seed=5)
        system = mount(device)
        journal = system.kernel.disk.journal
        # An OP record with no BEGIN: structural damage, not a tear.
        journal._write_record(
            REC_OP, 424242,
            encode_fields(["sfs", "unlink", 0, "ghost"]), "damage")
        device.barrier()
        system.kernel.crash()
        with pytest.raises(DiskFormatError):
            mount(device.reopen())


# ---------------------------------------------------------------------------
# rename atomicity under the journal
# ---------------------------------------------------------------------------


def _rename_overwrite_workload(kernel) -> None:
    vfs = kernel.vfs
    vfs.write_whole("/shared/src", b"NEW CONTENT")
    vfs.write_whole("/shared/dst", b"old content")
    vfs.rename("/shared/src", "/shared/dst")


class TestRenameAtomicity:
    def test_rename_is_one_record_even_over_existing_dest(self):
        device = BlockDevice(nblocks=2048, seed=4)
        system = mount(device)
        _rename_overwrite_workload(system.kernel)
        geo = compute_geometry(device.nblocks)
        system.kernel.crash()
        scan = scan_journal(device.reopen(), geo.journal_start,
                           geo.journal_blocks,
                           system.kernel.disk.generation)
        ops = [op for _txid, txn_ops in scan.committed
               for _vol, op, _args in txn_ops]
        # The implicit unlink of the existing destination emits no
        # record of its own: exactly one RENAME (no bare "unlink").
        assert ops.count("rename") == 1
        assert "unlink" not in ops

    def test_crash_never_leaves_both_or_neither(self):
        """The destination-exists-overwrite regression: at every crash
        point, dst exists with exactly one of the two contents, and src
        is present iff dst still has the old content."""
        _device, total = run_baseline(
            seed=31, workload=_rename_overwrite_workload)
        for record in range(1, total + 1):
            point_device = BlockDevice(nblocks=2048, seed=31)
            from repro.inject import (
                FaultKind,
                FaultPlan,
                Plane,
                cancel_injection,
                request_injection,
            )
            request_injection(
                [FaultPlan(Plane.DISK, FaultKind.CRASH,
                           site="journal-*", after=record - 1,
                           max_faults=1)], seed=31)
            try:
                system = mount(point_device)
                try:
                    _rename_overwrite_workload(system.kernel)
                except SimulationError:
                    pass
                system.kernel.shutdown()
            finally:
                cancel_injection()
            check = fsck(point_device.reopen(), subject=f"rename@{record}")
            assert len(check.report) == 0, \
                f"record {record}: {check.report.render()}"
            after = mount(point_device.reopen())
            vfs = after.vfs
            state = (
                vfs.read_whole("/shared/src")
                if vfs.exists("/shared/src") else None,
                vfs.read_whole("/shared/dst")
                if vfs.exists("/shared/dst") else None,
            )
            # Exactly the committed-prefix states of the workload —
            # crucially NOT ("NEW CONTENT", "NEW CONTENT") [rename left
            # the entry in both directories] and NOT (None, "old
            # content"-less-src) [entry in neither].
            assert state in (
                (None, None),                          # nothing yet
                (b"", None),                           # src created
                (b"NEW CONTENT", None),                # src written
                (b"NEW CONTENT", b""),                 # dst created
                (b"NEW CONTENT", b"old content"),      # dst written
                (None, b"NEW CONTENT"),                # renamed
            ), f"record {record}: inconsistent state {state}"


# ---------------------------------------------------------------------------
# the crash matrix: the tentpole acceptance test
# ---------------------------------------------------------------------------


class TestCrashMatrix:
    def test_workload_is_big_enough(self):
        device = BlockDevice(nblocks=2048, seed=0x1993)
        system = mount(device)
        scripted_workload(system.kernel)
        # The acceptance floor: 50+ journaled metadata operations.
        assert system.kernel.disk.journal.txns_committed >= 50
        system.kernel.shutdown()

    def test_every_record_boundary_recovers(self):
        matrix = run_crash_matrix()
        assert matrix.total_records >= 150
        assert len(matrix.points) == matrix.total_records
        assert all(point.crashed for point in matrix.points)
        assert matrix.clean, "\n".join(matrix.failures()[:10])
        # Earlier crashes never recover more than later ones.
        replayed = [point.replayed_txns for point in matrix.points]
        assert replayed == sorted(replayed)

    def test_recovery_is_bit_identical_per_seed(self):
        for record in (1, 2, 57, 128):
            first = run_crash_point(record)
            again = run_crash_point(record)
            assert first.trail == again.trail, f"record {record} drifted"
            assert first.replayed_txns == again.replayed_txns
            assert first.segments == again.segments


# ---------------------------------------------------------------------------
# fsck: stable DSK findings on genuinely damaged images
# ---------------------------------------------------------------------------


def _crashed_image(seed=6) -> BlockDevice:
    device = BlockDevice(nblocks=2048, seed=seed)
    system = mount(device)
    system.vfs.write_whole("/shared/seg", b"payload")
    system.vfs.mkdir("/shared/dir")
    system.kernel.crash()
    return device.reopen()


class TestFsckFindings:
    def test_blank_device_has_no_superblock(self):
        result = fsck(BlockDevice(nblocks=64))
        assert result.report.codes() == ["DSK001"]

    def test_backup_superblock_is_a_warning(self):
        device = _crashed_image()
        device._blocks[0] = b"\xff" * BLOCK_SIZE
        result = fsck(device)
        assert "DSK002" in result.report.codes()

    def test_both_superblocks_gone(self):
        device = _crashed_image()
        device._blocks[0] = b"\xff" * BLOCK_SIZE
        device._blocks[device.nblocks - 1] = b"\xff" * BLOCK_SIZE
        result = fsck(device)
        assert result.report.codes() == ["DSK001"]

    def test_corrupt_checkpoint_blob(self):
        device = _crashed_image()
        fields = read_superblock(device, 0)
        slot = fields["slot_a"] if fields["active_slot"] == 0 \
            else fields["slot_b"]
        block = bytearray(device._read_durable(slot))
        block[10] ^= 0xFF
        device._blocks[slot] = bytes(block)
        result = fsck(device)
        assert "DSK003" in result.report.codes()

    def test_mid_journal_corruption_is_dsk004(self):
        device = _crashed_image()
        fields = read_superblock(device, 0)
        device._blocks[fields["journal_start"]] = b"\x00" * BLOCK_SIZE
        result = fsck(device)
        assert "DSK004" in result.report.codes()

    def test_op_outside_transaction_is_dsk005(self):
        device = BlockDevice(nblocks=2048, seed=6)
        system = mount(device)
        journal = system.kernel.disk.journal
        journal._write_record(
            REC_OP, 515151,
            encode_fields(["sfs", "unlink", 0, "ghost"]), "damage")
        device.barrier()
        system.kernel.crash()
        result = fsck(device.reopen())
        assert "DSK005" in result.report.codes()

    def test_unreplayable_transaction_is_dsk006(self):
        device = BlockDevice(nblocks=2048, seed=6)
        system = mount(device)
        root_fs = system.vfs.filesystem_at("/")
        with root_fs.journal.transaction():
            root_fs.journal.log("root", "unlink", [424242, "ghost"])
        system.kernel.crash()
        result = fsck(device.reopen())
        assert "DSK006" in result.report.codes()

    def test_healthy_crash_image_is_clean(self):
        result = fsck(_crashed_image())
        assert len(result.report) == 0
        assert result.stats.segments == 1
        result.raise_if_findings()  # does not raise


class TestDskTreeChecks:
    """The tree/SFS invariant checkers, driven on scratch volumes."""

    def _report(self):
        return Report(subject="scratch")

    def test_dangling_dirent_dsk010(self):
        fs = _scratch_volume("fs", "t")
        inode = fs.create_file(fs.root, "file", 0)
        del fs._inodes[inode.number]
        report = self._report()
        _check_tree(report, fs)
        assert "DSK010" in report.codes()

    def test_bad_nlink_dsk011(self):
        fs = _scratch_volume("fs", "t")
        fs.create_file(fs.root, "file", 0).nlink = 7
        report = self._report()
        _check_tree(report, fs)
        assert "DSK011" in report.codes()

    def test_orphan_inode_dsk012(self):
        fs = _scratch_volume("fs", "t")
        inode = fs.create_file(fs.root, "file", 0)
        del fs.root.entries["file"]
        inode.nlink = 0
        report = self._report()
        _check_tree(report, fs)
        assert "DSK012" in report.codes()

    def test_empty_symlink_dsk013(self):
        fs = _scratch_volume("fs", "t")
        fs.symlink(fs.root, "link", "target", 0).symlink_target = ""
        report = self._report()
        _check_tree(report, fs)
        assert "DSK013" in report.codes()

    def test_sfs_limit_violation_dsk020(self):
        from repro.sfs.sharedfs import MAX_FILE_SIZE

        sfs = _scratch_volume("sfs", "t")
        inode = sfs.create_file(sfs.root, "seg", 0)
        # Grow the backing object past the limit directly, bypassing
        # the write-path check — at-rest damage only fsck can see.
        inode.memobj.write(0, b"x" * (MAX_FILE_SIZE + 1))
        report = self._report()
        _check_sfs(report, sfs, fsck(BlockDevice(nblocks=64)).stats)
        assert "DSK020" in report.codes()

    def test_addrmap_cross_checks_dsk021_022_023(self):
        sfs = _scratch_volume("sfs", "t")
        inode = sfs.create_file(sfs.root, "seg", 0)
        base = sfs.address_of_inode(inode.number)

        report = self._report()  # entry names a nonexistent inode
        _check_addrmap(report, sfs, [(base, 64, inode.number + 500)])
        assert "DSK021" in report.codes()

        report = self._report()  # inode with no map entry
        _check_addrmap(report, sfs, [])
        assert "DSK022" in report.codes()

        report = self._report()  # entry at the wrong address
        _check_addrmap(report, sfs, [(base + 0x100000, 64,
                                      inode.number)])
        assert "DSK023" in report.codes()

    def test_overlapping_segments_dsk024(self):
        sfs = _scratch_volume("sfs", "t")
        first = sfs.create_file(sfs.root, "a", 0)
        sfs.create_file(sfs.root, "b", 0)
        first.segment_span = 1 << 24  # spills into the next slot
        report = self._report()
        _check_sfs(report, sfs, fsck(BlockDevice(nblocks=64)).stats)
        assert "DSK024" in report.codes()


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------


_NAMES = ("a", "b", "c")


@st.composite
def op_sequences(draw):
    """Short random metadata workloads over a tiny namespace."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        kind = draw(st.sampled_from(
            ("write", "mkdir", "rename", "unlink", "symlink")))
        ops.append((kind, draw(st.sampled_from(_NAMES)),
                    draw(st.sampled_from(_NAMES)),
                    draw(st.integers(min_value=0, max_value=200))))
    return ops


def _apply_ops(kernel, ops):
    vfs = kernel.vfs
    for kind, name, other, size in ops:
        try:
            if kind == "write":
                vfs.write_whole(f"/shared/{name}", bytes([65]) * size)
            elif kind == "mkdir":
                vfs.mkdir(f"/shared/dir-{name}")
            elif kind == "rename":
                vfs.rename(f"/shared/{name}", f"/shared/{other}")
            elif kind == "unlink":
                vfs.unlink(f"/shared/{name}")
            elif kind == "symlink":
                vfs.symlink(name, f"/shared/link-{name}")
        except (FileNotFoundSimError, FileExistsSimError,
                SimulationError):
            pass  # invalid sequences abort the txn; that's the point


class TestRecoveryProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=op_sequences(), seed=st.integers(min_value=0,
                                                max_value=2 ** 16))
    def test_replay_is_idempotent(self, ops, seed):
        """Mounting a crashed image twice replays the journal once:
        the second mount finds everything in the checkpoint."""
        device = BlockDevice(nblocks=2048, seed=seed)
        system = mount(device)
        _apply_ops(system.kernel, ops)
        system.kernel.crash()

        survivor = device.reopen()
        first = mount(survivor)
        digest = tree_digest(first.kernel)
        first.kernel.shutdown()
        second = mount(survivor.reopen())
        assert second.kernel.recovery.replayed_txns == 0
        assert tree_digest(second.kernel) == digest

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=op_sequences(), seed=st.integers(min_value=0,
                                                max_value=2 ** 16),
           cut=st.floats(min_value=0.0, max_value=1.0))
    def test_crash_prefix_recovers_to_committed_state(self, ops, seed,
                                                      cut):
        """Every write-prefix of the device history recovers to exactly
        the tree as it stood after some committed transaction."""
        device = BlockDevice(nblocks=2048, seed=seed,
                             record_history=True)
        system = mount(device)
        kernel = system.kernel
        baseline_writes = len(device.history)

        snapshots = [tree_digest(kernel)]
        journal = kernel.disk.journal
        original_commit = journal._commit

        def commit_and_snapshot(txn_ops):
            original_commit(txn_ops)
            snapshots.append(tree_digest(kernel))

        journal._commit = commit_and_snapshot
        _apply_ops(kernel, ops)
        journal._commit = original_commit

        total = len(device.history)
        prefix = baseline_writes + int(
            (total - baseline_writes) * cut)
        survivor = device.state_after(prefix)
        check = fsck(survivor, subject=f"prefix@{prefix}")
        assert len(check.report) == 0, check.report.render()
        recovered = mount(survivor)
        assert tree_digest(recovered.kernel) in snapshots
        assert verify_segments(recovered.kernel) == []


# ---------------------------------------------------------------------------
# the ino→path index (the O(n) reverse-lookup fix)
# ---------------------------------------------------------------------------


class TestPathIndex:
    def _count_walks(self, fs):
        calls = []
        original = fs.walk

        def counting_walk(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        fs.walk = counting_walk
        return calls

    def test_sfs_reverse_lookup_never_walks(self, system):
        kernel = system.kernel
        for index in range(20):
            kernel.vfs.write_whole(f"/shared/seg{index}", b"x")
        kernel.vfs.mkdir("/shared/sub")
        kernel.vfs.rename("/shared/seg0", "/shared/sub/moved")
        sfs = kernel.sfs
        segments = sfs.segments()  # the listing itself walks; that's fine
        calls = self._count_walks(sfs)
        for _path, inode in segments:
            assert sfs.path_of_inode(inode.number)
        assert sfs.path_of_inode(
            kernel.vfs.resolve("/shared/sub/moved")[1].number) == "/sub/moved"
        assert calls == [], "path_of_inode walked the volume"

    def test_directory_move_shifts_descendants(self, system):
        vfs = system.vfs
        vfs.makedirs("/shared/top/mid")
        vfs.write_whole("/shared/top/mid/leaf", b"x")
        vfs.mkdir("/shared/elsewhere")
        vfs.rename("/shared/top", "/shared/elsewhere/top")
        sfs = system.kernel.sfs
        inode = system.vfs.resolve("/shared/elsewhere/top/mid/leaf")[1]
        calls = self._count_walks(sfs)
        assert sfs.path_of_inode(inode.number) == "/elsewhere/top/mid/leaf"
        assert calls == []

    def test_index_survives_recovery(self):
        device = BlockDevice(nblocks=2048, seed=12)
        system = mount(device)
        system.vfs.makedirs("/shared/d")
        system.vfs.write_whole("/shared/d/seg", b"x")
        system.kernel.crash()
        system2 = mount(device.reopen())
        sfs = system2.kernel.sfs
        inode = system2.vfs.resolve("/shared/d/seg")[1]
        calls = self._count_walks(sfs)
        assert sfs.path_of_inode(inode.number) == "/d/seg"
        assert calls == []

    def test_root_volume_still_walks_for_hard_links(self, system):
        """Hard links give a root-volume inode several paths, so the
        index stays off there and the walk fallback answers."""
        vfs = system.vfs
        vfs.makedirs("/data")
        vfs.write_whole("/data/original", b"x")
        vfs.link("/data/original", "/data/alias")
        root_fs = vfs.filesystem_at("/")
        inode = vfs.resolve("/data/original")[1]
        assert root_fs.path_of_inode(inode.number) \
            in ("/data/original", "/data/alias")

    def test_unlink_drops_the_index_entry(self, system):
        system.vfs.write_whole("/shared/gone", b"x")
        sfs = system.kernel.sfs
        ino = system.vfs.resolve("/shared/gone")[1].number
        system.vfs.unlink("/shared/gone")
        with pytest.raises(FileNotFoundSimError):
            sfs.path_of_inode(ino)
