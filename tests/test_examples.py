"""Every example script must run to completion (they self-assert).

The examples double as living documentation; running them here keeps
them from rotting.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3
