"""Failure injection: corrupted files, races, and abuse must be
contained — processes may die, the kernel may not.

Transfer-time damage (corrupt reads, short reads, I/O errors, failing
or vanishing module lookups) is driven through the :mod:`repro.inject`
planes, parametrized over plane x fault kind x sharing class. Blob
surgery survives only where no plane exists: damage to bytes *at rest*
(a truncated file on the volume).
"""

import pytest

from repro.errors import (
    InjectedFaultError,
    ObjectFormatError,
    SimulationError,
)
from repro.hw.asm import assemble
from repro.inject import (
    FaultKind,
    FaultPlan,
    Plane,
    install_injector,
    remove_injector,
)
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.linker.segments import read_segment_meta
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem
from repro.toyc import compile_source


def put_c(kernel, shell, path, source):
    store_object(kernel, shell, path,
                 compile_source(source, path.rsplit("/", 1)[-1]))


def build_module_exe(system, shell, sharing):
    """main uses `cell` from module m, loaded with *sharing* class."""
    kernel = system.kernel
    kernel.vfs.makedirs("/shared/lib")
    put_c(kernel, shell, "/shared/lib/m.o", "int cell = 1;")
    put_c(kernel, shell, "/main.o",
          "extern int cell;\nint main() { return cell; }")
    return system.lds.link(
        shell,
        [LinkRequest("/main.o"), LinkRequest("m.o", sharing)],
        output="/bin", search_dirs=["/shared/lib"],
    ).executable


#: plane x fault kind (with the site each kind hits).
FAULT_MATRIX = [
    pytest.param(Plane.IO, FaultKind.CORRUPT, "read",
                 id="io-corrupt"),
    pytest.param(Plane.IO, FaultKind.SHORT_READ, "read",
                 id="io-short-read"),
    pytest.param(Plane.IO, FaultKind.ERROR, "read",
                 id="io-error"),
    pytest.param(Plane.LINKER, FaultKind.ERROR, "*",
                 id="linker-error"),
    pytest.param(Plane.LINKER, FaultKind.MISSING, "*",
                 id="linker-missing"),
]

SHARING_CLASSES = [
    pytest.param(SharingClass.DYNAMIC_PUBLIC, id="dynamic-public"),
    pytest.param(SharingClass.DYNAMIC_PRIVATE, id="dynamic-private"),
]


class TestInjectedCorruptionMatrix:
    """The corrupt-segment matrix, driven through the planes."""

    @pytest.mark.parametrize("plane,kind,site", FAULT_MATRIX)
    @pytest.mark.parametrize("sharing", SHARING_CLASSES)
    def test_fault_is_contained(self, system, shell, plane, kind, site,
                                sharing):
        kernel = system.kernel
        exe = build_module_exe(system, shell, sharing)
        plan = FaultPlan(plane, kind, match="/shared/lib/*", site=site)
        injector = install_injector(kernel, [plan], seed=11)

        # The victim may die at exec (typed error) or at run time
        # (SIGSEGV) — both are containment; a host-level crash is not.
        try:
            proc = kernel.create_machine_process("victim", exe)
            kernel.run_until_exit(proc)
            assert not proc.alive
        except SimulationError:
            pass

        assert injector.stats.triggered >= 1, \
            f"the {plane.value}:{kind.value} plane never fired"
        assert "injected=" in kernel.stats()
        remove_injector(kernel)

        # The kernel survived: a clean successor works end-to-end.
        # (Drop any module instance the faulting run may have created
        # from damaged template bytes; the template at rest is intact.)
        try:
            kernel.syscalls.unlink(shell, "/shared/lib/m")
        except SimulationError:
            pass
        clean = kernel.create_machine_process("clean", exe)
        kernel.run_until_exit(clean)
        assert clean.exit_code == 1

    def test_corrupt_metadata_read_rejected(self, system, shell):
        """Transfer-time damage to a mapped module's metadata surfaces
        as a typed parse error (the plane-driven replacement for the
        old trash-the-blob surgery)."""
        kernel = system.kernel
        exe = build_module_exe(system, shell,
                               SharingClass.DYNAMIC_PUBLIC)
        p0 = kernel.create_machine_process("p0", exe)
        kernel.run_until_exit(p0)
        install_injector(
            kernel,
            [FaultPlan(Plane.IO, FaultKind.CORRUPT,
                       match="/shared/lib/m", site="read")],
            seed=2,
        )
        with pytest.raises(SimulationError):
            read_segment_meta(kernel, shell, "/shared/lib/m")

    def test_short_template_read_fails_cleanly(self, system, shell):
        """A short read of a template is a malformed object, not a
        crash — the plane-driven truncation case."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        put_c(kernel, shell, "/shared/lib/t.o", "int x = 3;")
        put_c(kernel, shell, "/main.o", "int main() { return 0; }")
        install_injector(
            kernel,
            [FaultPlan(Plane.IO, FaultKind.SHORT_READ,
                       match="/shared/lib/t.o", site="read")],
            seed=4,
        )
        with pytest.raises((ObjectFormatError, InjectedFaultError)):
            system.lds.link(
                shell,
                [LinkRequest("/main.o"),
                 LinkRequest("t.o", SharingClass.STATIC_PUBLIC)],
                output="/bin", search_dirs=["/shared/lib"],
            )
        remove_injector(kernel)


#: DISK-plane fault kinds driven against the durable store's write path.
DISK_FAULTS = [
    pytest.param(FaultKind.TORN_WRITE, id="disk-torn-write"),
    pytest.param(FaultKind.DROP, id="disk-drop"),
    pytest.param(FaultKind.CORRUPT, id="disk-corrupt-write"),
    pytest.param(FaultKind.CRASH, id="disk-crash-write"),
]


class TestDiskPlaneContainment:
    """Faults against the durable block store: the machine may lose
    data (that is the experiment), but damage must surface as typed
    errors or stable fsck findings — never a host-level crash."""

    def _durable_workload(self, system):
        for index in range(12):
            system.vfs.write_whole(f"/shared/seg{index}",
                                   bytes([index]) * 96)
        system.vfs.mkdir("/shared/dir")
        system.vfs.rename("/shared/seg0", "/shared/dir/moved")

    @pytest.mark.parametrize("kind", DISK_FAULTS)
    def test_write_fault_is_contained(self, kind):
        import repro
        from repro.disk import BlockDevice, fsck

        device = BlockDevice(nblocks=2048, seed=21)
        system = repro.boot(disk=device)
        kernel = system.kernel
        plan = FaultPlan(Plane.DISK, kind, site="block-write",
                         probability=0.05, max_faults=3)
        injector = install_injector(kernel, [plan], seed=33)
        try:
            self._durable_workload(system)
        except SimulationError:
            pass  # typed channel: contained
        assert injector.stats.triggered >= 1, \
            f"the disk:{kind.value} plane never fired"
        remove_injector(kernel)
        if not device.crashed:
            kernel.shutdown()
        # The surviving image is inspectable and remountable — or
        # refuses the mount through the typed DiskFormatError channel.
        survivor = device.reopen()
        fsck(survivor)  # must not raise
        try:
            again = repro.boot(disk=survivor.reopen())
            assert "cycles=" in again.kernel.stats()
        except SimulationError:
            pass  # damaged beyond mounting: still the typed channel

    def test_read_bit_rot_during_recovery_is_contained(self):
        import repro
        from repro.disk import BlockDevice
        from repro.inject import cancel_injection, request_injection

        device = BlockDevice(nblocks=2048, seed=22)
        system = repro.boot(disk=device)
        self._durable_workload(system)
        system.kernel.crash()

        survivor = device.reopen()
        request_injection(
            [FaultPlan(Plane.DISK, FaultKind.CORRUPT,
                       site="block-read", probability=0.1,
                       max_faults=5)], seed=7)
        try:
            try:
                recovered = repro.boot(disk=survivor)
                assert "cycles=" in recovered.kernel.stats()
            except SimulationError:
                pass  # rot in a structural block: typed refusal
        finally:
            cancel_injection()


class TestAtRestCorruption:
    """Damage to bytes already on the volume — no transfer happens, so
    no plane exists; surgery on the stored blob stays the right tool."""

    def test_truncated_trailer(self, system, shell):
        exe = build_module_exe(system, shell,
                               SharingClass.DYNAMIC_PUBLIC)
        kernel = system.kernel
        # Create the module, then chop its tail off.
        p0 = kernel.create_machine_process("p0", exe)
        kernel.run_until_exit(p0)
        blob = kernel.vfs.read_whole("/shared/lib/m")
        kernel.vfs.write_whole("/shared/lib/m", blob[:-8])
        with pytest.raises(ObjectFormatError):
            read_segment_meta(kernel, shell, "/shared/lib/m")
        # A new process exec fails cleanly (the module is unusable) but
        # the kernel survives.
        with pytest.raises(SimulationError):
            kernel.create_machine_process("p1", exe)
        assert kernel.stats()


class TestUnlinkWhileMapped:
    def test_mapped_pages_survive_unlink(self, kernel, shell):
        """Unix semantics: an unlinked-but-mapped segment's pages stay
        valid for the mapper; the address slot is recycled only after
        the mapping notion is process-local anyway."""
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/doomed", 4096)
        mem = Mem(kernel, shell)
        mem.store_u32(base, 77)          # maps it
        kernel.syscalls.unlink(shell, "/shared/doomed")
        # The mapping still reads the old page.
        assert mem.load_u32(base) == 77
        # The address no longer translates for *new* processes.
        assert kernel.sfs.inode_of_address(base) is None

    def test_new_segment_reuses_address_cleanly(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/first", 4096)
        mem = Mem(kernel, shell)
        mem.store_u32(base, 1)
        runtime.delete_segment("/shared/first")   # unmaps + unlinks
        base2 = runtime.create_segment("/shared/second", 4096)
        assert base2 == base                      # slot reused
        assert mem.load_u32(base2) == 0           # fresh zero pages


class TestRuntimeRobustness:
    def test_module_vanishes_before_use(self, system, shell):
        """lds warned about a missing dynamic module; running the
        program faults at use and dies — not the kernel."""
        kernel = system.kernel
        put_c(kernel, shell, "/main.o", """
            extern int ghost_fn();
            int main() { return ghost_fn(); }
        """)
        result = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("ghost.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin",
        )
        assert result.warnings
        proc = kernel.create_machine_process("p", result.executable)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason

    def test_injected_missing_module_matches_vanished(self, system,
                                                      shell):
        """The linker plane's MISSING kind reproduces the vanished
        module scenario without deleting anything: same death, same
        containment."""
        kernel = system.kernel
        exe = build_module_exe(system, shell,
                               SharingClass.DYNAMIC_PUBLIC)
        injector = install_injector(
            kernel,
            [FaultPlan(Plane.LINKER, FaultKind.MISSING,
                       site="create_public")],
            seed=6,
        )
        proc = kernel.create_machine_process("p", exe)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason
        assert injector.stats.triggered >= 1

    def test_stack_overflow_dies_cleanly(self, system, shell):
        kernel = system.kernel
        put_c(kernel, shell, "/main.o", """
            int recurse(int n) { return recurse(n + 1); }
            int main() { return recurse(0); }
        """)
        exe = system.lds.link(shell, [LinkRequest("/main.o")],
                              output="/bin").executable
        proc = kernel.create_machine_process("p", exe)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason

    def test_wild_jump_dies_cleanly(self, kernel):
        from repro.linker.baseline_ld import link_static

        source = """
            .text
            .globl main
        main:
            li t0, 0x00F00000
            jr t0
        """
        image = link_static([assemble(source, "m.o")])
        proc = kernel.create_machine_process("p", image)
        kernel.run_until_exit(proc)
        assert "SIGSEGV" in proc.death_reason

    def test_heap_corruption_detected(self, kernel, shell):
        from repro.runtime.shmalloc import SegmentHeap, SegmentHeapError

        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/heapseg", 8192)
        mem = Mem(kernel, shell)
        heap = SegmentHeap(mem, base, 8192)
        heap.initialize()
        block = heap.alloc(64)
        # A buggy client scribbles over the heap header.
        mem.store_u32(base, 0x41414141)
        with pytest.raises(SegmentHeapError):
            heap.alloc(8)
        with pytest.raises(SegmentHeapError):
            heap.free(block)

    def test_fault_in_handler_does_not_wedge_kernel(self, kernel, shell):
        """A broken program-provided handler raising is contained."""
        runtime = runtime_for(kernel, shell)

        def broken_handler(_proc, _info):
            raise ValueError("user bug")

        runtime.signal(broken_handler)
        mem = Mem(kernel, shell)
        with pytest.raises(ValueError):
            mem.load_u32(0x6F000000)
        # The kernel is still functional afterwards.
        runtime.create_segment("/shared/after", 4096)
        assert kernel.vfs.exists("/shared/after")
