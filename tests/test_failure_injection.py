"""Failure injection: corrupted files, races, and abuse must be
contained — processes may die, the kernel may not."""

import pytest

from repro.errors import ObjectFormatError, SimulationError
from repro.hw.asm import assemble
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.linker.segments import TRAILER, TRAILER_MAGIC, read_segment_meta
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem
from repro.toyc import compile_source


def put_c(kernel, shell, path, source):
    store_object(kernel, shell, path,
                 compile_source(source, path.rsplit("/", 1)[-1]))


class TestCorruptSegments:
    def _module(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        put_c(kernel, shell, "/shared/lib/m.o", "int cell = 1;")
        put_c(kernel, shell, "/main.o",
              "extern int cell;\nint main() { return cell; }")
        return system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("m.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin", search_dirs=["/shared/lib"],
        ).executable

    def test_truncated_trailer(self, system, shell):
        exe = self._module(system, shell)
        kernel = system.kernel
        # Create the module, then chop its tail off.
        p0 = kernel.create_machine_process("p0", exe)
        kernel.run_until_exit(p0)
        blob = kernel.vfs.read_whole("/shared/lib/m")
        kernel.vfs.write_whole("/shared/lib/m", blob[:-8])
        with pytest.raises(ObjectFormatError):
            read_segment_meta(kernel, shell, "/shared/lib/m")
        # A new process exec fails cleanly (the module is unusable) but
        # the kernel survives.
        with pytest.raises(SimulationError):
            kernel.create_machine_process("p1", exe)
        assert kernel.stats()

    def test_garbage_metadata(self, system, shell):
        exe = self._module(system, shell)
        kernel = system.kernel
        p0 = kernel.create_machine_process("p0", exe)
        kernel.run_until_exit(p0)
        blob = bytearray(kernel.vfs.read_whole("/shared/lib/m"))
        # Keep the trailer magic but trash the metadata bytes.
        magic, image_len, meta_len, _r = TRAILER.unpack(blob[-16:])
        assert magic == TRAILER_MAGIC
        blob[image_len: image_len + meta_len] = b"\xde" * meta_len
        kernel.vfs.write_whole("/shared/lib/m", bytes(blob))
        with pytest.raises(ObjectFormatError):
            read_segment_meta(kernel, shell, "/shared/lib/m")

    def test_template_corruption_fails_cleanly(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        kernel.vfs.write_whole("/shared/lib/bad.o", b"not an object")
        put_c(kernel, shell, "/main.o", "int main() { return 0; }")
        with pytest.raises(ObjectFormatError):
            system.lds.link(
                shell,
                [LinkRequest("/main.o"),
                 LinkRequest("bad.o", SharingClass.STATIC_PUBLIC)],
                output="/bin", search_dirs=["/shared/lib"],
            )


class TestUnlinkWhileMapped:
    def test_mapped_pages_survive_unlink(self, kernel, shell):
        """Unix semantics: an unlinked-but-mapped segment's pages stay
        valid for the mapper; the address slot is recycled only after
        the mapping notion is process-local anyway."""
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/doomed", 4096)
        mem = Mem(kernel, shell)
        mem.store_u32(base, 77)          # maps it
        kernel.syscalls.unlink(shell, "/shared/doomed")
        # The mapping still reads the old page.
        assert mem.load_u32(base) == 77
        # The address no longer translates for *new* processes.
        assert kernel.sfs.inode_of_address(base) is None

    def test_new_segment_reuses_address_cleanly(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/first", 4096)
        mem = Mem(kernel, shell)
        mem.store_u32(base, 1)
        runtime.delete_segment("/shared/first")   # unmaps + unlinks
        base2 = runtime.create_segment("/shared/second", 4096)
        assert base2 == base                      # slot reused
        assert mem.load_u32(base2) == 0           # fresh zero pages


class TestRuntimeRobustness:
    def test_module_vanishes_before_use(self, system, shell):
        """lds warned about a missing dynamic module; running the
        program faults at use and dies — not the kernel."""
        kernel = system.kernel
        put_c(kernel, shell, "/main.o", """
            extern int ghost_fn();
            int main() { return ghost_fn(); }
        """)
        result = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("ghost.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin",
        )
        assert result.warnings
        proc = kernel.create_machine_process("p", result.executable)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason

    def test_stack_overflow_dies_cleanly(self, system, shell):
        kernel = system.kernel
        put_c(kernel, shell, "/main.o", """
            int recurse(int n) { return recurse(n + 1); }
            int main() { return recurse(0); }
        """)
        exe = system.lds.link(shell, [LinkRequest("/main.o")],
                              output="/bin").executable
        proc = kernel.create_machine_process("p", exe)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason

    def test_wild_jump_dies_cleanly(self, kernel):
        from repro.linker.baseline_ld import link_static

        source = """
            .text
            .globl main
        main:
            li t0, 0x00F00000
            jr t0
        """
        image = link_static([assemble(source, "m.o")])
        proc = kernel.create_machine_process("p", image)
        kernel.run_until_exit(proc)
        assert "SIGSEGV" in proc.death_reason

    def test_heap_corruption_detected(self, kernel, shell):
        from repro.runtime.shmalloc import SegmentHeap, SegmentHeapError

        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/heapseg", 8192)
        mem = Mem(kernel, shell)
        heap = SegmentHeap(mem, base, 8192)
        heap.initialize()
        block = heap.alloc(64)
        # A buggy client scribbles over the heap header.
        mem.store_u32(base, 0x41414141)
        with pytest.raises(SegmentHeapError):
            heap.alloc(8)
        with pytest.raises(SegmentHeapError):
            heap.free(block)

    def test_fault_in_handler_does_not_wedge_kernel(self, kernel, shell):
        """A broken program-provided handler raising is contained."""
        runtime = runtime_for(kernel, shell)

        def broken_handler(_proc, _info):
            raise ValueError("user bug")

        runtime.signal(broken_handler)
        mem = Mem(kernel, shell)
        with pytest.raises(ValueError):
            mem.load_u32(0x6F000000)
        # The kernel is still functional afterwards.
        runtime.create_segment("/shared/after", 4096)
        assert kernel.vfs.exists("/shared/after")
