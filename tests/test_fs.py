"""File system tests: paths, volumes, VFS, mounts, symlinks, perms."""

import pytest

from repro.errors import (
    FileExistsSimError,
    FileNotFoundSimError,
    FilesystemError,
    IsADirectorySimError,
    NotADirectorySimError,
    PermissionSimError,
)
from repro.fs.filesystem import Filesystem
from repro.fs.inode import InodeType
from repro.fs.path import basename, dirname, join, normalize, split_path
from repro.fs.vfs import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    Vfs,
)
from repro.vm.pages import PhysicalMemory


@pytest.fixture
def pm():
    return PhysicalMemory()


@pytest.fixture
def vfs(pm):
    return Vfs(Filesystem(pm, "root"))


class TestPaths:
    def test_normalize(self):
        assert normalize("/a/b/../c") == "/a/c"
        assert normalize("a/b", cwd="/home") == "/home/a/b"
        assert normalize("/a//b/./c") == "/a/b/c"
        assert normalize("/../..") == "/"
        assert normalize(".", cwd="/x") == "/x"

    def test_split(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []

    def test_join(self):
        assert join("/a", "b", "c") == "/a/b/c"
        assert join("/a", "/b") == "/b"
        assert join("", "x") == "x"

    def test_dirname_basename(self):
        assert dirname("/a/b/c") == "/a/b"
        assert basename("/a/b/c") == "c"
        assert dirname("/") == "/"
        assert basename("/") == ""


class TestFilesAndDirs:
    def test_create_write_read(self, vfs):
        vfs.write_whole("/hello.txt", b"hi there")
        assert vfs.read_whole("/hello.txt") == b"hi there"

    def test_mkdir_and_nesting(self, vfs):
        vfs.mkdir("/a")
        vfs.mkdir("/a/b")
        vfs.write_whole("/a/b/f", b"x")
        assert vfs.listdir("/a") == ["b"]
        assert vfs.listdir("/a/b") == ["f"]

    def test_makedirs(self, vfs):
        vfs.makedirs("/x/y/z")
        assert vfs.exists("/x/y/z")
        vfs.makedirs("/x/y/z")  # idempotent

    def test_open_missing_without_creat(self, vfs):
        with pytest.raises(FileNotFoundSimError):
            vfs.open("/nope", O_RDONLY)

    def test_excl_creation(self, vfs):
        vfs.open("/f", O_WRONLY | O_CREAT)
        with pytest.raises(FileExistsSimError):
            vfs.open("/f", O_WRONLY | O_CREAT | O_EXCL)

    def test_trunc(self, vfs):
        vfs.write_whole("/f", b"long content")
        vfs.open("/f", O_WRONLY | O_TRUNC)
        assert vfs.read_whole("/f") == b""

    def test_append(self, vfs):
        vfs.write_whole("/f", b"ab")
        handle = vfs.open("/f", O_WRONLY | O_APPEND)
        handle.write(b"cd")
        assert vfs.read_whole("/f") == b"abcd"

    def test_offset_semantics(self, vfs):
        vfs.write_whole("/f", b"0123456789")
        handle = vfs.open("/f", O_RDWR)
        assert handle.read(4) == b"0123"
        assert handle.read(4) == b"4567"
        handle.lseek(2)
        assert handle.read(2) == b"23"
        handle.lseek(-2, 2)
        assert handle.read(10) == b"89"

    def test_read_on_writeonly_rejected(self, vfs):
        handle = vfs.open("/f", O_WRONLY | O_CREAT)
        with pytest.raises(PermissionSimError):
            handle.read(1)

    def test_write_on_readonly_rejected(self, vfs):
        vfs.write_whole("/f", b"x")
        handle = vfs.open("/f", O_RDONLY)
        with pytest.raises(PermissionSimError):
            handle.write(b"y")

    def test_unlink(self, vfs):
        vfs.write_whole("/f", b"x")
        vfs.unlink("/f")
        assert not vfs.exists("/f")

    def test_unlink_directory_rejected(self, vfs):
        vfs.mkdir("/d")
        with pytest.raises(IsADirectorySimError):
            vfs.unlink("/d")

    def test_rmdir(self, vfs):
        vfs.mkdir("/d")
        vfs.rmdir("/d")
        assert not vfs.exists("/d")

    def test_rmdir_nonempty_rejected(self, vfs):
        vfs.makedirs("/d/sub")
        with pytest.raises(FilesystemError):
            vfs.rmdir("/d")

    def test_rename(self, vfs):
        vfs.write_whole("/a", b"data")
        vfs.rename("/a", "/b")
        assert not vfs.exists("/a")
        assert vfs.read_whole("/b") == b"data"

    def test_rename_replaces(self, vfs):
        vfs.write_whole("/a", b"new")
        vfs.write_whole("/b", b"old")
        vfs.rename("/a", "/b")
        assert vfs.read_whole("/b") == b"new"

    def test_stat(self, vfs):
        vfs.write_whole("/f", b"12345")
        info = vfs.stat("/f")
        assert info.st_size == 5
        assert info.st_type is InodeType.FILE
        assert info.st_nlink == 1

    def test_file_as_directory_component(self, vfs):
        vfs.write_whole("/f", b"x")
        with pytest.raises(NotADirectorySimError):
            vfs.resolve("/f/child")


class TestHardLinks:
    def test_link_shares_inode(self, vfs):
        vfs.write_whole("/a", b"shared")
        vfs.link("/a", "/b")
        assert vfs.stat("/a").st_ino == vfs.stat("/b").st_ino
        assert vfs.stat("/a").st_nlink == 2
        vfs.write_whole("/a", b"updated")
        assert vfs.read_whole("/b") == b"updated"

    def test_unlink_keeps_other_link(self, vfs):
        vfs.write_whole("/a", b"x")
        vfs.link("/a", "/b")
        vfs.unlink("/a")
        assert vfs.read_whole("/b") == b"x"


class TestSymlinks:
    def test_follow(self, vfs):
        vfs.write_whole("/target", b"data")
        vfs.symlink("/target", "/link")
        assert vfs.read_whole("/link") == b"data"
        assert vfs.readlink("/link") == "/target"

    def test_nofollow_stat(self, vfs):
        vfs.write_whole("/target", b"data")
        vfs.symlink("/target", "/link")
        assert vfs.stat("/link", follow=False).st_type is \
            InodeType.SYMLINK
        assert vfs.stat("/link").st_type is InodeType.FILE

    def test_relative_target(self, vfs):
        vfs.makedirs("/d")
        vfs.write_whole("/d/target", b"rel")
        vfs.symlink("target", "/d/link")
        assert vfs.read_whole("/d/link") == b"rel"

    def test_symlink_to_directory(self, vfs):
        vfs.makedirs("/real/dir")
        vfs.write_whole("/real/dir/f", b"y")
        vfs.symlink("/real/dir", "/alias")
        assert vfs.read_whole("/alias/f") == b"y"

    def test_dangling(self, vfs):
        vfs.symlink("/nowhere", "/link")
        with pytest.raises(FileNotFoundSimError):
            vfs.read_whole("/link")

    def test_loop_detected(self, vfs):
        vfs.symlink("/b", "/a")
        vfs.symlink("/a", "/b")
        with pytest.raises(FilesystemError):
            vfs.resolve("/a")


class TestPermissions:
    @pytest.fixture
    def home(self, vfs):
        """A directory owned by uid 1 (files cannot be created in the
        root-owned '/' by other users — correct Unix behaviour)."""
        vfs.mkdir("/home", uid=0, mode=0o777)
        vfs.mkdir("/home/u1", uid=1)
        return "/home/u1"

    def test_cannot_create_in_foreign_directory(self, vfs, home):
        with pytest.raises(PermissionSimError):
            vfs.write_whole("/f", b"x", uid=1)

    def test_mode_denies_other_write(self, vfs, home):
        vfs.write_whole(f"{home}/f", b"x", uid=1, mode=0o600)
        with pytest.raises(PermissionSimError):
            vfs.open(f"{home}/f", O_WRONLY, uid=2)

    def test_owner_allowed(self, vfs, home):
        vfs.write_whole(f"{home}/f", b"x", uid=1, mode=0o600)
        handle = vfs.open(f"{home}/f", O_RDWR, uid=1)
        handle.write(b"y")

    def test_root_bypasses(self, vfs, home):
        vfs.write_whole(f"{home}/f", b"x", uid=1, mode=0o000)
        vfs.open(f"{home}/f", O_RDWR, uid=0)

    def test_readonly_file_readable_by_other(self, vfs, home):
        vfs.write_whole(f"{home}/f", b"x", uid=1, mode=0o644)
        assert vfs.read_whole(f"{home}/f", uid=2) == b"x"

    def test_search_permission_required(self, vfs, home):
        vfs.mkdir(f"{home}/secret", uid=1, mode=0o700)
        vfs.write_whole(f"{home}/secret/f", b"x", uid=1, mode=0o644)
        with pytest.raises(PermissionSimError):
            vfs.read_whole(f"{home}/secret/f", uid=2)


class TestMounts:
    def test_mount_and_cross(self, pm):
        root = Filesystem(pm, "root")
        other = Filesystem(pm, "other")
        vfs = Vfs(root)
        vfs.mount("/mnt", other)
        vfs.write_whole("/mnt/f", b"inside")
        assert vfs.read_whole("/mnt/f") == b"inside"
        fs, _ = vfs.resolve("/mnt/f")
        assert fs is other

    def test_double_mount_rejected(self, pm):
        vfs = Vfs(Filesystem(pm))
        vfs.mount("/m", Filesystem(pm))
        with pytest.raises(FilesystemError):
            vfs.mount("/m", Filesystem(pm))

    def test_cross_volume_link_rejected(self, pm):
        vfs = Vfs(Filesystem(pm))
        vfs.mount("/m", Filesystem(pm))
        vfs.write_whole("/f", b"x")
        with pytest.raises(FilesystemError):
            vfs.link("/f", "/m/f")

    def test_cross_volume_rename_rejected(self, pm):
        vfs = Vfs(Filesystem(pm))
        vfs.mount("/m", Filesystem(pm))
        vfs.write_whole("/f", b"x")
        with pytest.raises(FilesystemError):
            vfs.rename("/f", "/m/f")


class TestWalk:
    def test_walk_visits_everything(self, pm):
        fs = Filesystem(pm)
        vfs = Vfs(fs)
        vfs.makedirs("/a/b")
        vfs.write_whole("/a/f1", b"1")
        vfs.write_whole("/a/b/f2", b"2")
        seen = []
        fs.walk(lambda path, inode: seen.append(path))
        assert set(seen) == {"/a", "/a/b", "/a/f1", "/a/b/f2"}
