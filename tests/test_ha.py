"""repro.net.ha — the failure model and self-healing recovery.

The NODE fault plane (seeded crash/wedge/partition/reboot schedules),
lease-based directory reclamation, heartbeat membership, dedupe-window
and reply-cache generation hygiene, journaled directory recovery on the
rebooted home (fsck-clean), the end-to-end re-convergence scenario
against the single-kernel oracle, rr record/replay zero-divergence
under node faults, and the ``reprochaos --ha`` availability soak.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk import BlockDevice
from repro.disk.fsck import fsck
from repro.errors import NetError
from repro.inject import (
    FaultKind,
    FaultPlan,
    Plane,
    cancel_injection,
    request_injection,
)
from repro.net import Cluster, Frame, FrameKind, HaConfig
from repro.net.link import DEDUPE_WINDOW, _SenderWindow
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem
from repro.tools.cli import _campaign_plans, reprochaos_main

PROP_SEG = "/shared/prop.seg"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def creator_body(path: str, value: int = 0, size: int = 64):
    def body(kernel, proc):
        runtime = runtime_for(kernel, proc)
        base = runtime.create_segment(path, size)
        if value:
            Mem(kernel, proc).store_u32(base, value)
        yield
        return 0

    return body


def writer_body(path: str, slot: int, value: int):
    def body(kernel, proc):
        runtime = runtime_for(kernel, proc)
        base = runtime.segment_base(path)
        Mem(kernel, proc).store_u32(base + 4 * slot, value)
        yield
        return 0

    return body


def reader_body(path: str, node: int, views: dict, slot: int = 0):
    def body(kernel, proc):
        runtime = runtime_for(kernel, proc)
        base = runtime.segment_base(path)
        views[node] = Mem(kernel, proc).load_u32(base + 4 * slot)
        yield
        return 0

    return body


def _ha_rwho(nnodes: int, nhosts: int, seed: int):
    """Boot an armed cluster and run the recovery scenario."""
    from repro.apps.rwho.cluster import (
        run_ha_rwho,
        single_kernel_rwho,
        synth_statuses,
    )

    statuses = synth_statuses(nhosts)
    oracle = single_kernel_rwho(statuses)
    disks = [BlockDevice(seed=7) if node == 0 else None
             for node in range(nnodes)]
    cluster = Cluster(nnodes, seed=seed, disks=disks, ha=True)
    result = run_ha_rwho(cluster, statuses, oracle)
    return cluster, result


#: deterministic E2E schedule: home crash early, a second crash later,
#: one wedge, one partition, reboots a fixed delay after each crash
E2E_PLANS = [
    FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash", match="node0",
              probability=1.0, after=3, max_faults=1),
    FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash", match="node2",
              probability=1.0, after=9, max_faults=1),
    FaultPlan(Plane.NODE, FaultKind.WEDGE, site="wedge", match="node3",
              probability=1.0, after=4, max_faults=1),
    FaultPlan(Plane.NODE, FaultKind.PARTITION, site="partition",
              probability=1.0, after=5, max_faults=1),
    FaultPlan(Plane.NODE, FaultKind.REBOOT, site="reboot",
              probability=1.0, after=6),
]


# ----------------------------------------------------------------------
# configuration and pay-for-use
# ----------------------------------------------------------------------

class TestArming:
    @pytest.mark.parametrize("kwargs", [
        dict(heartbeat_every=0),
        dict(suspicion_rounds=4, heartbeat_every=4),
        dict(lease_rounds=12, suspicion_rounds=12),
    ])
    def test_bad_configurations_rejected(self, kwargs):
        with pytest.raises(NetError):
            HaConfig(**kwargs)

    def test_unarmed_cluster_has_no_failure_model(self):
        cluster = Cluster(2, seed=3)
        assert cluster.ha is None
        assert cluster.fabric.ha is None
        for machine in cluster.machines:
            assert machine.kernel.ha is None
        cluster.run()
        assert cluster.fabric.stats.by_kind.get("HEARTBEAT", 0) == 0
        cluster.shutdown()

    def test_armed_cluster_heartbeats(self):
        cluster = Cluster(3, seed=3, ha=True)
        for _ in range(3 * cluster.ha.config.heartbeat_every):
            cluster.step()
        cluster.run()
        assert cluster.fabric.stats.heartbeats_delivered > 0
        assert cluster.ha.stats.heartbeats > 0
        cluster.shutdown()

    def test_node_plane_campaign_plans(self):
        plans = _campaign_plans(["node"], 0.1)
        kinds = {plan.kind for plan in plans}
        assert kinds == {FaultKind.CRASH, FaultKind.WEDGE,
                         FaultKind.PARTITION, FaultKind.REBOOT}
        assert all(plan.plane is Plane.NODE for plan in plans)


# ----------------------------------------------------------------------
# link-layer hygiene across reboots
# ----------------------------------------------------------------------

class TestGenerations:
    def test_gen_zero_wire_is_plain_src(self):
        """A generation-0 frame is byte-identical to the pre-HA wire
        format: the gen bits ride the src high bits only when set."""
        frame = Frame(FrameKind.DATA, src=3, dst=1, port=7, seq=9,
                      payload=b"x")
        wire = frame.pack()
        again = Frame.unpack(wire)
        assert (again.src, again.gen) == (3, 0)
        bumped = Frame(FrameKind.DATA, src=3, dst=1, port=7, seq=9,
                       payload=b"x", gen=1)
        assert bumped.pack() != wire
        assert Frame.unpack(bumped.pack()).gen == 1

    def test_dedupe_window_is_bounded(self):
        window = _SenderWindow()
        for seq in range(1, 5 * DEDUPE_WINDOW):
            window.note(seq)
        assert len(window.recent) <= 2 * DEDUPE_WINDOW + 1
        assert window.is_duplicate(1)
        assert not window.is_duplicate(5 * DEDUPE_WINDOW)

    def test_generation_bump_rescues_restarted_seqs(self):
        """A rebooted sender restarts low; without the generation reset
        its fresh frames would be swallowed as ancient duplicates."""
        window = _SenderWindow()
        window.note(5 * DEDUPE_WINDOW)
        assert window.is_duplicate(3)
        window.reset(gen=1)
        assert not window.is_duplicate(3)

    def test_reply_cache_is_generation_scoped(self):
        """A reply recorded before a node's crash must never be served
        by its rebooted incarnation — the state that produced it died."""
        cluster = Cluster(2, seed=5)
        nic = cluster.machines[1].nic
        calls = []
        nic.bind(0x99, lambda frame: (calls.append(frame.seq)
                                      or (FrameKind.REPLY, b"pong")))
        request = Frame(FrameKind.CALL, src=0, dst=1, port=0x99, seq=77,
                        payload=b"ping")
        first = nic._serve(request)
        assert nic._serve(request) == first       # cache hit
        assert calls == [77]
        nic.gen += 1                              # the node rebooted
        nic._serve(request)
        assert calls == [77, 77]                  # handler re-ran
        cluster.shutdown()


# ----------------------------------------------------------------------
# the faults and the recovery machinery
# ----------------------------------------------------------------------

class TestFaults:
    def test_fault_free_ha_run_converges_first_epoch(self):
        cluster, result = _ha_rwho(4, 8, seed=42)
        assert result["converged"]
        assert result["epochs"] == 1
        assert result["ha"]["crashes"] == 0
        assert result["ha"]["dir_persists"] >= 1
        cluster.shutdown()

    def test_lease_reclaim_unblocks_readers(self):
        """Crash a segment's owner: after the lease window the home
        reaps it, marks the row ownerless, and serves its snapshot —
        readers get the bytes instead of wedging on a dead writer."""
        cluster = Cluster(4, seed=42, ha=True)
        views = {}
        cluster.spawn(1, "creator", creator_body(PROP_SEG, 0xC0FFEE))
        cluster.run()
        cluster.spawn(2, "r2", reader_body(PROP_SEG, 2, views))
        cluster.run()
        assert views[2] == 0xC0FFEE  # snapshot transited the home

        cluster.ha.crash(1)
        config = cluster.ha.config
        for _ in range(config.lease_rounds + config.suspicion_rounds + 2):
            cluster.step()
        cluster.spawn(3, "r3", reader_body(PROP_SEG, 3, views))
        cluster.run()
        assert views[3] == 0xC0FFEE
        assert cluster.ha.stats.lease_reclaims >= 1
        base = next(iter(sorted(cluster.directory.entries)))
        entry = cluster.directory.entries[base]
        assert entry.owner == -1          # reclaimed, home-served
        assert 1 not in entry.copyset
        cluster.shutdown()

    def test_wedge_delays_but_never_loses(self):
        """A wedged netd stops draining; frames pile up and deliver
        after the heal — the reader completes, nothing is lost."""
        cluster = Cluster(3, seed=42, ha=True)
        views = {}
        cluster.spawn(0, "creator", creator_body(PROP_SEG, 0xFEED))
        cluster.run()
        heal = cluster.round + 10
        cluster.ha.wedge(2, heal_round=heal)
        cluster.spawn(2, "r2", reader_body(PROP_SEG, 2, views))
        cluster.run()
        assert views[2] == 0xFEED         # rpc path is not the inbox
        assert cluster.ha.stats.wedges == 1
        while cluster.round <= heal:
            cluster.step()
        assert not cluster.ha.wedged      # healed on schedule
        assert not cluster.machines[2].nic.wedged
        cluster.shutdown()

    def test_partition_heals_and_victim_rejoins(self):
        """A reader cut off from the home dies contained; after the
        heal its next heartbeat re-joins it and fresh reads work."""
        cluster = Cluster(3, seed=42, ha=True)
        views = {}
        cluster.spawn(0, "creator", creator_body(PROP_SEG, 0xAB))
        cluster.run()
        config = cluster.ha.config
        heal = cluster.round + config.suspicion_rounds + 8
        cluster.ha.partition(frozenset({0, 1}), frozenset({2}), heal)
        cluster.spawn(2, "r2", reader_body(PROP_SEG, 2, views))
        cluster.run()
        assert 2 not in views             # cut: the probe died contained
        while cluster.round <= heal:      # silence -> suspicion
            cluster.step()
        assert cluster.ha.stats.suspects >= 1
        for _ in range(3 * config.heartbeat_every):
            cluster.step()                # post-heal heartbeat re-joins
        assert cluster.ha.stats.rejoins >= 1
        assert not cluster.ha.suspected
        cluster.spawn(2, "retry", reader_body(PROP_SEG, 2, views))
        cluster.run()
        assert views[2] == 0xAB
        assert cluster.ha.stats.heals == 1
        cluster.shutdown()

    def test_crashed_node_rejects_spawn_and_is_reported(self):
        cluster = Cluster(3, seed=42, ha=True)
        cluster.run()
        cluster.ha.crash(1)
        with pytest.raises(NetError, match="crashed"):
            cluster.spawn(1, "ghost", creator_body(PROP_SEG))
        assert cluster._dead_node_report() == " (crashed nodes: 1)"
        cluster.shutdown()

    def test_home_reboot_recovers_directory_fsck_clean(self):
        """Crash the home (the only durable node) mid-scenario: the
        reboot replays its journal, the recovered image is fsck-clean,
        and the directory rows come back from the volume."""
        plans = [
            FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash",
                      match="node0", probability=1.0, after=2,
                      max_faults=1),
            FaultPlan(Plane.NODE, FaultKind.REBOOT, site="reboot",
                      probability=1.0, after=5, max_faults=1),
        ]
        request_injection(plans, seed=5)
        try:
            cluster, result = _ha_rwho(4, 8, seed=42)
        finally:
            cancel_injection()
        assert result["converged"]
        assert result["ha"]["crashes"] == 1
        assert result["ha"]["reboots"] == 1
        assert result["ha"]["dir_recovered"] >= 1
        home = cluster.machines[0].kernel
        assert home.disk is not None
        assert home.disk.recovery is not None  # this boot recovered
        check = fsck(home.disk.device.reopen(), subject="rebooted-home")
        assert check.report.codes() == []
        cluster.shutdown()

    def test_campaign_counters_survive_reboots(self):
        """A capped CRASH plan must not re-arm when its victim reboots
        with a fresh kernel: the campaign is cluster-scoped."""
        request_injection([
            FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash",
                      match="node1", probability=1.0, after=2,
                      max_faults=1),
            FaultPlan(Plane.NODE, FaultKind.REBOOT, site="reboot",
                      probability=1.0, after=4),
        ], seed=9)
        try:
            cluster = Cluster(3, seed=42, ha=True)
            for _ in range(60):
                cluster.step()
            assert cluster.ha.stats.crashes == 1
            assert cluster.ha.stats.reboots == 1
            cluster.shutdown()
        finally:
            cancel_injection()


# ----------------------------------------------------------------------
# end to end: the acceptance scenario
# ----------------------------------------------------------------------

class TestEndToEnd:
    def test_eight_nodes_reconverge_under_full_fault_mix(self):
        """The tentpole acceptance: 8 nodes, >=1 crash (including the
        home), >=1 partition, >=1 reboot, a wedge for good measure —
        the cluster completes without deadlock and a post-heal probe's
        database equals the single-kernel oracle."""
        request_injection(E2E_PLANS, seed=1234)
        try:
            cluster, result = _ha_rwho(8, 24, seed=42)
        finally:
            cancel_injection()
        ha = result["ha"]
        assert ha["crashes"] >= 1
        assert ha["partitions"] >= 1
        assert ha["reboots"] >= 1
        assert ha["heals"] >= 1
        assert result["ha_dropped"] > 0   # the failure model actually bit
        assert result["converged"], result
        check = fsck(cluster.machines[0].kernel.disk.device.reopen(),
                     subject="e2e-home")
        assert check.report.codes() == []
        cluster.shutdown()

    def test_ha_record_replay_zero_divergence(self):
        """reprorr records the crash/reboot scenario and replays it with
        zero divergence — the failure schedule is part of the tape."""
        from repro.rr import record_call, replay_call

        def workload():
            cluster, result = _ha_rwho(4, 8, seed=42)
            assert result["converged"]
            cluster.shutdown()

        plans = [
            FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash",
                      match="node0", probability=1.0, after=2,
                      max_faults=1),
            FaultPlan(Plane.NODE, FaultKind.REBOOT, site="reboot",
                      probability=1.0, after=5, max_faults=1),
        ]
        recording = record_call(workload, interval=30_000, plans=plans,
                                inject_seed=5)
        report = replay_call(recording, workload)
        assert report.ok, report.render()

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           crash_after=st.integers(min_value=2, max_value=12),
           cut_after=st.integers(min_value=3, max_value=10),
           victim=st.integers(min_value=0, max_value=3))
    def test_random_schedules_converge_and_replay(
            self, seed, crash_after, cut_after, victim):
        """Any bounded (seed, crash schedule, partition window): the
        post-heal database equals the no-fault oracle, and the same
        seed reproduces the identical run."""
        plans = [
            FaultPlan(Plane.NODE, FaultKind.CRASH, site="crash",
                      match=f"node{victim}", probability=1.0,
                      after=crash_after, max_faults=1),
            FaultPlan(Plane.NODE, FaultKind.PARTITION, site="partition",
                      probability=1.0, after=cut_after, max_faults=1),
            FaultPlan(Plane.NODE, FaultKind.REBOOT, site="reboot",
                      probability=1.0, after=6),
        ]

        def once():
            request_injection(plans, seed=seed)
            try:
                cluster, result = _ha_rwho(4, 8, seed=42)
            finally:
                cancel_injection()
            stats = cluster.fabric.stats
            fingerprint = (result["rounds"], result["epochs"],
                           result["ha"], stats.frames_sent,
                           stats.bytes_sent, stats.ha_dropped,
                           sorted(result["outputs"].items()))
            cluster.shutdown()
            return result["converged"], fingerprint

        converged, first = once()
        assert converged
        again, second = once()
        assert again and first == second


# ----------------------------------------------------------------------
# the reprochaos --ha soak
# ----------------------------------------------------------------------

class TestChaosHa:
    def test_ha_soak_is_clean_and_drift_free(self):
        out = io.StringIO()
        status = reprochaos_main(
            ["--ha", "--nodes", "4", "--rate", "0.02", "--seed", "11",
             "examples/rwho_network.py"], stdout=out)
        text = out.getvalue()
        assert status == 0, text
        assert "(HA armed)" in text
        assert "node:crash" in text
        assert "OK" in text

    def test_ha_and_crash_soaks_are_exclusive(self):
        with pytest.raises(Exception):
            reprochaos_main(["--ha", "--crash", "x.py"])
