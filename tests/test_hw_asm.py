"""Assembler tests: directives, instructions, pseudo-ops, relocations."""

import pytest

from repro.errors import AssemblerError
from repro.hw.asm import assemble
from repro.objfile.format import (
    RelocType,
    SEC_BSS,
    SEC_DATA,
    SEC_TEXT,
    SymBinding,
)


def relocs_of(obj, rtype):
    return [r for r in obj.relocations if r.type is rtype]


class TestSections:
    def test_text_data_bss_sizes(self):
        obj = assemble("""
            .text
            nop
            nop
            .data
            .word 1, 2, 3
            .bss
            .space 64
        """)
        assert len(obj.text) == 8
        assert len(obj.data) == 12
        assert obj.bss_size == 64

    def test_data_values_little_endian(self):
        obj = assemble(".data\n.word 0x11223344")
        assert bytes(obj.data) == b"\x44\x33\x22\x11"

    def test_half_and_byte(self):
        obj = assemble(".data\n.byte 1, 2\n.half 0x0304")
        # .half aligns to 2 first
        assert bytes(obj.data) == b"\x01\x02\x04\x03"

    def test_asciiz(self):
        obj = assemble('.data\n.asciiz "hi\\n"')
        assert bytes(obj.data) == b"hi\n\x00"

    def test_ascii_without_nul(self):
        obj = assemble('.data\n.ascii "ab"')
        assert bytes(obj.data) == b"ab"

    def test_align(self):
        obj = assemble(".data\n.byte 1\n.align 8\n.byte 2")
        assert len(obj.data) == 9
        assert obj.data[8] == 2

    def test_align_requires_power_of_two(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.align 3")

    def test_word_in_bss_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".bss\n.word 5")

    def test_instruction_outside_text_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nnop")

    def test_comm(self):
        obj = assemble(".comm buffer, 128")
        assert obj.bss_size >= 128
        sym = obj.symbols["buffer"]
        assert sym.section == SEC_BSS
        assert sym.binding is SymBinding.GLOBAL


class TestSymbols:
    def test_local_vs_global(self):
        obj = assemble("""
            .text
            .globl entry
        entry:
            nop
        helper:
            nop
        """)
        assert obj.symbols["entry"].binding is SymBinding.GLOBAL
        assert obj.symbols["helper"].binding is SymBinding.LOCAL

    def test_label_values(self):
        obj = assemble(".text\nnop\nL1:\nnop\nL2: nop")
        assert obj.symbols["L1"].value == 4
        assert obj.symbols["L2"].value == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nx:\nnop\nx:\nnop")

    def test_undefined_reference_recorded(self):
        obj = assemble(".text\njal external_fn")
        assert "external_fn" in obj.undefined_symbols()

    def test_entry_directive(self):
        obj = assemble(".text\n.entry start\nstart: nop\n.globl start")
        assert obj.entry_symbol == "start"

    def test_heap_directive(self):
        obj = assemble(".heap 4096\n.heap 96")
        assert obj.heap_size == 4192

    def test_module_and_searchdir(self):
        obj = assemble("""
            .module shared1.o, dynamic_public
            .module helper.o
            .searchdir /shared/lib
        """)
        assert ("shared1.o", "dynamic_public") in \
            obj.link_info.dynamic_modules
        assert ("helper.o", "dynamic_public") in \
            obj.link_info.dynamic_modules
        assert obj.link_info.search_path == ["/shared/lib"]


class TestRelocations:
    def test_la_emits_hi_lo(self):
        obj = assemble(".text\nla a0, target")
        hi = relocs_of(obj, RelocType.HI16)
        lo = relocs_of(obj, RelocType.LO16)
        assert len(hi) == 1 and len(lo) == 1
        assert hi[0].symbol == "target"
        assert lo[0].offset == hi[0].offset + 4

    def test_jal_emits_jump26(self):
        obj = assemble(".text\njal fn")
        jumps = relocs_of(obj, RelocType.JUMP26)
        assert len(jumps) == 1
        assert jumps[0].symbol == "fn"

    def test_word_symbol_emits_word32(self):
        obj = assemble(".data\nptr: .word some_symbol + 8")
        words = relocs_of(obj, RelocType.WORD32)
        assert len(words) == 1
        assert words[0].symbol == "some_symbol"
        assert words[0].addend == 8

    def test_local_jump_also_relocated(self):
        """Even local jump targets need relocations: the final address
        is unknown until the module is placed."""
        obj = assemble(".text\nstart: nop\njal start")
        assert len(relocs_of(obj, RelocType.JUMP26)) == 1

    def test_symbol_addressed_load_expands(self):
        obj = assemble(".text\nlw t0, counter")
        assert len(obj.text) == 8  # lui + lw
        assert len(relocs_of(obj, RelocType.HI16)) == 1
        assert len(relocs_of(obj, RelocType.LO16)) == 1

    def test_symbol_addressed_store_expands(self):
        obj = assemble(".text\nsw t0, counter")
        assert len(obj.text) == 8


class TestPseudoInstructions:
    def test_li_small_is_one_instruction(self):
        assert len(assemble(".text\nli t0, 100").text) == 4
        assert len(assemble(".text\nli t0, -5").text) == 4
        assert len(assemble(".text\nli t0, 0xFFFF").text) == 4

    def test_li_large_is_two_instructions(self):
        assert len(assemble(".text\nli t0, 0x12345678").text) == 8

    def test_move_and_nop(self):
        obj = assemble(".text\nmove t0, t1\nnop")
        assert len(obj.text) == 8

    def test_branch_pseudos(self):
        obj = assemble("""
            .text
        top:
            beqz t0, top
            bnez t1, top
            b top
        """)
        assert len(obj.text) == 12

    def test_ret(self):
        obj = assemble(".text\nret")
        assert len(obj.text) == 4

    def test_char_literal(self):
        obj = assemble(".text\nli t0, 'A'")
        assert obj.text[0:2] == (65).to_bytes(2, "little")


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nfrobnicate t0")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".frobnicate 1")

    def test_immediate_overflow(self):
        with pytest.raises(AssemblerError):
            assemble(".text\naddi t0, t0, 40000")

    def test_branch_to_external_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nbeqz t0, external_label")

    def test_branch_to_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nb d\n.data\nd: .word 0")

    def test_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nadd t0, t1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nadd q7, t0, t1")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as info:
            assemble(".text\nnop\nbogus t0")
        assert info.value.line == 3

    def test_comments_ignored(self):
        obj = assemble("""
            .text           # section
            nop             ; a comment too
            # whole-line comment
        """)
        assert len(obj.text) == 4
