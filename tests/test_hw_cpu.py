"""CPU interpreter tests: run tiny programs bare-metal and check state.

Programs are assembled, manually placed at fixed addresses (no linker —
these tests sit below it), and run until a trap.
"""

import pytest

from repro.errors import (
    AlignmentError,
    ExecutionBudgetExceeded,
    InvalidInstructionError,
)
from repro.hw.asm import assemble
from repro.hw.cpu import ArithmeticTrap, BreakTrap, Cpu, SyscallTrap
from repro.hw import isa
from repro.objfile.format import RelocType
from repro.util.bits import hi16, lo16
from repro.vm.address_space import AddressSpace, PROT_RWX
from repro.vm.faults import PageFaultError
from repro.vm.pages import PhysicalMemory

TEXT = 0x1000
DATA = 0x3000


def run_program(source: str, max_instructions: int = 10000):
    """Assemble, place, and run until syscall; returns (cpu, space)."""
    obj = assemble(source)
    addresses = {}
    for symbol in obj.symbols.values():
        if symbol.section == "text":
            addresses[symbol.name] = TEXT + symbol.value
        elif symbol.section == "data":
            addresses[symbol.name] = DATA + symbol.value
        elif symbol.section == "bss":
            addresses[symbol.name] = DATA + 0x800 + symbol.value
    text = bytearray(obj.text)
    data = bytearray(obj.data)
    for reloc in obj.relocations:
        target = addresses[reloc.symbol] + reloc.addend
        buf = text if reloc.section == "text" else data
        word = int.from_bytes(buf[reloc.offset: reloc.offset + 4], "little")
        if reloc.type is RelocType.HI16:
            word = (word & 0xFFFF0000) | hi16(target)
        elif reloc.type is RelocType.LO16:
            word = (word & 0xFFFF0000) | lo16(target)
        elif reloc.type is RelocType.WORD32:
            word = target
        elif reloc.type is RelocType.JUMP26:
            word = (word & 0xFC000000) | ((target >> 2) & 0x3FFFFFF)
        buf[reloc.offset: reloc.offset + 4] = word.to_bytes(4, "little")

    pm = PhysicalMemory()
    space = AddressSpace(pm)
    space.map(TEXT, 0x1000, prot=PROT_RWX)
    space.map(DATA, 0x1000, prot=PROT_RWX)
    space.map(0x7F000000, 0x10000, prot=PROT_RWX)
    space.write_bytes(TEXT, bytes(text))
    space.write_bytes(DATA, bytes(data))
    cpu = Cpu(space)
    cpu.pc = TEXT
    cpu.regs[isa.REG_SP] = 0x7F00FFF0
    try:
        cpu.run(max_instructions)
    except SyscallTrap:
        pass
    return cpu, space


class TestArithmetic:
    def test_add_sub(self):
        cpu, _ = run_program("""
            .text
            li t0, 40
            li t1, 2
            add t2, t0, t1
            sub t3, t0, t1
            syscall
        """)
        assert cpu.regs[10] == 42
        assert cpu.regs[11] == 38

    def test_wraparound(self):
        cpu, _ = run_program("""
            .text
            li t0, 0xFFFFFFFF
            addi t0, t0, 1
            syscall
        """)
        assert cpu.regs[8] == 0

    def test_mul_div_rem(self):
        cpu, _ = run_program("""
            .text
            li t0, -7
            li t1, 2
            mul t2, t0, t1
            div t3, t0, t1
            rem t4, t0, t1
            syscall
        """)
        assert cpu.regs[10] == 0xFFFFFFF2  # -14
        assert cpu.regs[11] == 0xFFFFFFFD  # -3 (truncation toward zero)
        assert cpu.regs[12] == 0xFFFFFFFF  # -1

    def test_divide_by_zero_traps(self):
        with pytest.raises(ArithmeticTrap):
            run_program(".text\nli t0, 1\nli t1, 0\ndiv t2, t0, t1")

    def test_logic_ops(self):
        cpu, _ = run_program("""
            .text
            li t0, 0xF0F0
            li t1, 0x0FF0
            and t2, t0, t1
            or  t3, t0, t1
            xor t4, t0, t1
            nor t5, t0, t1
            syscall
        """)
        assert cpu.regs[10] == 0x00F0
        assert cpu.regs[11] == 0xFFF0
        assert cpu.regs[12] == 0xFF00
        assert cpu.regs[13] == 0xFFFF000F

    def test_shifts(self):
        cpu, _ = run_program("""
            .text
            li t0, 0x80000000
            srl t1, t0, 4
            sra t2, t0, 4
            li t3, 1
            sll t4, t3, 31
            syscall
        """)
        assert cpu.regs[9] == 0x08000000
        assert cpu.regs[10] == 0xF8000000
        assert cpu.regs[12] == 0x80000000

    def test_slt_signed_vs_unsigned(self):
        cpu, _ = run_program("""
            .text
            li t0, -1
            li t1, 1
            slt t2, t0, t1
            sltu t3, t0, t1
            syscall
        """)
        assert cpu.regs[10] == 1   # -1 < 1 signed
        assert cpu.regs[11] == 0   # 0xFFFFFFFF > 1 unsigned

    def test_zero_register_immutable(self):
        cpu, _ = run_program(".text\nli zero, 42\nsyscall")
        assert cpu.regs[0] == 0


class TestControlFlow:
    def test_loop_sum(self):
        cpu, _ = run_program("""
            .text
            li t0, 10
            li t1, 0
        loop:
            add t1, t1, t0
            addi t0, t0, -1
            bgtz t0, loop
            syscall
        """)
        assert cpu.regs[9] == 55

    def test_jal_sets_ra_and_jr_returns(self):
        cpu, _ = run_program("""
            .text
            jal fn
            li t5, 7
            syscall
        fn:
            li t4, 3
            jr ra
        """)
        assert cpu.regs[12] == 3
        assert cpu.regs[13] == 7

    def test_jalr(self):
        cpu, _ = run_program("""
            .text
            la t0, fn
            jalr ra, t0
            syscall
        fn:
            li t4, 9
            jr ra
        """)
        assert cpu.regs[12] == 9

    def test_bltz_bgez(self):
        cpu, _ = run_program("""
            .text
            li t0, -5
            bltz t0, neg
            li t1, 0
            syscall
        neg:
            li t1, 1
            bgez zero, done
            li t1, 2
        done:
            syscall
        """)
        assert cpu.regs[9] == 1

    def test_backward_branch_near_zero_wraps_pc(self):
        """Regression: a taken backward branch whose target arithmetic
        goes below zero must wrap mod 2^32, never set a negative PC."""
        pm = PhysicalMemory()
        space = AddressSpace(pm)
        space.map(0, 0x1000, prot=PROT_RWX)
        # beq zero, zero, -16  (offset -64 bytes from pc 0 -> -60)
        word = isa.encode_i(isa.OP_BEQ, imm=(-16) & 0xFFFF)
        space.write_bytes(0, word.to_bytes(4, "little"))
        cpu = Cpu(space)
        cpu.pc = 0
        cpu.step()
        assert cpu.pc == (4 - 64) & 0xFFFFFFFF  # 0xFFFFFFC4, not -60
        assert cpu.pc >= 0

    def test_backward_regimm_branch_near_zero_wraps_pc(self):
        pm = PhysicalMemory()
        space = AddressSpace(pm)
        space.map(0, 0x1000, prot=PROT_RWX)
        # bltz t0, -16 with t0 negative: taken, target wraps.
        word = isa.encode_i(isa.OP_REGIMM, rs=8, rt=isa.RT_BLTZ,
                            imm=(-16) & 0xFFFF)
        space.write_bytes(0, word.to_bytes(4, "little"))
        cpu = Cpu(space)
        cpu.pc = 0
        cpu.regs[8] = 0xFFFFFFFF  # -1
        cpu.step()
        assert cpu.pc == (4 - 64) & 0xFFFFFFFF
        assert cpu.pc >= 0

    def test_beq_bne(self):
        cpu, _ = run_program("""
            .text
            li t0, 4
            li t1, 4
            beq t0, t1, eq
            li t2, 0
            syscall
        eq:
            bne t0, zero, done
            li t2, 1
        done:
            li t2, 2
            syscall
        """)
        assert cpu.regs[10] == 2


class TestMemoryAccess:
    def test_load_store_word(self):
        cpu, space = run_program("""
            .text
            la t0, slot
            li t1, 0xCAFE
            sw t1, 0(t0)
            lw t2, 0(t0)
            syscall
            .data
        slot: .word 0
        """)
        assert cpu.regs[10] == 0xCAFE

    def test_byte_and_half_access(self):
        cpu, _ = run_program("""
            .text
            la t0, bytes
            lbu t1, 0(t0)
            lb  t2, 1(t0)
            lhu t3, 2(t0)
            lh  t4, 2(t0)
            syscall
            .data
        bytes: .byte 0x7F, 0xFF
            .half 0x8000
        """)
        assert cpu.regs[9] == 0x7F
        assert cpu.regs[10] == 0xFFFFFFFF
        assert cpu.regs[11] == 0x8000
        assert cpu.regs[12] == 0xFFFF8000

    def test_sb_sh(self):
        cpu, space = run_program("""
            .text
            la t0, slot
            li t1, 0xAABBCCDD
            sw t1, 0(t0)
            li t2, 0x11
            sb t2, 0(t0)
            li t3, 0x2233
            sh t3, 2(t0)
            lw t4, 0(t0)
            syscall
            .data
        slot: .word 0
        """)
        assert cpu.regs[12] == 0x2233CC11

    def test_misaligned_word_access(self):
        with pytest.raises(AlignmentError):
            run_program(".text\nli t0, 0x3001\nlw t1, 0(t0)")

    def test_unmapped_access_faults_restartably(self):
        """The fault must leave the PC at the faulting instruction."""
        source = ".text\nli t0, 0x500000\nlw t1, 0(t0)\nsyscall"
        obj = assemble(source)
        pm = PhysicalMemory()
        space = AddressSpace(pm)
        space.map(TEXT, 0x1000, prot=PROT_RWX)
        space.write_bytes(TEXT, bytes(obj.text))
        cpu = Cpu(space)
        cpu.pc = TEXT
        with pytest.raises(PageFaultError) as info:
            cpu.run()
        faulting_pc = cpu.pc
        assert info.value.address == 0x500000
        # Map the page, restart: the instruction must now succeed.
        space.map(0x500000, 0x1000, prot=PROT_RWX)
        space.store_word(0x500000, 99)
        assert cpu.pc == faulting_pc
        with pytest.raises(SyscallTrap):
            cpu.run()
        assert cpu.regs[9] == 99


class TestTraps:
    def test_break(self):
        with pytest.raises(BreakTrap):
            run_program(".text\nbreak")

    def test_invalid_instruction(self):
        source = ".text\n.word 0\n"
        obj = assemble(".text\nnop")
        pm = PhysicalMemory()
        space = AddressSpace(pm)
        space.map(TEXT, 0x1000, prot=PROT_RWX)
        space.write_bytes(TEXT, b"\x3f\x00\x00\x00")  # bad funct
        cpu = Cpu(space)
        cpu.pc = TEXT
        with pytest.raises(InvalidInstructionError):
            cpu.step()
        del source, obj

    def test_budget_exhaustion(self):
        with pytest.raises(ExecutionBudgetExceeded):
            run_program(".text\nspin: b spin", max_instructions=100)

    def test_instruction_count(self):
        cpu, _ = run_program(".text\nnop\nnop\nnop\nsyscall")
        assert cpu.instructions_executed == 3

    def test_misaligned_pc(self):
        cpu = Cpu(AddressSpace(PhysicalMemory()))
        cpu.pc = 0x1002
        with pytest.raises(AlignmentError):
            cpu.step()
