"""Tests for instruction encodings and the disassembler."""

import pytest

from repro.hw import isa


class TestRegisters:
    def test_names_and_aliases(self):
        assert isa.register_number("zero") == 0
        assert isa.register_number("ra") == 31
        assert isa.register_number("sp") == 29
        assert isa.register_number("r4") == isa.register_number("a0")
        assert isa.register_number("$a0") == 4
        assert isa.register_number("$4") == 4
        assert isa.register_number("A0") == 4  # case-insensitive

    def test_unknown_register(self):
        with pytest.raises(ValueError):
            isa.register_number("x99")

    def test_abi_constants(self):
        assert isa.REG_V0 == 2
        assert isa.REG_A0 == 4
        assert isa.REG_GP == 28
        assert isa.REG_RA == 31


class TestEncoding:
    def test_r_type_fields(self):
        word = isa.encode_r(isa.FN_ADD, rd=3, rs=4, rt=5)
        assert (word >> 26) == 0
        assert (word >> 21) & 31 == 4
        assert (word >> 16) & 31 == 5
        assert (word >> 11) & 31 == 3
        assert word & 0x3F == isa.FN_ADD

    def test_i_type_immediate_truncation(self):
        word = isa.encode_i(isa.OP_ADDI, rs=1, rt=2, imm=-1)
        assert word & 0xFFFF == 0xFFFF

    def test_j_type(self):
        word = isa.encode_j(isa.OP_JAL, isa.jump_field(0x00400010))
        assert (word >> 26) == isa.OP_JAL
        assert isa.jump_target(0x00400000, word & 0x3FFFFFF) == 0x00400010


class TestJumpReach:
    def test_same_region_reachable(self):
        assert isa.jump_reachable(0x00400000, 0x0FFFFFFC)

    def test_cross_region_unreachable(self):
        """A call from private text into the SFS region cannot be
        encoded — the paper's branch-island motivation."""
        assert not isa.jump_reachable(0x00400000, 0x30400000)

    def test_target_reconstruction_keeps_high_bits(self):
        field = isa.jump_field(0x34567890)
        assert isa.jump_target(0x30000000, field) == 0x34567890

    def test_branch_offset(self):
        assert isa.branch_offset(0x1000, 0x1008) == 1
        assert isa.branch_offset(0x1008, 0x1000) == -3

    def test_branch_offset_alignment(self):
        with pytest.raises(ValueError):
            isa.branch_offset(0x1000, 0x1002)


class TestDisassembler:
    def test_nop(self):
        assert isa.disassemble_word(0) == "nop"

    def test_add(self):
        word = isa.encode_r(isa.FN_ADD, rd=2, rs=4, rt=5)
        assert isa.disassemble_word(word) == "add v0, a0, a1"

    def test_load(self):
        word = isa.encode_i(isa.OP_LW, rs=29, rt=31, imm=-4)
        assert isa.disassemble_word(word) == "lw ra, -4(sp)"

    def test_jal_target(self):
        word = isa.encode_j(isa.OP_JAL, isa.jump_field(0x00400100))
        assert isa.disassemble_word(word, pc=0x00400000) == "jal 0x400100"

    def test_branch_target(self):
        word = isa.encode_i(isa.OP_BEQ, rs=8, rt=0, imm=3)
        assert isa.disassemble_word(word, pc=0x1000) == \
            "beq t0, zero, 0x1010"

    def test_lui(self):
        word = isa.encode_i(isa.OP_LUI, rt=1, imm=0x3040)
        assert isa.disassemble_word(word) == "lui at, 0x3040"

    def test_syscall_and_break(self):
        assert isa.disassemble_word(isa.encode_r(isa.FN_SYSCALL)) == \
            "syscall"
        assert isa.disassemble_word(isa.encode_r(isa.FN_BREAK)) == "break"

    def test_unknown_word(self):
        assert isa.disassemble_word(0x0000003F).startswith(".word")
