"""repro.inject: the fault planes themselves.

Covers the determinism contract (same seed + plans => bit-identical
INJECT stream across independent boots), typed surfacing of injected
faults, kernel containment accounting, ldl's retry/backoff hardening,
and Hypothesis properties: the SFS address-map invariants survive any
prefix of injected I/O faults.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import boot
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.errors import (
    FileLimitError,
    FilesystemError,
    InjectedDiskFullError,
    InjectedFaultError,
    InjectedIOError,
    InjectedSyscallError,
    SimulationError,
    SyscallError,
)
from repro.fs.vfs import O_CREAT, O_RDONLY, O_WRONLY
from repro.inject import (
    FaultKind,
    FaultPlan,
    Plane,
    install_injector,
    remove_injector,
)
from repro.sfs.addrmap import BTreeAddressMap, LinearAddressMap
from repro.trace.tracer import tracing

WIDTH = 6

CHAOS_PLANS = (
    FaultPlan(Plane.SYSCALL, FaultKind.ERROR, probability=0.02,
              errno="EIO"),
    FaultPlan(Plane.IO, FaultKind.SHORT_READ, site="read",
              probability=0.02),
    FaultPlan(Plane.LINKER, FaultKind.ERROR, probability=0.1,
              transient=True),
)


def _fanout_under_faults(seed):
    """Boot, build the fanout workload, run it under CHAOS_PLANS.

    Returns (outcome, INJECT stream, stats) — everything that must be
    reproducible from the seed alone.
    """
    system = boot()
    kernel = system.kernel
    shell = make_shell(kernel)
    graph = build_module_fanout(kernel, shell, width=WIDTH, used=WIDTH,
                                module_dir="/shared/fan")
    injector = install_injector(kernel, CHAOS_PLANS, seed=seed)
    with tracing(kernel, kinds=["INJECT"]) as tracer:
        try:
            proc = kernel.create_machine_process("victim",
                                                 graph.executable)
            kernel.run_until_exit(proc)
            outcome = ("exit", proc.exit_code)
        except SimulationError as error:
            outcome = ("error", type(error).__name__)
        stream = tuple((e.cycle, e.pid, e.addr, e.name, e.value)
                       for e in tracer.events())
    return outcome, stream, injector.stats


class TestSeedDeterminism:
    def test_same_seed_identical_stream(self):
        """Two independent boots, same seed and plans: identical fault
        schedule, identical outcome — the reproducibility contract."""
        first = _fanout_under_faults(seed=7)
        second = _fanout_under_faults(seed=7)
        assert first[1], "chaos run triggered no faults; weak test"
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2].triggered == second[2].triggered
        assert first[2].contained == second[2].contained

    def test_different_seed_different_stream(self):
        base = _fanout_under_faults(seed=7)
        other = _fanout_under_faults(seed=8)
        assert base[1] != other[1]

    def test_unrelated_plans_do_not_perturb(self):
        """Adding a plan that never matches must not shift the decisions
        of existing plans (per-plan RNG streams)."""
        def run(extra):
            system = boot()
            kernel = system.kernel
            shell = make_shell(kernel)
            graph = build_module_fanout(kernel, shell, width=WIDTH,
                                        used=WIDTH,
                                        module_dir="/shared/fan")
            plans = list(CHAOS_PLANS) + list(extra)
            install_injector(kernel, plans, seed=7)
            with tracing(kernel, kinds=["INJECT"]) as tracer:
                try:
                    proc = kernel.create_machine_process(
                        "victim", graph.executable)
                    kernel.run_until_exit(proc)
                except SimulationError:
                    pass
                return tuple((e.cycle, e.pid, e.name)
                             for e in tracer.events())

        inert = FaultPlan(Plane.IO, FaultKind.ERROR,
                          match="/never/matches/*")
        assert run(()) == run((inert,))


class TestTypedSurfacing:
    def test_syscall_plane_raises_typed_errno(self, kernel, shell):
        injector = install_injector(
            kernel,
            [FaultPlan(Plane.SYSCALL, FaultKind.ERROR, match="open",
                       errno="EIO")],
            seed=3,
        )
        with pytest.raises(InjectedSyscallError) as exc:
            kernel.syscalls.open(shell, "/anything", O_RDONLY)
        # The typed mixin: catchable as a plain SyscallError too.
        assert isinstance(exc.value, SyscallError)
        assert exc.value.errno == "EIO"
        assert exc.value.plane == "syscall"
        assert exc.value.site == "open"
        assert injector.stats.triggered == 1

    def test_enospc_is_a_file_limit_error(self, kernel, shell):
        kernel.vfs.write_whole("/shared/seg", b"x", shell.uid)
        install_injector(
            kernel,
            [FaultPlan(Plane.IO, FaultKind.ENOSPC, site="sfs-write")],
            seed=3,
        )
        with pytest.raises(InjectedDiskFullError) as exc:
            kernel.vfs.write_whole("/shared/seg", b"more", shell.uid)
        assert isinstance(exc.value, FileLimitError)

    def test_short_read_truncates(self, kernel, shell):
        kernel.vfs.write_whole("/data", b"A" * 4096, shell.uid)
        install_injector(
            kernel,
            [FaultPlan(Plane.IO, FaultKind.SHORT_READ, site="read",
                       match="/data", max_faults=1)],
            seed=5,
        )
        fd = kernel.syscalls.open(shell, "/data", O_RDONLY)
        short = kernel.syscalls.read(shell, fd, 4096)
        assert len(short) < 4096
        # max_faults exhausted: the next read is whole again.
        kernel.syscalls.lseek(shell, fd, 0)
        assert len(kernel.syscalls.read(shell, fd, 4096)) == 4096
        kernel.syscalls.close(shell, fd)

    def test_torn_write_persists_prefix_then_raises(self, kernel, shell):
        install_injector(
            kernel,
            [FaultPlan(Plane.IO, FaultKind.TORN_WRITE, site="write",
                       match="/torn")],
            seed=5,
        )
        payload = b"B" * 4096
        fd = kernel.syscalls.open(shell, "/torn", O_WRONLY | O_CREAT)
        with pytest.raises(InjectedIOError) as exc:
            kernel.syscalls.write(shell, fd, payload)
        kernel.syscalls.close(shell, fd)
        assert exc.value.fault_kind == "torn-write"
        remove_injector(kernel)
        persisted = kernel.vfs.read_whole("/torn", shell.uid)
        assert len(persisted) < len(payload)
        assert payload.startswith(persisted)


class TestContainment:
    def _victim(self, system, shell):
        graph = build_module_fanout(system.kernel, shell, width=2,
                                    used=2, module_dir="/shared/fan")
        return graph.executable

    def test_machine_syscall_faults_do_not_kill_kernel(self, system,
                                                       shell):
        kernel = system.kernel
        exe = self._victim(system, shell)
        proc = kernel.create_machine_process("victim", exe)
        injector = install_injector(
            kernel,
            [FaultPlan(Plane.SYSCALL, FaultKind.ERROR, pid=proc.pid,
                       errno="EIO")],
            seed=9,
        )
        kernel.run_until_exit(proc)
        assert injector.stats.triggered >= 1
        assert injector.stats.contained >= 1
        assert "injected=" in kernel.stats()
        # The kernel is fully functional for a clean successor.
        remove_injector(kernel)
        clean = kernel.create_machine_process("clean", exe)
        kernel.run_until_exit(clean)
        assert clean.exit_code == fanout_expected_exit(2)

    def test_spurious_fault_kills_victim_not_kernel(self, system, shell):
        kernel = system.kernel
        exe = self._victim(system, shell)
        proc = kernel.create_machine_process("victim", exe)
        injector = install_injector(
            kernel,
            [FaultPlan(Plane.VMFAULT, FaultKind.SPURIOUS,
                       max_faults=1)],
            seed=9,
        )
        kernel.run_until_exit(proc)
        assert not proc.alive
        assert "SIGSEGV" in proc.death_reason
        assert "Injected" in proc.death_reason or \
            injector.stats.contained >= 1
        remove_injector(kernel)
        clean = kernel.create_machine_process("clean", exe)
        kernel.run_until_exit(clean)
        assert clean.exit_code == fanout_expected_exit(2)

    def test_dropped_fault_delivery_is_contained(self, system, shell):
        kernel = system.kernel
        exe = self._victim(system, shell)
        proc = kernel.create_machine_process("victim", exe)
        injector = install_injector(
            kernel,
            [FaultPlan(Plane.VMFAULT, FaultKind.DROP, pid=proc.pid)],
            seed=9,
        )
        kernel.run_until_exit(proc)
        # Lazy linking needs fault delivery; dropping it kills the
        # victim (unresolved fault), never the kernel.
        assert not proc.alive
        assert injector.stats.triggered >= 1
        assert injector.stats.contained >= 1


class TestRetryBackoff:
    def test_transient_linker_faults_are_absorbed(self, system, shell):
        """A bounded run of transient linker failures is retried with
        deterministic backoff and the workload still succeeds."""
        kernel = system.kernel
        graph = build_module_fanout(kernel, shell, width=2, used=2,
                                    module_dir="/shared/fan")
        injector = install_injector(
            kernel,
            [FaultPlan(Plane.LINKER, FaultKind.ERROR, transient=True,
                       max_faults=3)],
            seed=13,
        )
        proc = kernel.create_machine_process("victim", graph.executable)
        kernel.run_until_exit(proc)
        assert proc.exit_code == fanout_expected_exit(2)
        assert injector.stats.triggered == 3
        assert injector.stats.retries == 3
        assert proc.runtime.ldl.stats.transient_retries == 3
        assert kernel.clock.by_category.get("backoff", 0) > 0

    def test_backoff_cycles_double(self):
        from repro.kernel.timing import Clock

        clock = Clock()
        clock.backoff(1)
        first = clock.by_category["backoff"]
        clock.backoff(2)
        assert clock.by_category["backoff"] == first * 3  # +2x

    def test_backoff_shift_is_capped(self):
        """The exponential wait saturates at MAX_BACKOFF_SHIFT: a long
        retry storm costs linearly in attempts, and a huge attempt
        count can no longer shift the wait into a cycle count that
        dwarfs the simulated machine's lifetime."""
        from repro.kernel.timing import MAX_BACKOFF_SHIFT, Clock

        clock = Clock()
        capped = clock.costs.retry_backoff << MAX_BACKOFF_SHIFT
        clock.backoff(MAX_BACKOFF_SHIFT + 1)  # first capped attempt
        assert clock.by_category["backoff"] == capped
        clock.backoff(10_000)  # absurd attempt count: same capped cost
        assert clock.by_category["backoff"] == capped * 2
        assert capped == 600 << 16  # pinned: ~39.3M cycles

    def test_exhausted_retries_surface_typed(self, system, shell):
        kernel = system.kernel
        graph = build_module_fanout(kernel, shell, width=2, used=2,
                                    module_dir="/shared/fan")
        install_injector(
            kernel,
            [FaultPlan(Plane.LINKER, FaultKind.ERROR, transient=True)],
            seed=13,
        )
        with pytest.raises(InjectedFaultError):
            kernel.create_machine_process("victim", graph.executable)
        # Kernel survives the exhausted-retry failure.
        remove_injector(kernel)
        clean = kernel.create_machine_process("clean", graph.executable)
        kernel.run_until_exit(clean)
        assert clean.exit_code == fanout_expected_exit(2)


# ----------------------------------------------------------------------
# Hypothesis: SFS address-map invariants under injected fault prefixes
# ----------------------------------------------------------------------

_OPS = st.lists(
    st.tuples(st.sampled_from(["create", "unlink"]),
              st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=24,
)

_FAULT_PLANS = (
    FaultPlan(Plane.IO, FaultKind.ENOSPC, site="sfs-create",
              probability=0.3),
    FaultPlan(Plane.IO, FaultKind.ENOSPC, site="sfs-write",
              probability=0.2),
    FaultPlan(Plane.IO, FaultKind.TORN_WRITE, site="write",
              probability=0.2),
)


def _apply_ops(kernel, ops, seed):
    """Create/unlink segment files under injected I/O faults; any op may
    fail with a typed error, never anything else."""
    install_injector(kernel, _FAULT_PLANS, seed=seed)
    for op, index in ops:
        path = f"/shared/seg{index}"
        try:
            if op == "create":
                kernel.vfs.write_whole(path, b"D" * (64 + index), 0)
            else:
                kernel.vfs.unlink(path, 0)
        except (FilesystemError, SyscallError):
            pass  # injected (or genuine ENOENT/EEXIST) — both typed


def _check_map_consistent(kernel):
    """Both translation directions agree for every live segment."""
    live = {}
    for _path, inode in kernel.sfs.segments():
        base = kernel.sfs.address_of_inode(inode.number)
        hit = kernel.sfs.inode_of_address(base)
        assert hit is not None and hit[0].number == inode.number
        live[inode.number] = base
    for base, _span, ino in kernel.sfs.addrmap.entries():
        assert live.get(ino) == base
    assert len(live) == len(list(kernel.sfs.addrmap.entries()))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_OPS, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_btree_addrmap_invariants_under_io_faults(ops, seed):
    """B-tree structural invariants and map bijectivity hold after any
    prefix of injected I/O faults (t=2 maximizes splits/merges)."""
    kernel = boot(addrmap=BTreeAddressMap(t=2)).kernel
    _apply_ops(kernel, ops, seed)
    kernel.sfs.addrmap._tree.check_invariants()
    _check_map_consistent(kernel)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_OPS, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_linear_and_btree_maps_agree_under_faults(ops, seed):
    """Differential oracle: the linear map and the B-tree map reach the
    same state when the same seeded faults hit the same op sequence."""
    linear = boot(addrmap=LinearAddressMap()).kernel
    btree = boot(addrmap=BTreeAddressMap(t=2)).kernel
    _apply_ops(linear, ops, seed)
    _apply_ops(btree, ops, seed)
    assert sorted(linear.sfs.addrmap.entries()) \
        == sorted(btree.sfs.addrmap.entries())
    _check_map_consistent(linear)
    _check_map_consistent(btree)
