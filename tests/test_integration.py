"""Cross-module integration scenarios straight from the paper."""

import pytest

from repro import boot
from repro.bench.workloads import make_shell
from repro.hw.asm import assemble
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem
from repro.toyc import compile_source
from repro.vm.layout import SFS_REGION, is_public_address


def put(kernel, shell, path, source):
    store_object(kernel, shell, path,
                 assemble(source, path.rsplit("/", 1)[-1]))


def put_c(kernel, shell, path, source):
    store_object(kernel, shell, path,
                 compile_source(source, path.rsplit("/", 1)[-1]))


class TestFigure1BuildFlow:
    """Figure 1: shared .c -> cc -> shared.o -> lds for two programs."""

    def test_two_programs_share_one_module(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        # The shared code and data, written in Toy C, compiled once.
        put_c(kernel, shell, "/shared/lib/registry.o", """
            int registrations = 0;
            int register_me(int who) {
                registrations = registrations + 1;
                return registrations * 100 + who;
            }
        """)
        # Two *different* programs, each privately compiled and linked.
        put_c(kernel, shell, "/prog1.o", """
            extern int register_me(int who);
            int main() { return register_me(1); }
        """)
        put_c(kernel, shell, "/prog2.o", """
            extern int register_me(int who);
            extern int registrations;
            int main() { return register_me(2) + registrations; }
        """)
        exe1 = system.lds.link(
            shell,
            [LinkRequest("/prog1.o"),
             LinkRequest("registry.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin1", search_dirs=["/shared/lib"],
        ).executable
        exe2 = system.lds.link(
            shell,
            [LinkRequest("/prog2.o"),
             LinkRequest("registry.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin2", search_dirs=["/shared/lib"],
        ).executable

        p1 = kernel.create_machine_process("p1", exe1)
        assert kernel.run_until_exit(p1) == 101
        p2 = kernel.create_machine_process("p2", exe2)
        # Second registration: 2*100+2 plus registrations==2.
        assert kernel.run_until_exit(p2) == 204

    def test_no_setup_calls_in_source(self):
        """§2: 'no library or system calls for set-up or shared-memory
        access appear in the program source' — the Toy C programs above
        contain only ordinary externs. (Checked textually.)"""
        source = """
            extern int register_me(int who);
            int main() { return register_me(1); }
        """
        banned = ("mmap", "shmget", "open", "attach")
        assert not any(word in source for word in banned)


class TestFigure3AddressSpaces:
    """Public portion identical across processes; private overloaded."""

    def test_public_module_same_address_everywhere(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        put_c(kernel, shell, "/shared/lib/shared_data.o",
              "int shared_cell = 1;")
        put_c(kernel, shell, "/main.o", """
            extern int shared_cell;
            int main() { return shared_cell; }
        """)
        exe = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("shared_data.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin", search_dirs=["/shared/lib"],
        ).executable
        p1 = kernel.create_machine_process("p1", exe)
        p2 = kernel.create_machine_process("p2", exe)
        base1 = p1.runtime.ldl.modules()[1].base
        base2 = p2.runtime.ldl.modules()[1].base
        assert base1 == base2
        assert is_public_address(base1)
        kernel.schedule()

    def test_private_addresses_overloaded(self, system, shell):
        """The same private address holds different data in different
        processes."""
        kernel = system.kernel
        put_c(kernel, shell, "/main.o", """
            int private_cell = 0;
            int main(int argc) {
                private_cell = 7;
                return private_cell;
            }
        """)
        exe = system.lds.link(shell, [LinkRequest("/main.o")],
                              output="/bin").executable
        p1 = kernel.create_machine_process("p1", exe)
        p2 = kernel.create_machine_process("p2", exe)
        address = exe.symbols["private_cell"].value
        assert not is_public_address(address)
        # Before running: both zero. Run p1 only.
        kernel.run_until_exit(p1)
        # p2's copy is untouched even though p1 stored 7 at the same
        # virtual address.
        assert p2.address_space.load_word(address, force=True) == 0
        kernel.run_until_exit(p2)

    def test_mapping_report_shows_figure3_regions(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        put_c(kernel, shell, "/shared/lib/shared_data.o",
              "int shared_cell = 1;")
        put_c(kernel, shell, "/main.o", """
            extern int shared_cell;
            int main() { return shared_cell; }
        """)
        exe = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("shared_data.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin", search_dirs=["/shared/lib"],
        ).executable
        proc = kernel.create_machine_process("p", exe)
        text = proc.address_space.describe()
        assert ":text" in text
        assert ":stack" in text
        assert "shared_data" in text


class TestForkSemantics:
    """§5: private segments copied, public segments shared by fork."""

    def test_fork_private_copied_public_shared(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        put_c(kernel, shell, "/shared/lib/pub.o", "int pub_cell = 0;")
        put_c(kernel, shell, "/main.o", """
            extern int pub_cell;
            int priv_cell = 0;
            int getpid_sim() { return 0; }
            int main() {
                int child;
                priv_cell = 1;
                pub_cell = 1;
                child = fork();
                if (child == 0) {
                    priv_cell = 100;
                    pub_cell = 100;
                    return 0;
                }
                return 0;
            }
        """)
        from repro.apps.libsys import build_libsys

        exe = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("pub.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin", search_dirs=["/shared/lib"],
            archives=[build_libsys()],
        ).executable
        parent = kernel.create_machine_process("parent", exe)
        kernel.schedule()
        children = [p for p in kernel.processes.values()
                    if p.ppid == parent.pid]
        assert len(children) == 1
        priv_addr = exe.symbols["priv_cell"].value
        # Parent's private copy kept 1; the child wrote 100 to its own.
        # (Both exited; read the segment file for the public cell.)
        meta_exports = None
        from repro.linker.segments import read_segment_meta

        meta, base, _len = read_segment_meta(kernel, shell,
                                             "/shared/lib/pub")
        pub_addr = meta.symbols["pub_cell"].value
        offset = pub_addr - base
        raw = kernel.vfs.read_whole("/shared/lib/pub")[offset:offset + 4]
        assert int.from_bytes(raw, "little") == 100  # child's write stuck
        del priv_addr, meta_exports

    def test_fork_private_isolation_observable(self, kernel):
        """Observe the parent/child private divergence directly."""
        source = """
            .text
            .globl main
        main:
            li v0, 6            # fork
            syscall
            beqz v0, child
            # parent waits by spinning on the flag its child CANNOT set
            # (private!); it must still read 0 after a while.
            li t0, 50
        spin:
            addi t0, t0, -1
            bgtz t0, spin
            lw t1, flag
            li v0, 1
            move a0, t1
            syscall
        child:
            li t2, 1
            sw t2, flag
            li v0, 1
            li a0, 77
            syscall
            .data
            .globl flag
        flag: .word 0
        """
        from repro.linker.baseline_ld import link_static

        image = link_static([assemble(source, "m.o")])
        parent = kernel.create_machine_process("p", image)
        kernel.schedule()
        assert parent.exit_code == 0  # never saw the child's store


class TestPointerRichSharing:
    """§4: pointer-rich structures shared without linearization."""

    def test_cross_process_linked_structure(self, kernel):
        shell_a = make_shell(kernel, "builder")
        shell_b = make_shell(kernel, "consumer")
        runtime_a = runtime_for(kernel, shell_a)
        mem_a = Mem(kernel, shell_a)
        base = runtime_a.create_segment("/shared/tree", 64 * 1024)
        # A small binary tree with absolute child pointers.
        #   node: [left][right][value]
        nodes = {}

        def node(offset, left, right, value):
            address = base + offset
            mem_a.store_u32(address, left)
            mem_a.store_u32(address + 4, right)
            mem_a.store_u32(address + 8, value)
            nodes[offset] = address
            return address

        leaf1 = node(0x100, 0, 0, 10)
        leaf2 = node(0x200, 0, 0, 30)
        root = node(0x300, leaf1, leaf2, 20)
        mem_a.store_u32(base, root)

        runtime_for(kernel, shell_b)
        mem_b = Mem(kernel, shell_b)

        def in_order(address):
            if address == 0:
                return []
            left = mem_b.load_u32(address)
            right = mem_b.load_u32(address + 4)
            value = mem_b.load_u32(address + 8)
            return in_order(left) + [value] + in_order(right)

        assert in_order(mem_b.load_u32(base)) == [10, 20, 30]

    def test_pointers_across_segments(self, kernel):
        """Following a pointer from one segment into another maps the
        second segment on demand."""
        shell = make_shell(kernel)
        runtime = runtime_for(kernel, shell)
        mem = Mem(kernel, shell)
        base_a = runtime.create_segment("/shared/a", 4096)
        base_b = runtime.create_segment("/shared/b", 4096)
        mem.store_u32(base_b, 777)
        mem.store_u32(base_a, base_b)  # cross-segment pointer
        # Fresh process follows a -> b; both mapped on demand.
        other = make_shell(kernel, "other")
        runtime_for(kernel, other)
        mem_other = Mem(kernel, other)
        pointer = mem_other.load_u32(base_a)
        assert mem_other.load_u32(pointer) == 777
        assert other.address_space.is_mapped(base_a)
        assert other.address_space.is_mapped(base_b)


class TestManualGarbageCollection:
    """§5: segments are reclaimed manually; the SFS supports perusal."""

    def test_peruse_and_cleanup(self, kernel):
        shell = make_shell(kernel)
        runtime = runtime_for(kernel, shell)
        for index in range(5):
            runtime.create_segment(f"/shared/junk{index}", 4096)
        assert len(kernel.sfs.segments()) == 5
        for path, _inode in kernel.sfs.segments():
            runtime.delete_segment("/shared" + path)
        assert kernel.sfs.segments() == []

    def test_persistence_until_explicit_destruction(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        put_c(kernel, shell, "/shared/lib/keep.o", "int kept = 5;")
        put_c(kernel, shell, "/main.o", """
            extern int kept;
            int main() { return kept; }
        """)
        exe = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("keep.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin", search_dirs=["/shared/lib"],
        ).executable
        proc = kernel.create_machine_process("p", exe)
        kernel.run_until_exit(proc)
        # Process gone; module remains ("public modules are persistent").
        assert kernel.vfs.exists("/shared/lib/keep")
        runtime_for(kernel, shell).delete_segment("/shared/lib/keep")
        assert not kernel.vfs.exists("/shared/lib/keep")


class TestBootRecovery:
    def test_address_map_survives_crash(self, system, shell):
        """§3: the filename/address mapping survives system crashes via
        the boot-time scan."""
        kernel = system.kernel
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/durable", 4096)
        Mem(kernel, shell).store_u32(base, 0xFEED)
        # "Crash": wipe the kernel's in-memory lookup table.
        kernel.sfs.addrmap.rebuild([])
        assert kernel.sfs.inode_of_address(base) is None
        # Boot-time scan restores it.
        kernel.sfs.rebuild_address_map()
        hit = kernel.sfs.inode_of_address(base)
        assert hit is not None
        path, _off = kernel.sfs.path_of_address(base)
        assert path == "/durable"
