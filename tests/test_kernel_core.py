"""Kernel tests: clock, processes, scheduling, faults, termination."""

import pytest

from repro.errors import KernelError, NoSuchProcessError
from repro.hw.asm import assemble
from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcessState
from repro.kernel.signals import Signal
from repro.kernel.timing import Clock, CostModel
from repro.linker.baseline_ld import link_static
from repro.runtime.libshared import attach_runtime
from repro.vm.faults import AccessKind, PageFaultError


class TestClock:
    def test_categories_accumulate(self):
        clock = Clock()
        clock.syscall()
        clock.syscall()
        clock.copy(100)
        assert clock.by_category["syscalls"] == 2 * clock.costs.syscall
        assert clock.by_category["copies"] == 25
        assert clock.cycles == clock.by_category["syscalls"] + 25

    def test_copy_rounds_up_to_words(self):
        clock = Clock()
        clock.copy(1)
        assert clock.by_category["copies"] == 1

    def test_report_mentions_categories(self):
        clock = Clock()
        clock.page_fault()
        assert "faults" in clock.report()

    def test_custom_cost_model(self):
        clock = Clock(CostModel(syscall=7))
        clock.syscall()
        assert clock.cycles == 7


def _exit_program(code):
    source = f"""
        .text
        .globl main
    main:
        li v0, {code}
        jr ra
    """
    return link_static([assemble(source, "main.o")])


class TestProcesses:
    def test_machine_process_runs_to_exit(self):
        kernel = Kernel()
        proc = kernel.create_machine_process("p", _exit_program(7))
        assert kernel.run_until_exit(proc) == 7
        assert proc.state is ProcessState.ZOMBIE

    def test_pids_are_unique_and_increasing(self):
        kernel = Kernel()
        a = kernel.create_machine_process("a", _exit_program(0))
        b = kernel.create_machine_process("b", _exit_program(0))
        assert b.pid == a.pid + 1

    def test_process_lookup(self):
        kernel = Kernel()
        proc = kernel.create_machine_process("p", _exit_program(0))
        assert kernel.process(proc.pid) is proc
        with pytest.raises(NoSuchProcessError):
            kernel.process(999)

    def test_native_process_result(self):
        kernel = Kernel()

        def body(_kernel, proc):
            proc.stdout.extend(b"hi")
            yield
            return 42

        proc = kernel.create_native_process("n", body)
        assert kernel.run_until_exit(proc) == 0
        assert proc.native.result == 42
        assert proc.stdout_text() == "hi"

    def test_native_process_error_terminates(self):
        kernel = Kernel()

        def body(_kernel, _proc):
            yield
            raise_error()

        def raise_error():
            from repro.errors import SyscallError

            raise SyscallError("ENOENT", "synthetic")

        proc = kernel.create_native_process("n", body)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "ENOENT" in proc.death_reason

    def test_schedule_runs_everything(self):
        kernel = Kernel()
        procs = [kernel.create_machine_process(f"p{i}", _exit_program(i))
                 for i in range(5)]
        kernel.schedule()
        assert [p.exit_code for p in procs] == list(range(5))

    def test_round_robin_interleaves(self):
        kernel = Kernel()
        order = []

        def make_body(tag):
            def body(_kernel, _proc):
                for _ in range(3):
                    order.append(tag)
                    yield
            return body

        kernel.create_native_process("a", make_body("a"))
        kernel.create_native_process("b", make_body("b"))
        kernel.schedule()
        assert order[:4] == ["a", "b", "a", "b"]

    def test_terminate_releases_memory(self):
        kernel = Kernel()
        proc = kernel.create_machine_process("p", _exit_program(0))
        assert kernel.physmem.allocated > 0
        kernel.run_until_exit(proc)
        assert kernel.physmem.allocated == 0


class TestFaults:
    def test_unhandled_fault_kills(self):
        source = """
            .text
            .globl main
        main:
            li t0, 0x20000000
            lw t1, 0(t0)
            jr ra
        """
        kernel = Kernel()
        image = link_static([assemble(source, "m.o")])
        proc = kernel.create_machine_process("p", image)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason
        assert "0x20000000" in proc.death_reason

    def test_handler_resolves_and_restarts(self):
        source = """
            .text
            .globl main
        main:
            li t0, 0x20000000
            lw t1, 0(t0)
            move v0, t1
            jr ra
        """
        kernel = Kernel()
        image = link_static([assemble(source, "m.o")])
        proc = kernel.create_machine_process("p", image)

        def handler(process, info):
            if info.address != 0x20000000:
                return False
            process.address_space.map(0x20000000, 4096, prot=0x7)
            process.address_space.store_word(0x20000000, 123, force=True)
            return True

        proc.push_handler(Signal.SIGSEGV, handler)
        assert kernel.run_until_exit(proc) == 123

    def test_handler_chain_order(self):
        kernel = Kernel()
        proc = kernel.create_machine_process("p", _exit_program(0))
        calls = []

        def first(_process, _info):
            calls.append("first")
            return False

        def second(_process, _info):
            calls.append("second")
            return True

        proc.append_handler(Signal.SIGSEGV, first)
        proc.append_handler(Signal.SIGSEGV, second)
        fault = PageFaultError(0x1234, AccessKind.READ, present=False)
        assert kernel.deliver_fault(proc, fault)
        assert calls == ["first", "second"]

    def test_fault_loop_detected(self):
        source = """
            .text
            .globl main
        main:
            li t0, 0x20000000
            lw t1, 0(t0)
            jr ra
        """
        kernel = Kernel()
        image = link_static([assemble(source, "m.o")])
        proc = kernel.create_machine_process("p", image)
        # A handler that claims success but never fixes anything.
        proc.push_handler(Signal.SIGSEGV, lambda _p, _i: True)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "fault loop" in proc.death_reason

    def test_run_with_faults_native(self):
        kernel = Kernel()
        attach_runtime(kernel)

        def body(_kernel, proc):
            proc.address_space.map(0x20000000, 4096, prot=0x7)
            yield
            return None

        proc = kernel.create_native_process("n", body)

        def fixer(process, info):
            process.address_space.store_word(info.address, 55, force=True)
            process.address_space.mprotect(info.address & ~0xFFF, 4096,
                                           0x7)
            return True

        # No mapping at 0x21000000: handler creates one on demand.
        def mapper(process, info):
            process.address_space.map(info.address & ~0xFFF, 4096,
                                      prot=0x7)
            return True

        proc.push_handler(Signal.SIGSEGV, mapper)
        value = kernel.run_with_faults(
            proc, lambda: proc.address_space.load_word(0x21000000)
        )
        assert value == 0
        del fixer

    def test_deadlock_detection(self):
        kernel = Kernel()

        def body(k, proc):
            yield
            k.semaphores.get(1, 0).p(proc)  # blocks forever

        kernel.create_native_process("n", body)
        with pytest.raises(KernelError):
            kernel.schedule()


class TestMachineTraps:
    def test_break_kills(self):
        source = ".text\n.globl main\nmain:\nbreak\n"
        kernel = Kernel()
        proc = kernel.create_machine_process(
            "p", link_static([assemble(source, "m.o")])
        )
        kernel.run_until_exit(proc)
        assert "break" in proc.death_reason

    def test_divide_by_zero_kills(self):
        source = """
            .text
            .globl main
        main:
            li t0, 1
            div t1, t0, zero
            jr ra
        """
        kernel = Kernel()
        proc = kernel.create_machine_process(
            "p", link_static([assemble(source, "m.o")])
        )
        kernel.run_until_exit(proc)
        assert "SIGFPE" in proc.death_reason
