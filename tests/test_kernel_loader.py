"""exec/loader tests."""

import pytest

from repro.errors import KernelError
from repro.hw.asm import assemble
from repro.kernel.loader import DEFAULT_HEAP_SIZE, STACK_SIZE, \
    load_executable
from repro.linker.baseline_ld import link_static
from repro.objfile.format import ObjectFile, ObjectKind
from repro.vm.layout import STACK_TOP, TEXT_BASE


SOURCE = """
    .text
    .globl main
main:
    lw v0, answer
    jr ra
    .data
    .globl answer
answer: .word 17
    .bss
scratch: .space 4096
"""


@pytest.fixture
def image():
    return link_static([assemble(SOURCE, "m.o")])


class TestLoader:
    def test_sections_mapped(self, kernel, image):
        proc = kernel.create_machine_process("p", image)
        names = [m.name for m in proc.address_space.mappings()]
        assert any("text" in n for n in names)
        assert any("data" in n for n in names)
        assert any("stack" in n for n in names)

    def test_text_not_writable_data_not_executable(self, kernel, image):
        from repro.vm.address_space import PROT_EXEC, PROT_WRITE

        proc = kernel.create_machine_process("p", image)
        text_prot = proc.address_space.page_prot(TEXT_BASE)
        data_prot = proc.address_space.page_prot(
            image.layout["data"].base
        )
        assert not text_prot & PROT_WRITE
        assert not data_prot & PROT_EXEC

    def test_entry_and_stack_registers(self, kernel, image):
        proc = kernel.create_machine_process("p", image)
        assert proc.cpu.pc == image.symbols["_start"].value
        assert proc.cpu.regs[29] == STACK_TOP - 16

    def test_brk_above_bss(self, kernel, image):
        proc = kernel.create_machine_process("p", image)
        bss = image.layout["bss"]
        assert proc.brk >= bss.end
        # sbrk can grow within the preallocated heap window.
        old = kernel.syscalls.sbrk(proc, 4096)
        assert proc.brk == old + 4096
        assert proc.brk <= old + DEFAULT_HEAP_SIZE

    def test_stack_size(self, kernel, image):
        proc = kernel.create_machine_process("p", image)
        stack = [m for m in proc.address_space.mappings()
                 if "stack" in m.name][0]
        assert stack.end - stack.start == STACK_SIZE

    def test_program_runs(self, kernel, image):
        proc = kernel.create_machine_process("p", image)
        assert kernel.run_until_exit(proc) == 17

    def test_relocatable_rejected(self, kernel):
        relocatable = assemble(SOURCE, "m.o")
        with pytest.raises(KernelError):
            kernel.create_machine_process("p", relocatable)

    def test_missing_entry_rejected(self, kernel, image):
        broken = image.clone()
        broken.entry_symbol = "nonexistent"
        with pytest.raises(KernelError):
            kernel.create_machine_process("p", broken)

    def test_missing_layout_rejected(self, kernel, image):
        broken = ObjectFile("b", ObjectKind.EXECUTABLE)
        broken.entry_symbol = "main"
        with pytest.raises(KernelError):
            load_executable(
                kernel.create_native_process("n", _noop), broken
            )


def _noop(_kernel, _proc):
    return
    yield


class TestSpawnFromFilesystem:
    def test_spawn_runs_the_on_disk_executable(self, system, shell):
        """The shell path: lds writes /bin/prog; spawn execs it."""
        from repro.linker.lds import LinkRequest, store_object

        kernel = system.kernel
        kernel.vfs.makedirs("/bin")
        store_object(kernel, shell, "/m.o", assemble(SOURCE, "m.o"))
        system.lds.link(shell, [LinkRequest("/m.o")],
                        output="/bin/prog")
        proc = kernel.spawn("/bin/prog")
        assert proc.name == "prog"
        assert kernel.run_until_exit(proc) == 17

    def test_spawn_nonexistent(self, kernel):
        from repro.errors import FileNotFoundSimError

        with pytest.raises(FileNotFoundSimError):
            kernel.spawn("/bin/ghost")

    def test_spawn_non_executable(self, kernel):
        from repro.errors import ObjectFormatError

        kernel.vfs.write_whole("/bin2", b"#!/bin/sh\necho nope")
        with pytest.raises(ObjectFormatError):
            kernel.spawn("/bin2")
