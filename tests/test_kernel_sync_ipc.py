"""Synchronization (file locks, semaphores) and IPC (queues, pipes)."""

import pytest

from repro.errors import SyscallError
from repro.fs.vfs import O_CREAT, O_RDONLY
from repro.hw.asm import assemble
from repro.kernel.ipc import MessageQueue, Pipe
from repro.kernel.process import ProcessState
from repro.kernel.sync import Semaphore, WouldBlock
from repro.kernel.syscalls import FLOCK_EX, FLOCK_TRY, FLOCK_UN
from repro.linker.baseline_ld import link_static


class TestFileLocks:
    def test_acquire_release(self, kernel, shell):
        sys = kernel.syscalls
        fd = sys.open(shell, "/lockfile", O_RDONLY | O_CREAT)
        assert sys.flock(shell, fd, FLOCK_EX)
        assert sys.flock(shell, fd, FLOCK_UN)

    def test_reentrant_for_owner(self, kernel, shell):
        sys = kernel.syscalls
        fd = sys.open(shell, "/lockfile", O_RDONLY | O_CREAT)
        assert sys.flock(shell, fd, FLOCK_EX)
        assert sys.flock(shell, fd, FLOCK_EX)  # same pid, no deadlock

    def test_trylock_contention(self, kernel, shell):
        sys = kernel.syscalls
        other = kernel.create_native_process("other", _noop_body)
        fd1 = sys.open(shell, "/lockfile", O_RDONLY | O_CREAT)
        fd2 = sys.open(other, "/lockfile", O_RDONLY)
        assert sys.flock(shell, fd1, FLOCK_EX)
        assert not sys.flock(other, fd2, FLOCK_TRY)
        sys.flock(shell, fd1, FLOCK_UN)
        assert sys.flock(other, fd2, FLOCK_TRY)

    def test_unlock_not_owner_rejected(self, kernel, shell):
        sys = kernel.syscalls
        other = kernel.create_native_process("other", _noop_body)
        fd1 = sys.open(shell, "/lockfile", O_RDONLY | O_CREAT)
        fd2 = sys.open(other, "/lockfile", O_RDONLY)
        sys.flock(shell, fd1, FLOCK_EX)
        with pytest.raises(SyscallError):
            sys.flock(other, fd2, FLOCK_UN)

    def test_blocking_handoff_wakes_waiter(self, kernel, shell):
        sys = kernel.syscalls
        other = kernel.create_native_process("other", _noop_body)
        fd1 = sys.open(shell, "/lockfile", O_RDONLY | O_CREAT)
        fd2 = sys.open(other, "/lockfile", O_RDONLY)
        sys.flock(shell, fd1, FLOCK_EX)
        with pytest.raises(WouldBlock):
            kernel.locks.acquire(other, shell.fds[fd1].inode,
                                 blocking=True)
        other.state = ProcessState.BLOCKED
        sys.flock(shell, fd1, FLOCK_UN)
        assert other.state is ProcessState.READY  # woken
        # Ownership was handed over directly.
        assert sys.flock(other, fd2, FLOCK_EX)


class TestSemaphores:
    def test_counting(self, kernel, shell):
        sem = Semaphore(1, value=2)
        assert sem.try_p(shell)
        assert sem.try_p(shell)
        assert not sem.try_p(shell)
        sem.v()
        assert sem.try_p(shell)

    def test_handoff_grants_to_woken(self, kernel, shell):
        other = kernel.create_native_process("other", _noop_body)
        sem = Semaphore(1, value=0)
        with pytest.raises(WouldBlock):
            sem.p(other)
        woken = sem.v()
        assert woken is other
        # The granted count belongs to `other`, not to anyone else.
        assert not sem.try_p(shell)
        assert sem.try_p(other)

    def test_negative_initial_rejected(self):
        from repro.errors import KernelError

        with pytest.raises(KernelError):
            Semaphore(1, value=-1)

    def test_machine_processes_synchronize(self, kernel):
        """Two machine processes increment a private counter under a
        semaphore; the total must be exact despite preemption."""
        source = """
            .text
            .globl main
        main:
            li a0, 7
            li a1, 1
            li v0, 26          # sem_get(7, 1)
            syscall
            li s0, 200         # iterations
        loop:
            li a0, 7
            li v0, 27          # sem_p
            syscall
            lw t0, counter
            addi t0, t0, 1
            sw t0, counter
            li a0, 7
            li v0, 28          # sem_v
            syscall
            addi s0, s0, -1
            bgtz s0, loop
            lw v0, counter
            jr ra
            .data
            .globl counter
        counter: .word 0
        """
        image = link_static([assemble(source, "m.o")])
        # Use a tiny quantum to force preemption inside critical regions.
        kernel.quantum = 7
        a = kernel.create_machine_process("a", image)
        b = kernel.create_machine_process("b", image)
        kernel.schedule()
        assert a.death_reason is None and b.death_reason is None
        # Private data: each process has its own counter copy, but the
        # semaphore is system-wide; both complete all 200 iterations.
        assert a.exit_code == 200
        assert b.exit_code == 200


class TestMessageQueues:
    def test_fifo_order(self, kernel, shell):
        sys = kernel.syscalls
        qid = sys.msgget(shell, 5)
        sys.msgsnd(shell, qid, b"one")
        sys.msgsnd(shell, qid, b"two")
        assert sys.msgrcv(shell, qid) == b"one"
        assert sys.msgrcv(shell, qid) == b"two"

    def test_empty_receive_blocks(self, kernel, shell):
        queue = MessageQueue(1)
        with pytest.raises(WouldBlock):
            queue.receive(shell, blocking=True)
        assert queue.receive(shell, blocking=False) is None

    def test_full_send_blocks(self, kernel, shell):
        queue = MessageQueue(1)
        big = b"x" * (64 * 1024)
        queue.send(shell, big, blocking=False)
        assert not queue.send(shell, b"y", blocking=False)
        with pytest.raises(WouldBlock):
            queue.send(shell, b"y", blocking=True)

    def test_send_wakes_reader(self, kernel, shell):
        sys = kernel.syscalls
        reader = kernel.create_native_process("r", _noop_body)
        qid = sys.msgget(shell, 5)
        queue = kernel.queues.get(5)
        with pytest.raises(WouldBlock):
            queue.receive(reader, blocking=True)
        reader.state = ProcessState.BLOCKED
        sys.msgsnd(shell, qid, b"ping")
        assert reader.state is ProcessState.READY

    def test_message_costs_charged(self, kernel, shell):
        sys = kernel.syscalls
        qid = sys.msgget(shell, 5)
        before = kernel.clock.by_category.get("messages", 0)
        sys.msgsnd(shell, qid, b"x" * 100)
        assert kernel.clock.by_category["messages"] > before
        assert kernel.clock.by_category.get("copies", 0) >= 25

    def test_machine_producer_consumer(self, kernel):
        producer_src = """
            .text
            .globl main
        main:
            li a0, 9
            li v0, 23          # msgget(9)
            syscall
            li a0, 9
            la a1, msg
            li a2, 4
            li v0, 24          # msgsnd
            syscall
            li v0, 0
            jr ra
            .data
        msg: .asciiz "ping"
        """
        consumer_src = """
            .text
            .globl main
        main:
            li a0, 9
            li v0, 23
            syscall
            li a0, 9
            la a1, buf
            li a2, 16
            li v0, 25          # msgrcv (blocks until producer sends)
            syscall
            la t0, buf
            lbu v0, 0(t0)
            jr ra
            .bss
        buf: .space 16
        """
        consumer = kernel.create_machine_process(
            "c", link_static([assemble(consumer_src, "c.o")])
        )
        kernel.create_machine_process(
            "p", link_static([assemble(producer_src, "p.o")])
        )
        kernel.schedule()
        assert consumer.exit_code == ord("p")


class TestPipes:
    def test_write_read(self, kernel, shell):
        pipe = Pipe()
        assert pipe.write(shell, b"hello") == 5
        assert pipe.read(shell, 3) == b"hel"
        assert pipe.read(shell, 10) == b"lo"

    def test_read_empty_blocks(self, kernel, shell):
        pipe = Pipe()
        with pytest.raises(WouldBlock):
            pipe.read(shell, 1)

    def test_eof_when_writer_closed(self, kernel, shell):
        pipe = Pipe()
        pipe.write_open = False
        assert pipe.read(shell, 10) == b""

    def test_epipe_when_reader_closed(self, kernel, shell):
        pipe = Pipe()
        pipe.read_open = False
        with pytest.raises(SyscallError):
            pipe.write(shell, b"x")

    def test_capacity_limit(self, kernel, shell):
        pipe = Pipe()
        written = pipe.write(shell, b"x" * (100 * 1024), blocking=False)
        assert written == 64 * 1024
        assert pipe.write(shell, b"y", blocking=False) == 0


def _noop_body(_kernel, _proc):
    return
    yield  # pragma: no cover
