"""Syscall layer tests: files, memory, Hemlock extensions, machine ABI."""

import pytest

from repro.errors import SyscallError
from repro.fs.vfs import O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.hw.asm import assemble
from repro.linker.baseline_ld import link_static
from repro.sfs.sharedfs import SEGMENT_SPAN, SFS_BASE
from repro.vm.address_space import MAP_SHARED, PROT_RW


@pytest.fixture
def sys(kernel):
    return kernel.syscalls


class TestFileSyscalls:
    def test_open_read_write_close(self, kernel, shell, sys):
        fd = sys.open(shell, "/f", O_WRONLY | O_CREAT)
        assert sys.write(shell, fd, b"hello") == 5
        sys.close(shell, fd)
        fd = sys.open(shell, "/f", O_RDONLY)
        assert sys.read(shell, fd, 100) == b"hello"
        sys.close(shell, fd)

    def test_bad_fd(self, shell, sys):
        with pytest.raises(SyscallError) as info:
            sys.read(shell, 99, 10)
        assert info.value.errno == "EBADF"

    def test_write_to_stdout_captured(self, shell, sys):
        sys.write(shell, 1, b"console!")
        assert shell.stdout_text() == "console!"

    def test_pread_pwrite(self, kernel, shell, sys):
        fd = sys.open(shell, "/f", O_RDWR | O_CREAT)
        sys.pwrite(shell, fd, 10, b"xy")
        assert sys.pread(shell, fd, 10, 2) == b"xy"
        assert sys.fstat(shell, fd).st_size == 12

    def test_lseek(self, kernel, shell, sys):
        fd = sys.open(shell, "/f", O_RDWR | O_CREAT)
        sys.write(shell, fd, b"abcdef")
        sys.lseek(shell, fd, 1)
        assert sys.read(shell, fd, 2) == b"bc"

    def test_directory_calls(self, kernel, shell, sys):
        sys.mkdir(shell, "/d")
        sys.mkdir(shell, "/d/e")
        assert sys.listdir(shell, "/d") == ["e"]
        sys.rmdir(shell, "/d/e")
        assert sys.listdir(shell, "/d") == []

    def test_chdir_and_relative_paths(self, kernel, shell, sys):
        sys.mkdir(shell, "/work")
        sys.chdir(shell, "/work")
        assert shell.cwd == "/work"
        fd = sys.open(shell, "rel.txt", O_WRONLY | O_CREAT)
        sys.close(shell, fd)
        assert kernel.vfs.exists("/work/rel.txt")

    def test_chdir_to_file_rejected(self, kernel, shell, sys):
        kernel.vfs.write_whole("/f", b"x")
        with pytest.raises(SyscallError):
            sys.chdir(shell, "/f")

    def test_symlink_and_readlink(self, kernel, shell, sys):
        kernel.vfs.write_whole("/t", b"x")
        sys.symlink(shell, "/t", "/l")
        assert sys.readlink(shell, "/l") == "/t"

    def test_rename_unlink(self, kernel, shell, sys):
        kernel.vfs.write_whole("/a", b"1")
        sys.rename(shell, "/a", "/b")
        sys.unlink(shell, "/b")
        assert not kernel.vfs.exists("/a")
        assert not kernel.vfs.exists("/b")

    def test_cost_accounting(self, kernel, shell, sys):
        before = kernel.clock.cycles
        fd = sys.open(shell, "/f", O_WRONLY | O_CREAT)
        sys.write(shell, fd, b"x" * 4000)
        after = kernel.clock.cycles
        assert after - before >= kernel.clock.costs.syscall * 2
        assert kernel.clock.by_category.get("file_io", 0) >= 1000

    def test_cold_file_pays_disk_seek(self, kernel, shell, sys):
        kernel.vfs.write_whole("/cold", b"x")
        before = kernel.clock.by_category.get("disk", 0)
        fd = sys.open(shell, "/cold", O_RDONLY)
        sys.close(shell, fd)
        assert kernel.clock.by_category["disk"] == \
            before + kernel.clock.costs.disk_seek
        # Second open is warm.
        fd = sys.open(shell, "/cold", O_RDONLY)
        sys.close(shell, fd)
        assert kernel.clock.by_category["disk"] == \
            before + kernel.clock.costs.disk_seek


class TestMemorySyscalls:
    def test_mmap_file_shared(self, kernel, shell, sys):
        kernel.vfs.write_whole("/shared/seg", b"\x2a\x00\x00\x00")
        fd = sys.open(shell, "/shared/seg", O_RDWR)
        base = sys.mmap(shell, 0x40000000, 4096, PROT_RW, MAP_SHARED, fd)
        assert base == 0x40000000
        assert shell.address_space.load_word(base) == 42
        shell.address_space.store_word(base, 77)
        sys.close(shell, fd)
        assert kernel.vfs.read_whole("/shared/seg")[:4] == \
            (77).to_bytes(4, "little")

    def test_munmap(self, kernel, shell, sys):
        base = sys.mmap(shell, 0x20000000, 4096, PROT_RW, 2)
        sys.munmap(shell, base, 4096)
        assert not shell.address_space.is_mapped(base)

    def test_mprotect(self, kernel, shell, sys):
        base = sys.mmap(shell, 0x20000000, 4096, PROT_RW, 2)
        sys.mprotect(shell, base, 4096, 0)
        assert shell.address_space.page_prot(base) == 0


class TestHemlockExtensions:
    def test_addr_to_path(self, kernel, shell, sys):
        kernel.vfs.makedirs("/shared/lib")
        kernel.vfs.write_whole("/shared/lib/seg", b"data")
        ino = kernel.vfs.stat("/shared/lib/seg").st_ino
        base = SFS_BASE + ino * SEGMENT_SPAN
        path, offset = sys.addr_to_path(shell, base + 42)
        assert path == "/shared/lib/seg"
        assert offset == 42

    def test_addr_to_path_private_address_rejected(self, shell, sys):
        with pytest.raises(SyscallError) as info:
            sys.addr_to_path(shell, 0x1000_0000)
        assert info.value.errno == "EFAULT"

    def test_addr_to_path_unbacked_address(self, shell, sys):
        with pytest.raises(SyscallError) as info:
            sys.addr_to_path(shell, SFS_BASE + 42)
        assert info.value.errno == "ENOENT"

    def test_path_to_addr(self, kernel, shell, sys):
        kernel.vfs.write_whole("/shared/seg", b"x")
        base = sys.path_to_addr(shell, "/shared/seg")
        ino = kernel.vfs.stat("/shared/seg").st_ino
        assert base == SFS_BASE + ino * SEGMENT_SPAN

    def test_path_to_addr_rejects_rootfs(self, kernel, shell, sys):
        kernel.vfs.write_whole("/plain", b"x")
        with pytest.raises(SyscallError) as info:
            sys.path_to_addr(shell, "/plain")
        assert info.value.errno == "EINVAL"

    def test_open_by_address(self, kernel, shell, sys):
        kernel.vfs.write_whole("/shared/seg", b"payload")
        base = sys.path_to_addr(shell, "/shared/seg")
        fd = sys.open_by_address(shell, base + 3)
        assert sys.read(shell, fd, 100) == b"payload"

    def test_roundtrip_stat_identity(self, kernel, shell, sys):
        """'stat already returns an inode number' — the forward map."""
        kernel.vfs.write_whole("/shared/seg", b"x")
        base = sys.path_to_addr(shell, "/shared/seg")
        path, _ = sys.addr_to_path(shell, base)
        assert sys.path_to_addr(shell, path) == base


class TestMachineAbi:
    def _run(self, kernel, source, env=None):
        image = link_static([assemble(source, "m.o")])
        proc = kernel.create_machine_process("p", image, env=env)
        code = kernel.run_until_exit(proc)
        return proc, code

    def test_write_and_exit(self, kernel):
        source = """
            .text
            .globl main
        main:
            li a0, 1
            la a1, msg
            li a2, 5
            li v0, 2
            syscall
            li v0, 9
            jr ra
            .data
        msg: .asciiz "hello"
        """
        proc, code = self._run(kernel, source)
        assert code == 9
        assert proc.stdout_text() == "hello"

    def test_open_write_read_file(self, kernel):
        source = """
            .text
            .globl main
        main:
            la a0, path
            li a1, 0x241        # O_WRONLY|O_CREAT|O_TRUNC
            li a2, 0x1A4        # 0o644
            li v0, 4
            syscall
            move s0, v0         # fd
            move a0, s0
            la a1, payload
            li a2, 4
            li v0, 2
            syscall
            move a0, s0
            li v0, 5
            syscall
            li v0, 0
            jr ra
            .data
        path: .asciiz "/out.bin"
        payload: .asciiz "abcd"
        """
        proc, code = self._run(kernel, source)
        assert code == 0
        assert kernel.vfs.read_whole("/out.bin") == b"abcd"

    def test_errno_reporting(self, kernel):
        source = """
            .text
            .globl main
        main:
            la a0, path
            li a1, 0            # O_RDONLY, no O_CREAT
            li a2, 0
            li v0, 4
            syscall
            move v0, v1         # return errno (ENOENT = 2)
            jr ra
            .data
        path: .asciiz "/does/not/exist"
        """
        _proc, code = self._run(kernel, source)
        assert code == 2

    def test_getenv(self, kernel):
        source = """
            .text
            .globl main
        main:
            la a0, name
            la a1, buffer
            li a2, 32
            li v0, 30
            syscall
            la a0, buffer
            lbu v0, 0(a0)
            jr ra
            .data
        name: .asciiz "MARKER"
            .bss
        buffer: .space 32
        """
        _proc, code = self._run(kernel, source, env={"MARKER": "Zed"})
        assert code == ord("Z")

    def test_getpid_and_fork(self, kernel):
        source = """
            .text
            .globl main
        main:
            li v0, 6            # fork
            syscall
            beqz v0, child
            # parent: exit 1
            li v0, 1
            li a0, 1
            syscall
        child:
            li v0, 1
            li a0, 2
            syscall
        """
        image = link_static([assemble(source, "m.o")])
        parent = kernel.create_machine_process("p", image)
        kernel.schedule()
        codes = sorted(p.exit_code for p in kernel.processes.values()
                       if p.cpu is not None)
        assert codes == [1, 2]

    def test_unknown_syscall_errno(self, kernel):
        source = """
            .text
            .globl main
        main:
            li v0, 222
            syscall
            move v0, v1
            jr ra
        """
        _proc, code = self._run(kernel, source)
        assert code == 22  # EINVAL
