"""wait(2): parents reap children (and block until they exit)."""

import pytest

from repro.apps.libsys import build_libsys
from repro.hw.asm import assemble
from repro.linker.baseline_ld import link_static
from repro.toyc import compile_source


def run_parent(kernel, source, use_toyc=False):
    if use_toyc:
        obj = compile_source(source, "m.o")
    else:
        obj = assemble(source, "m.o")
    image = link_static([obj], archives=[build_libsys()])
    parent = kernel.create_machine_process("parent", image)
    kernel.schedule()
    return parent


class TestWait:
    def test_parent_collects_child_status(self, kernel):
        parent = run_parent(kernel, """
            int main() {
                int status = 0;
                int child;
                int pid;
                child = fork();
                if (child == 0) { return 7; }
                pid = wait(&status);
                if (pid != child) { return 100; }
                return status;
            }
        """, use_toyc=True)
        assert parent.death_reason is None
        assert parent.exit_code == 7

    def test_parent_blocks_until_child_exits(self, kernel):
        """The child does real work after the parent calls wait; the
        parent must see the final value."""
        parent = run_parent(kernel, """
            int main() {
                int status = 0;
                int i;
                int total = 0;
                if (fork() == 0) {
                    for (i = 0; i < 500; i = i + 1) {
                        total = total + 1;
                    }
                    return total & 0xFF;
                }
                wait(&status);
                return status;
            }
        """, use_toyc=True)
        assert parent.exit_code == 500 & 0xFF

    def test_wait_without_children_errors(self, kernel):
        parent = run_parent(kernel, """
            .text
            .globl main
        main:
            li a0, 0
            li v0, 9            # wait
            syscall
            move v0, v1         # errno: ECHILD = 10
            jr ra
        """)
        assert parent.exit_code == 10

    def test_reap_multiple_children(self, kernel):
        parent = run_parent(kernel, """
            int main() {
                int status = 0;
                int total = 0;
                if (fork() == 0) { return 1; }
                if (fork() == 0) { return 2; }
                wait(&status);
                total = total + status;
                wait(&status);
                total = total + status;
                return total;
            }
        """, use_toyc=True)
        assert parent.exit_code == 3

    def test_child_is_reaped_once(self, kernel):
        parent = run_parent(kernel, """
            int main() {
                int status = 0;
                int second;
                if (fork() == 0) { return 5; }
                wait(&status);
                second = wait(&status);   /* ECHILD: returns -1 */
                if (second == -1) { return status; }
                return 99;
            }
        """, use_toyc=True)
        assert parent.exit_code == 5
