"""Sharing classes (Table 1) and the module search strategy."""

import pytest

from repro.errors import LinkError
from repro.linker.classes import SharingClass
from repro.linker.searchpath import (
    DEFAULT_LIBRARY_DIRS,
    SearchPath,
    parse_library_path,
)


class TestTable1:
    """The sharing-class matrix, straight from Table 1."""

    def test_row_static_private(self):
        cls = SharingClass.STATIC_PRIVATE
        assert cls.when_linked == "static link time"
        assert cls.new_instance_per_process is True
        assert cls.address_portion == "private"

    def test_row_dynamic_private(self):
        cls = SharingClass.DYNAMIC_PRIVATE
        assert cls.when_linked == "run time"
        assert cls.new_instance_per_process is True
        assert cls.address_portion == "private"

    def test_row_static_public(self):
        cls = SharingClass.STATIC_PUBLIC
        assert cls.when_linked == "static link time"
        assert cls.new_instance_per_process is False
        assert cls.address_portion == "public"

    def test_row_dynamic_public(self):
        cls = SharingClass.DYNAMIC_PUBLIC
        assert cls.when_linked == "run time"
        assert cls.new_instance_per_process is False
        assert cls.address_portion == "public"

    def test_table1_order(self):
        assert [c.value for c in SharingClass.table1()] == [
            "static_private", "dynamic_private",
            "static_public", "dynamic_public",
        ]

    def test_predicates_consistent(self):
        for cls in SharingClass:
            assert cls.is_static != cls.is_dynamic
            assert cls.is_public != cls.is_private
            assert cls.new_instance_per_process == cls.is_private

    def test_parse(self):
        assert SharingClass.parse("dynamic public") is \
            SharingClass.DYNAMIC_PUBLIC
        assert SharingClass.parse("static-private") is \
            SharingClass.STATIC_PRIVATE
        assert SharingClass.parse("STATIC_PUBLIC") is \
            SharingClass.STATIC_PUBLIC

    def test_parse_unknown(self):
        with pytest.raises(LinkError):
            SharingClass.parse("sorta_shared")


class TestSearchOrder:
    def test_static_link_order(self):
        """lds: cwd, -L dirs, LD_LIBRARY_PATH, defaults (§3)."""
        search = SearchPath.for_static_link(
            "/work", ["/opt/libs"], "/env/a:/env/b"
        )
        assert search.directories[:4] == \
            ["/work", "/opt/libs", "/env/a", "/env/b"]
        assert search.directories[4:] == DEFAULT_LIBRARY_DIRS

    def test_run_time_order(self):
        """ldl: LD_LIBRARY_PATH *now*, then where lds searched."""
        static = SearchPath.for_static_link("/work", ["/opt"], "/old")
        run = SearchPath.for_run_time("/new", static.directories)
        assert run.directories[0] == "/new"
        assert run.directories[1:3] == ["/work", "/opt"]
        assert "/old" in run.directories

    def test_dedup(self):
        search = SearchPath.for_static_link("/a", ["/a", "/b"], "/b")
        counted = [d for d in search.directories if d in ("/a", "/b")]
        assert counted == ["/a", "/b"]

    def test_parse_library_path(self):
        assert parse_library_path("/a:/b::/c") == ["/a", "/b", "/c"]
        assert parse_library_path("") == []

    def test_prepend(self):
        base = SearchPath(["/x"])
        extended = base.prepend(["/tmp/inst"])
        assert extended.directories == ["/tmp/inst", "/x"]
        assert base.directories == ["/x"]  # unchanged


class TestFind:
    def test_first_found_wins(self, kernel, shell):
        """'If there is more than one static module with the same name,
        lds uses the first one it finds.'"""
        kernel.vfs.makedirs("/first")
        kernel.vfs.makedirs("/second")
        kernel.vfs.write_whole("/first/m.o", b"1")
        kernel.vfs.write_whole("/second/m.o", b"2")
        search = SearchPath(["/first", "/second"])
        assert search.find(kernel.vfs, "m.o") == "/first/m.o"

    def test_absolute_bypasses_search(self, kernel, shell):
        kernel.vfs.write_whole("/abs.o", b"x")
        search = SearchPath(["/nowhere"])
        assert search.find(kernel.vfs, "/abs.o") == "/abs.o"
        assert search.find(kernel.vfs, "/missing.o") is None

    def test_explicit_relative(self, kernel, shell):
        kernel.vfs.makedirs("/work/sub")
        kernel.vfs.write_whole("/work/sub/m.o", b"x")
        search = SearchPath(["/elsewhere"])
        assert search.find(kernel.vfs, "./sub/m.o", cwd="/work") == \
            "/work/sub/m.o"

    def test_not_found(self, kernel, shell):
        assert SearchPath(["/nope"]).find(kernel.vfs, "m.o") is None

    def test_directory_is_not_a_module(self, kernel, shell):
        """Regression: a directory sharing a module's name must not
        shadow the real module (e.g. a template named 'shared.o' whose
        instantiated module 'shared' collides with the /shared mount)."""
        kernel.vfs.makedirs("/shared/lib")
        kernel.vfs.write_whole("/shared/lib/shared", b"module bytes")
        search = SearchPath(["/", "/shared/lib"])
        # '/' contains the *directory* /shared; the file must win.
        assert search.find(kernel.vfs, "shared") == "/shared/lib/shared"

    def test_only_directories_anywhere_finds_nothing(self, kernel, shell):
        kernel.vfs.makedirs("/a/shared")
        search = SearchPath(["/a"])
        assert search.find(kernel.vfs, "shared") is None
