"""SunOS-style jump-table (PLT) lazy linking — the A1 baseline."""

import pytest

from repro.hw.asm import assemble
from repro.linker.classes import SharingClass
from repro.linker.jumptable import (
    PLT_ENTRY_SIZE,
    insert_jump_table,
    patched_plt_entry,
    plt_entry_base,
    plt_symbol_at,
)
from repro.linker.lds import LinkRequest, store_object
from repro.linker.module import ModuleImage, merge_objects
from repro.objfile.format import RelocType


MAIN_TWO_CALLS = """
        .text
        .globl main
main:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal shared_fn
        move s0, v0
        jal shared_fn
        add v0, v0, s0
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
"""

SHARED_MODULE = """
        .text
        .globl shared_fn
shared_fn:
        li v0, 5
        jr ra
"""


class TestTransform:
    def test_one_entry_per_symbol(self):
        obj = assemble(".text\njal f\njal g\njal f", "m.o")
        count = insert_jump_table(obj, lambda s: s in ("f", "g"))
        assert count == 2
        assert "__plt$f" in obj.symbols
        assert "__plt$g" in obj.symbols

    def test_call_sites_redirected(self):
        obj = assemble(".text\njal f", "m.o")
        insert_jump_table(obj, lambda s: s == "f")
        jumps = [r for r in obj.relocations
                 if r.type is RelocType.JUMP26]
        assert all(r.symbol.startswith("__plt$") for r in jumps)

    def test_data_relocs_untouched(self):
        """Jump tables only help function calls — data references must
        still be resolved eagerly (the paper's point)."""
        obj = assemble(".text\nla t0, var\njal f", "m.o")
        insert_jump_table(obj, lambda _s: True)
        kinds = {r.type for r in obj.relocations}
        assert RelocType.HI16 in kinds and RelocType.LO16 in kinds
        hi = [r for r in obj.relocations if r.type is RelocType.HI16]
        assert hi[0].symbol == "var"

    def test_entry_lookup_by_address(self):
        obj = assemble(".text\njal f", "m.o")
        insert_jump_table(obj, lambda s: s == "f")
        image = ModuleImage(merge_objects([obj], "out"))
        image.layout_split(0x00400000, 0x10000000)
        image.finalize_symbols()
        # merge renames the local PLT label to "m.o::__plt$f".
        plt_sym = image.obj.symbols["m.o::__plt$f"]
        assert plt_symbol_at(image.obj, plt_sym.value + 4) == "f"
        assert plt_entry_base(image.obj, plt_sym.value + 8) == \
            plt_sym.value
        with pytest.raises(KeyError):
            plt_symbol_at(image.obj, 0x00400000 + 0x100000)

    def test_patched_entry_shape(self):
        code = patched_plt_entry(0x30412345)
        assert len(code) == PLT_ENTRY_SIZE
        lui = int.from_bytes(code[0:4], "little")
        ori = int.from_bytes(code[4:8], "little")
        assert lui & 0xFFFF == 0x3041
        assert ori & 0xFFFF == 0x2345


class TestEndToEnd:
    def test_plt_resolves_on_first_call_only(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/shared1.o",
                     assemble(SHARED_MODULE, "shared1.o"))
        store_object(kernel, shell, "/main.o",
                     assemble(MAIN_TWO_CALLS, "main.o"))
        result = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("shared1.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/prog",
            search_dirs=["/shared/lib"],
        )
        # Retrofit the executable with a jump table: rebuild via lds is
        # what a -jumptable flag would do; here we verify the runtime
        # half using the already-linked image's PLT path.
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 10

    def test_plt_machine_execution(self, system, shell):
        """Full PLT flow on the machine: trap, patch, restart, call."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/shared1.o",
                     assemble(SHARED_MODULE, "shared1.o"))

        main = assemble(MAIN_TWO_CALLS, "main.o")
        insert_jump_table(main, lambda s: s == "shared_fn")
        store_object(kernel, shell, "/main.o", main)
        result = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("shared1.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/prog",
            search_dirs=["/shared/lib"],
        )
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 10
        # After the run, the PLT entry holds the patched lui/ori/jr.
        # (The process is gone, but patching happened in its own private
        # text, which is the SunOS behaviour being modelled.)
