"""ldl: lazy dynamic linking, scoped resolution, creation, persistence."""

import pytest

from repro import boot
from repro.bench.workloads import (
    build_module_chain,
    build_module_fanout,
    chain_expected_exit,
    fanout_expected_exit,
    make_shell,
)
from repro.hw.asm import assemble
from repro.linker.classes import SharingClass
from repro.linker.lds import Lds, LinkRequest, store_object
from repro.linker.ldl import Ldl
from repro.linker.scoped import scope_chain
from repro.objfile.format import ObjectFile, ObjectKind


def put(kernel, shell, path, source):
    store_object(kernel, shell, path,
                 assemble(source, path.rsplit("/", 1)[-1]))


SHARED_COUNTER = """
        .text
        .globl bump
bump:
        la t0, counter
        lw v0, 0(t0)
        addi t1, v0, 1
        sw t1, 0(t0)
        jr ra
        .data
        .globl counter
counter: .word 0
"""

MAIN_BUMPS = """
        .text
        .globl main
main:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal bump
        jal bump
        move v0, t1
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
"""


class TestStartup:
    def _link(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        kernel.vfs.makedirs("/src")
        put(kernel, shell, "/shared/lib/counter.o", SHARED_COUNTER)
        put(kernel, shell, "/src/main.o", MAIN_BUMPS)
        return system.lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("counter.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/src/main",
            search_dirs=["/shared/lib"],
        )

    def test_public_module_created_on_first_exec(self, system, shell):
        result = self._link(system, shell)
        kernel = system.kernel
        assert not kernel.vfs.exists("/shared/lib/counter")
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.vfs.exists("/shared/lib/counter")
        assert kernel.run_until_exit(proc) == 2

    def test_state_persists_across_processes(self, system, shell):
        result = self._link(system, shell)
        kernel = system.kernel
        p1 = kernel.create_machine_process("p1", result.executable)
        assert kernel.run_until_exit(p1) == 2
        p2 = kernel.create_machine_process("p2", result.executable)
        assert kernel.run_until_exit(p2) == 4  # genuine write sharing

    def test_module_mapped_at_global_address(self, system, shell):
        result = self._link(system, shell)
        kernel = system.kernel
        proc = kernel.create_machine_process("p", result.executable)
        kernel.run_until_exit(proc)
        ino = kernel.vfs.stat("/shared/lib/counter").st_ino
        base = kernel.sfs.address_of_inode(ino)
        runtime = proc.runtime
        module = runtime.ldl.module_at(base)
        assert module is not None
        assert module.base == base

    def test_ld_library_path_overrides(self, system, shell):
        """Changing LD_LIBRARY_PATH substitutes module versions (§3)."""
        result = self._link(system, shell)
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/override")
        put(kernel, shell, "/shared/override/counter.o", """
            .text
            .globl bump
        bump:
            li t1, 99
            move v0, t1
            jr ra
            .data
            .globl counter
        counter: .word 0
        """)
        proc = kernel.create_machine_process(
            "p", result.executable,
            env={"LD_LIBRARY_PATH": "/shared/override"},
        )
        assert kernel.run_until_exit(proc) == 99
        assert kernel.vfs.exists("/shared/override/counter")
        assert not kernel.vfs.exists("/shared/lib/counter")


class TestLazyVsEager:
    def test_lazy_links_only_what_runs(self):
        system = boot(lazy=True)
        shell = make_shell(system.kernel)
        graph = build_module_fanout(system.kernel, shell, width=6, used=2,
                                    module_dir="/shared/fan")
        proc = system.kernel.create_machine_process("p", graph.executable)
        assert system.kernel.run_until_exit(proc) == \
            fanout_expected_exit(2)
        stats = proc.runtime.ldl.stats
        assert stats.modules_linked == 2
        assert stats.faults_serviced == 2
        # All six root modules were still *mapped* at startup.
        assert stats.modules_mapped >= 6

    def test_eager_links_everything(self):
        system = boot(lazy=False)
        shell = make_shell(system.kernel)
        graph = build_module_fanout(system.kernel, shell, width=6, used=2,
                                    module_dir="/shared/fan")
        proc = system.kernel.create_machine_process("p", graph.executable)
        assert system.kernel.run_until_exit(proc) == \
            fanout_expected_exit(2)
        stats = proc.runtime.ldl.stats
        assert stats.modules_linked == 6
        assert stats.faults_serviced == 0

    def test_unused_modules_never_fault(self):
        system = boot(lazy=True)
        shell = make_shell(system.kernel)
        graph = build_module_fanout(system.kernel, shell, width=4, used=0,
                                    module_dir="/shared/fan")
        proc = system.kernel.create_machine_process("p", graph.executable)
        assert system.kernel.run_until_exit(proc) == 0
        assert proc.runtime.ldl.stats.faults_serviced == 0
        assert proc.runtime.ldl.stats.modules_linked == 0

    def test_second_process_reuses_resolution(self):
        """Resolved relocations are persisted in the segment file, so a
        second process maps an already-linked module."""
        system = boot(lazy=True)
        shell = make_shell(system.kernel)
        graph = build_module_fanout(system.kernel, shell, width=3, used=3,
                                    module_dir="/shared/fan")
        p1 = system.kernel.create_machine_process("p1", graph.executable)
        system.kernel.run_until_exit(p1)
        p2 = system.kernel.create_machine_process("p2", graph.executable)
        assert system.kernel.run_until_exit(p2) == fanout_expected_exit(3)
        assert p2.runtime.ldl.stats.relocs_patched == \
            len([r for r in graph.executable.relocations])


class TestChain:
    def test_recursive_lazy_inclusion(self):
        """Figure 2: linking one module chains in modules the original
        program never named."""
        system = boot(lazy=True)
        kernel = system.kernel
        shell = make_shell(kernel)
        graph = build_module_chain(kernel, shell, depth=6,
                                   module_dir="/shared/chain")
        # Only chain0 appears on the link line.
        names = [m for m, _ in graph.executable.link_info.dynamic_modules]
        assert names == ["chain0.o"]
        proc = kernel.create_machine_process("p", graph.executable)
        assert kernel.run_until_exit(proc) == chain_expected_exit(6)
        stats = proc.runtime.ldl.stats
        assert stats.modules_created == 6
        assert stats.modules_linked >= 5

    def test_chain_modules_all_public_and_persistent(self):
        system = boot(lazy=True)
        kernel = system.kernel
        shell = make_shell(kernel)
        graph = build_module_chain(kernel, shell, depth=3,
                                   module_dir="/shared/chain")
        proc = kernel.create_machine_process("p", graph.executable)
        kernel.run_until_exit(proc)
        for index in range(3):
            assert kernel.vfs.exists(f"/shared/chain/chain{index}")


class TestScopeChain:
    def _module(self, name):
        meta = ObjectFile(name, ObjectKind.SEGMENT)
        from repro.linker.ldl import LoadedModule

        return LoadedModule(name, None, meta, 0, 0,
                            SharingClass.DYNAMIC_PUBLIC)

    def test_chain_walks_up_only(self):
        root = self._module("root")
        mid = self._module("mid")
        leaf = self._module("leaf")
        mid.add_parent(root)
        leaf.add_parent(mid)
        chain = [m.name for m in scope_chain(leaf)]
        assert chain == ["leaf", "mid", "root"]

    def test_dag_dedup(self):
        root = self._module("root")
        a = self._module("a")
        b = self._module("b")
        shared = self._module("shared")
        a.add_parent(root)
        b.add_parent(root)
        shared.add_parent(a)
        shared.add_parent(b)
        chain = [m.name for m in scope_chain(shared)]
        assert chain == ["shared", "a", "b", "root"]

    def test_self_parent_ignored(self):
        node = self._module("n")
        node.add_parent(node)
        assert node.parents == []


class TestScopedResolutionSemantics:
    def test_child_scope_wins_over_parent(self, system, shell):
        """A module's own search path shadows same-named symbols the
        parent could provide — abstraction preservation (§3)."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/app")
        kernel.vfs.makedirs("/shared/sub")
        # The subsystem's own version of `helper` returns 1.
        put(kernel, shell, "/shared/sub/helper.o",
            ".text\n.globl helper\nhelper:\nli v0, 1\njr ra")
        # The application's version returns 2.
        put(kernel, shell, "/shared/app/helper.o",
            ".text\n.globl helper\nhelper:\nli v0, 2\njr ra")
        # The subsystem module searches its own directory first.
        put(kernel, shell, "/shared/app/subsys.o", """
            .searchdir /shared/sub
            .text
            .globl subsys_fn
        subsys_fn:
            addi sp, sp, -8
            sw ra, 0(sp)
            jal helper
            lw ra, 0(sp)
            addi sp, sp, 8
            jr ra
        """)
        put(kernel, shell, "/src2.o", """
            .text
            .globl main
        main:
            addi sp, sp, -8
            sw ra, 0(sp)
            jal subsys_fn
            lw ra, 0(sp)
            addi sp, sp, 8
            jr ra
        """)
        result = system.lds.link(
            shell,
            [LinkRequest("/src2.o"),
             LinkRequest("subsys.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin_a",
            search_dirs=["/shared/app"],
        )
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 1  # subsystem's own helper

    def test_falls_back_to_parent_scope(self, system, shell):
        """A module without its own provider resolves from its parent."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/app")
        put(kernel, shell, "/shared/app/helper.o",
            ".text\n.globl helper\nhelper:\nli v0, 2\njr ra")
        put(kernel, shell, "/shared/app/subsys.o", """
            .text
            .globl subsys_fn
        subsys_fn:
            addi sp, sp, -8
            sw ra, 0(sp)
            jal helper
            lw ra, 0(sp)
            addi sp, sp, 8
            jr ra
        """)
        put(kernel, shell, "/src2.o", """
            .text
            .globl main
        main:
            addi sp, sp, -8
            sw ra, 0(sp)
            jal subsys_fn
            lw ra, 0(sp)
            addi sp, sp, 8
            jr ra
        """)
        result = system.lds.link(
            shell,
            [LinkRequest("/src2.o"),
             LinkRequest("subsys.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin_a",
            search_dirs=["/shared/app"],
        )
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 2  # parent scope's helper

    def test_unresolved_at_root_faults_at_use(self, system, shell):
        """References undefined at the root of the DAG stay unresolved
        and fault if executed (§3)."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/app")
        put(kernel, shell, "/shared/app/broken.o", """
            .text
            .globl broken_fn
        broken_fn:
            jal missing_everywhere
            jr ra
        """)
        put(kernel, shell, "/src2.o", """
            .text
            .globl main
        main:
            addi sp, sp, -8
            sw ra, 0(sp)
            jal broken_fn
            lw ra, 0(sp)
            addi sp, sp, 8
            jr ra
        """)
        result = system.lds.link(
            shell,
            [LinkRequest("/src2.o"),
             LinkRequest("broken.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin_a",
            search_dirs=["/shared/app"],
        )
        proc = kernel.create_machine_process("p", result.executable)
        kernel.run_until_exit(proc)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason


class TestDynamicPrivate:
    def test_private_instances_are_per_process(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/lib")
        put(kernel, shell, "/lib/priv.o", SHARED_COUNTER)
        put(kernel, shell, "/main.o", MAIN_BUMPS)
        result = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("priv.o", SharingClass.DYNAMIC_PRIVATE)],
            output="/prog",
            search_dirs=["/lib"],
        )
        p1 = kernel.create_machine_process("p1", result.executable)
        assert kernel.run_until_exit(p1) == 2
        p2 = kernel.create_machine_process("p2", result.executable)
        assert kernel.run_until_exit(p2) == 2  # fresh instance, not 4

    def test_private_template_may_live_off_partition(self, system,
                                                     shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/lib")
        put(kernel, shell, "/lib/priv.o", SHARED_COUNTER)
        put(kernel, shell, "/main.o", MAIN_BUMPS)
        result = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("priv.o", SharingClass.DYNAMIC_PRIVATE)],
            output="/prog",
            search_dirs=["/lib"],
        )
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 2
        # The private module lives in the private dynamic area.
        from repro.vm.layout import PRIVATE_DYNAMIC_BASE, HEAP_REGION

        module = proc.runtime.ldl.modules()[1]
        assert PRIVATE_DYNAMIC_BASE <= module.base < HEAP_REGION.end


class TestCreationLocking:
    def test_create_public_is_serialized(self, system, shell):
        """The creation path takes the template's file lock."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        put(kernel, shell, "/shared/lib/counter.o", SHARED_COUNTER)
        ldl = Ldl(kernel, shell)
        root = ObjectFile("root", ObjectKind.EXECUTABLE)
        root.link_info.search_path = ["/shared/lib"]
        ldl.bootstrap(root)
        module = ldl.ensure_module("counter.o",
                                   SharingClass.DYNAMIC_PUBLIC, ldl.root)
        assert module.path == "/shared/lib/counter"
        # The lock was released.
        template_inode = kernel.vfs.resolve("/shared/lib/counter.o")[1]
        assert template_inode.lock_owner is None

    def test_double_ensure_dedupes(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        put(kernel, shell, "/shared/lib/counter.o", SHARED_COUNTER)
        ldl = Ldl(kernel, shell)
        root = ObjectFile("root", ObjectKind.EXECUTABLE)
        root.link_info.search_path = ["/shared/lib"]
        ldl.bootstrap(root)
        first = ldl.ensure_module("counter.o",
                                  SharingClass.DYNAMIC_PUBLIC, ldl.root)
        second = ldl.ensure_module("counter.o",
                                   SharingClass.DYNAMIC_PUBLIC, ldl.root)
        assert first is second
        assert ldl.stats.modules_created == 1
