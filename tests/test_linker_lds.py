"""lds: the static linker — classes, publics, retained relocs, warnings."""

import pytest

from repro.errors import (
    FileLimitError,
    LinkError,
    ModuleNotFoundLinkError,
    UndefinedSymbolError,
)
from repro.hw.asm import assemble
from repro.linker.baseline_ld import link_static
from repro.linker.classes import SharingClass
from repro.linker.lds import Lds, LinkRequest, load_template, store_object
from repro.linker.segments import (
    create_public_module,
    module_path_for_template,
    read_segment_meta,
)
from repro.objfile.archive import Archive
from repro.objfile.format import ObjectKind, RelocType
from repro.sfs.sharedfs import MAX_FILE_SIZE
from repro.vm.layout import HEAP_REGION, TEXT_BASE


MAIN_CALLS_SHARED = """
        .text
        .globl main
main:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal shared_fn
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
"""

SHARED_MODULE = """
        .text
        .globl shared_fn
shared_fn:
        li v0, 5
        jr ra
"""


@pytest.fixture
def lds(kernel):
    return Lds(kernel)


def put(kernel, shell, path, source, name=None):
    store_object(kernel, shell, path,
                 assemble(source, name or path.rsplit("/", 1)[-1]))


class TestBaselineLd:
    def test_static_link_and_run(self, kernel):
        image = link_static([assemble(
            ".text\n.globl main\nmain:\nli v0, 3\njr ra", "m.o"
        )])
        assert image.kind is ObjectKind.EXECUTABLE
        assert image.layout["text"].base == TEXT_BASE
        assert image.layout["data"].base == HEAP_REGION.start
        proc = kernel.create_machine_process("p", image)
        assert kernel.run_until_exit(proc) == 3

    def test_undefined_symbol_rejected(self):
        with pytest.raises(UndefinedSymbolError):
            link_static([assemble(
                ".text\n.globl main\nmain:\njal nowhere\njr ra", "m.o"
            )])

    def test_archive_members_pulled(self, kernel):
        main = assemble(
            ".text\n.globl main\nmain:\naddi sp, sp, -8\nsw ra, 0(sp)\n"
            "jal lib_fn\nlw ra, 0(sp)\naddi sp, sp, 8\njr ra", "m.o"
        )
        archive = Archive("lib.a")
        archive.add(assemble(
            ".text\n.globl lib_fn\nlib_fn:\nli v0, 8\njr ra", "lib.o"
        ))
        archive.add(assemble(
            ".text\n.globl unused_fn\nunused_fn:\njr ra", "unused.o"
        ))
        image = link_static([main], archives=[archive])
        proc = kernel.create_machine_process("p", image)
        assert kernel.run_until_exit(proc) == 8
        # The unused member stayed out.
        assert "unused_fn" not in image.symbols

    def test_crt0_provides_start(self):
        image = link_static([assemble(
            ".text\n.globl main\nmain:\njr ra", "m.o"
        )])
        assert image.entry_symbol == "_start"
        assert image.symbols["_start"].defined


class TestLdsStaticPrivate:
    def test_missing_static_module_aborts(self, lds, shell, dirs):
        with pytest.raises(ModuleNotFoundLinkError):
            lds.link(shell, [LinkRequest("missing.o")], output="/bin/a")

    def test_multiple_privates_merge(self, kernel, lds, shell, dirs):
        put(kernel, shell, "/src/a.o", """
            .text
            .globl main
        main:
            addi sp, sp, -8
            sw ra, 0(sp)
            jal helper
            lw ra, 0(sp)
            addi sp, sp, 8
            jr ra
        """)
        put(kernel, shell, "/src/b.o",
            ".text\n.globl helper\nhelper:\nli v0, 11\njr ra")
        result = lds.link(
            shell,
            [LinkRequest("/src/a.o"), LinkRequest("/src/b.o")],
            output="/bin/a",
        )
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 11

    def test_executable_written_to_fs(self, kernel, lds, shell, dirs):
        put(kernel, shell, "/src/m.o",
            ".text\n.globl main\nmain:\njr ra")
        result = lds.link(shell, [LinkRequest("/src/m.o")],
                          output="/bin/prog")
        stored = load_template(kernel, shell, "/bin/prog")
        assert stored.kind is ObjectKind.EXECUTABLE
        assert stored.to_bytes() == result.executable.to_bytes()


class TestLdsStaticPublic:
    def test_created_next_to_template(self, kernel, lds, shell, dirs):
        put(kernel, shell, "/shared/lib/shared1.o", SHARED_MODULE,
            "shared1.o")
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        result = lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("shared1.o", SharingClass.STATIC_PUBLIC)],
            output="/bin/a",
            search_dirs=["/shared/lib"],
        )
        assert kernel.vfs.exists("/shared/lib/shared1")
        assert result.static_publics[0][0] == "/shared/lib/shared1"

    def test_references_resolved_at_static_link_time(self, kernel, lds,
                                                     shell, dirs):
        """lds resolves refs to static publics itself (ld refuses)."""
        put(kernel, shell, "/shared/lib/shared1.o", SHARED_MODULE,
            "shared1.o")
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        result = lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("shared1.o", SharingClass.STATIC_PUBLIC)],
            output="/bin/a",
            search_dirs=["/shared/lib"],
        )
        # No retained relocation refers to shared_fn: it was resolved.
        assert all(r.symbol != "shared_fn"
                   for r in result.executable.relocations)
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 5

    def test_existing_module_reused(self, kernel, lds, shell, dirs):
        put(kernel, shell, "/shared/lib/shared1.o", SHARED_MODULE,
            "shared1.o")
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        requests = [
            LinkRequest("/src/main.o"),
            LinkRequest("shared1.o", SharingClass.STATIC_PUBLIC),
        ]
        first = lds.link(shell, requests, output="/bin/a",
                         search_dirs=["/shared/lib"])
        second = lds.link(shell, requests, output="/bin/b",
                          search_dirs=["/shared/lib"])
        assert first.static_publics == second.static_publics

    def test_template_off_partition_rejected(self, kernel, lds, shell,
                                             dirs):
        put(kernel, shell, "/src/shared1.o", SHARED_MODULE, "shared1.o")
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        with pytest.raises(LinkError):
            lds.link(
                shell,
                [LinkRequest("/src/main.o"),
                 LinkRequest("shared1.o", SharingClass.STATIC_PUBLIC)],
                output="/bin/a",
                search_dirs=["/src"],
            )


class TestLdsDynamic:
    def test_missing_dynamic_module_warns_not_errors(self, kernel, lds,
                                                     shell, dirs):
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        result = lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("ghost.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin/a",
        )
        assert any("ghost.o" in warning for warning in result.warnings)

    def test_strict_mode_errors(self, kernel, lds, shell, dirs):
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        with pytest.raises(ModuleNotFoundLinkError):
            lds.link(
                shell,
                [LinkRequest("/src/main.o"),
                 LinkRequest("ghost.o", SharingClass.DYNAMIC_PUBLIC)],
                output="/bin/a",
                strict_dynamic=True,
            )

    def test_dynamic_refs_retained(self, kernel, lds, shell, dirs):
        put(kernel, shell, "/shared/lib/shared1.o", SHARED_MODULE,
            "shared1.o")
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        result = lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("shared1.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin/a",
            search_dirs=["/shared/lib"],
        )
        symbols = {r.symbol for r in result.executable.relocations}
        assert "shared_fn" in symbols
        assert result.retained_relocations >= 2  # island HI16+LO16

    def test_link_info_saved(self, kernel, lds, shell, dirs):
        put(kernel, shell, "/shared/lib/shared1.o", SHARED_MODULE,
            "shared1.o")
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        result = lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("shared1.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin/a",
            search_dirs=["/shared/lib"],
        )
        info = result.executable.link_info
        assert ("shared1.o", "dynamic_public") in info.dynamic_modules
        assert "/shared/lib" in info.search_path

    def test_islands_inserted_for_externals(self, kernel, lds, shell,
                                            dirs):
        put(kernel, shell, "/shared/lib/shared1.o", SHARED_MODULE,
            "shared1.o")
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        result = lds.link(
            shell,
            [LinkRequest("/src/main.o"),
             LinkRequest("shared1.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin/a",
            search_dirs=["/shared/lib"],
        )
        assert result.islands >= 1

    def test_fully_static_undefined_errors(self, kernel, lds, shell,
                                           dirs):
        put(kernel, shell, "/src/main.o", MAIN_CALLS_SHARED)
        with pytest.raises(UndefinedSymbolError):
            lds.link(shell, [LinkRequest("/src/main.o")], output="/bin/a")

    def test_add_link_info(self, kernel, lds, shell, dirs):
        template = assemble(".text\nnop", "t.o")
        enriched = lds.add_link_info(
            template, search_dirs=["/shared/x"],
            modules=[("dep.o", "dynamic_public")],
        )
        assert enriched.link_info.search_path == ["/shared/x"]
        assert template.link_info.search_path == []  # original untouched


class TestSegmentFiles:
    def test_module_path_for_template(self):
        assert module_path_for_template("/shared/lib/m.o") == \
            "/shared/lib/m"
        with pytest.raises(LinkError):
            module_path_for_template("/shared/lib/m.txt")

    def test_create_and_read_roundtrip(self, kernel, shell, dirs):
        template = assemble(SHARED_MODULE, "seg.o")
        store_object(kernel, shell, "/shared/lib/seg.o", template)
        meta, base = create_public_module(
            kernel, shell, template, "/shared/lib/seg"
        )
        meta2, base2, image_len = read_segment_meta(
            kernel, shell, "/shared/lib/seg"
        )
        assert base2 == base
        assert meta2.symbols["shared_fn"].value == \
            meta.symbols["shared_fn"].value
        assert image_len % 4096 == 0

    def test_base_matches_inode_address(self, kernel, shell, dirs):
        template = assemble(SHARED_MODULE, "seg.o")
        _meta, base = create_public_module(
            kernel, shell, template, "/shared/lib/seg"
        )
        ino = kernel.vfs.stat("/shared/lib/seg").st_ino
        assert base == kernel.sfs.address_of_inode(ino)

    def test_oversized_module_rejected(self, kernel, shell, dirs):
        template = assemble(f".heap {MAX_FILE_SIZE}\n.text\nnop", "big.o")
        with pytest.raises(FileLimitError):
            create_public_module(kernel, shell, template,
                                 "/shared/lib/big")

    def test_not_a_segment_rejected(self, kernel, shell, dirs):
        kernel.vfs.write_whole("/shared/lib/junk", b"not a segment file")
        from repro.errors import ObjectFormatError

        with pytest.raises(ObjectFormatError):
            read_segment_meta(kernel, shell, "/shared/lib/junk")


class TestSegmentLifecycle:
    def test_destroy_public_module(self, kernel, shell, dirs):
        from repro.linker.segments import destroy_public_module

        template = assemble(SHARED_MODULE, "seg.o")
        store_object(kernel, shell, "/shared/lib/seg.o", template)
        create_public_module(kernel, shell, template, "/shared/lib/seg")
        assert kernel.vfs.exists("/shared/lib/seg")
        destroy_public_module(kernel, shell, "/shared/lib/seg")
        assert not kernel.vfs.exists("/shared/lib/seg")
        # The template survives; the module can be recreated.
        meta, base = create_public_module(kernel, shell, template,
                                          "/shared/lib/seg")
        assert meta.symbols["shared_fn"].defined
        assert base == kernel.sfs.address_of_inode(
            kernel.vfs.stat("/shared/lib/seg").st_ino
        )

    def test_objdump_of_executable(self, kernel, lds, shell, dirs):
        from repro.objfile.inspect import objdump

        put(kernel, shell, "/src/m.o",
            ".text\n.globl main\nmain:\nli v0, 1\njr ra")
        result = lds.link(shell, [LinkRequest("/src/m.o")],
                          output="/bin/prog")
        text = objdump(result.executable, disassemble=True)
        assert "executable" in text
        assert "entry: _start" in text
        assert "jr ra" in text
