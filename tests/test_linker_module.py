"""ModuleImage placement/relocation, merging, and branch islands."""

import pytest

from repro.errors import DuplicateSymbolError, RelocationError
from repro.hw.asm import assemble
from repro.hw import isa
from repro.linker.branch_islands import (
    count_far_jumps,
    insert_branch_islands,
)
from repro.linker.module import (
    ModuleImage,
    merge_objects,
    patch_reloc_in_memory,
)
from repro.objfile.format import (
    Relocation,
    RelocType,
    SEC_ABS,
    SEC_DATA,
    SEC_TEXT,
)
from repro.vm.address_space import AddressSpace, PROT_RWX
from repro.vm.pages import PhysicalMemory


MODULE_SOURCE = """
        .text
        .globl entry
entry:
        la t0, counter
        lw v0, 0(t0)
        jr ra
        .data
        .globl counter
counter: .word 7
ptr:     .word counter
        .bss
buffer:  .space 64
        .heap 256
"""


class TestLayout:
    def test_contiguous_layout(self):
        image = ModuleImage(assemble(MODULE_SOURCE, "m.o"))
        total = image.layout_contiguous(0x30100000)
        layout = image.obj.layout
        assert layout["text"].base == 0x30100000
        assert layout["data"].base >= layout["text"].end
        assert layout["bss"].base >= layout["data"].end
        assert layout["heap"].size == 256
        assert total >= len(image.obj.text) + len(image.obj.data) + 64 + 256

    def test_split_layout(self):
        image = ModuleImage(assemble(MODULE_SOURCE, "m.o"))
        image.layout_split(0x00400000, 0x10000000)
        assert image.obj.layout["text"].base == 0x00400000
        assert image.obj.layout["data"].base == 0x10000000
        assert image.obj.layout["bss"].base >= 0x10000000

    def test_symbol_addresses(self):
        image = ModuleImage(assemble(MODULE_SOURCE, "m.o"))
        image.layout_contiguous(0x30100000)
        assert image.symbol_address("entry") == 0x30100000
        counter = image.symbol_address("counter")
        assert counter == image.obj.layout["data"].base
        assert image.symbol_address("missing") is None

    def test_finalize_symbols(self):
        image = ModuleImage(assemble(MODULE_SOURCE, "m.o"))
        image.layout_contiguous(0x30100000)
        image.finalize_symbols()
        assert image.obj.symbols["entry"].section == SEC_ABS
        assert image.obj.symbols["entry"].value == 0x30100000


class TestRelocation:
    def test_local_relocs_resolve(self):
        image = ModuleImage(assemble(MODULE_SOURCE, "m.o"))
        image.layout_contiguous(0x30100000)
        remaining = image.apply_relocations()
        assert remaining == []
        counter = image.symbol_address("counter")
        # The la expansion now carries counter's absolute address.
        text = bytes(image.obj.text)
        lui = int.from_bytes(text[0:4], "little")
        ori = int.from_bytes(text[4:8], "little")
        assert (lui & 0xFFFF) == (counter >> 16)
        assert (ori & 0xFFFF) == (counter & 0xFFFF)
        # The data-side WORD32 holds the pointer.
        data = bytes(image.obj.data)
        assert int.from_bytes(data[4:8], "little") == counter

    def test_external_relocs_retained(self):
        obj = assemble(".text\nla t0, external_var\n", "m.o")
        image = ModuleImage(obj)
        image.layout_contiguous(0x30100000)
        remaining = image.apply_relocations()
        assert {r.symbol for r in remaining} == {"external_var"}

    def test_resolver_consulted(self):
        obj = assemble(".text\nla t0, external_var\n", "m.o")
        image = ModuleImage(obj)
        image.layout_contiguous(0x30100000)
        remaining = image.apply_relocations(
            lambda name: 0x30500000 if name == "external_var" else None
        )
        assert remaining == []
        text = bytes(image.obj.text)
        assert int.from_bytes(text[0:4], "little") & 0xFFFF == 0x3050

    def test_jump_out_of_region_rejected(self):
        """Without an island, a far JUMP26 must fail loudly."""
        obj = assemble(".text\njal far_function\n", "m.o")
        image = ModuleImage(obj)
        image.layout_split(0x00400000, 0x10000000)
        with pytest.raises(RelocationError):
            image.apply_relocations(lambda _name: 0x30400000)

    def test_image_bytes_contains_sections(self):
        image = ModuleImage(assemble(MODULE_SOURCE, "m.o"))
        image.layout_contiguous(0x30100000)
        image.apply_relocations()
        blob = image.image_bytes()
        data_off = image.obj.layout["data"].base - 0x30100000
        assert blob[data_off: data_off + 4] == (7).to_bytes(4, "little")
        assert len(blob) == image.total_size

    def test_patch_in_memory(self):
        pm = PhysicalMemory()
        space = AddressSpace(pm)
        space.map(0x30100000, 4096, prot=PROT_RWX)
        # A lui/ori pair awaiting patching.
        space.store_word(0x30100000,
                         isa.encode_i(isa.OP_LUI, rt=8, imm=0), force=True)
        reloc = Relocation(SEC_TEXT, 0, RelocType.HI16, "x", 0)
        patch_reloc_in_memory(space, 0x30100000, reloc, 0x30654321)
        assert space.load_word(0x30100000) & 0xFFFF == 0x3065


class TestSegmentMeta:
    def test_meta_has_absolute_symbols_and_retained_relocs(self):
        obj = assemble("""
            .text
            .globl fn
        fn:
            jal external
            jr ra
        """, "m.o")
        insert_branch_islands(obj, lambda s: s == "external")
        image = ModuleImage(obj)
        image.layout_contiguous(0x30200000)
        image.apply_relocations()
        meta = image.to_segment_meta()
        assert meta.symbols["fn"].section == SEC_ABS
        assert meta.symbols["fn"].value == 0x30200000
        assert {r.symbol for r in meta.relocations} == {"external"}
        assert meta.layout["text"].base == 0x30200000


class TestMerge:
    def test_merge_adjusts_offsets(self):
        a = assemble(".text\n.globl fa\nfa: nop\n.data\n.globl da\n"
                     "da: .word 1", "a.o")
        b = assemble(".text\n.globl fb\nfb: nop\nnop\n.data\n.globl db\n"
                     "db: .word 2", "b.o")
        merged = merge_objects([a, b], "out")
        assert merged.symbols["fa"].value == 0
        assert merged.symbols["fb"].value == 16  # aligned after a's text
        assert merged.symbols["db"].value == 16

    def test_merge_resolves_cross_references(self):
        a = assemble(".text\n.globl caller\ncaller: jal callee\njr ra",
                     "a.o")
        b = assemble(".text\n.globl callee\ncallee: jr ra", "b.o")
        merged = merge_objects([a, b], "out")
        assert merged.symbols["callee"].defined
        assert not merged.undefined_symbols()

    def test_merge_duplicate_globals_rejected(self):
        a = assemble(".text\n.globl f\nf: nop", "a.o")
        b = assemble(".text\n.globl f\nf: nop", "b.o")
        with pytest.raises(DuplicateSymbolError):
            merge_objects([a, b], "out")

    def test_merge_renames_locals(self):
        a = assemble(".text\nhelper: nop\n.globl fa\nfa: b helper",
                     "a.o")
        b = assemble(".text\nhelper: nop\n.globl fb\nfb: b helper",
                     "b.o")
        merged = merge_objects([a, b], "out")
        assert "a.o::helper" in merged.symbols
        assert "b.o::helper" in merged.symbols

    def test_merge_accumulates_link_info(self):
        a = assemble(".module m1.o, dynamic_public\n.searchdir /d1\n"
                     ".text\nnop", "a.o")
        b = assemble(".searchdir /d2\n.text\nnop", "b.o")
        merged = merge_objects([a, b], "out")
        assert ("m1.o", "dynamic_public") in \
            merged.link_info.dynamic_modules
        assert merged.link_info.search_path == ["/d1", "/d2"]

    def test_merge_data_relocation_offsets(self):
        a = assemble(".data\n.globl pa\npa: .word target", "a.o")
        b = assemble(".data\n.globl pb\npb: .word target", "b.o")
        merged = merge_objects([a, b], "out")
        offsets = sorted(r.offset for r in merged.relocations
                         if r.section == SEC_DATA)
        assert offsets == [0, 16]


class TestBranchIslands:
    def test_far_call_gets_island(self):
        obj = assemble(".text\n.globl f\nf: jal far_fn\njr ra", "m.o")
        before_text = len(obj.text)
        count = insert_branch_islands(obj, lambda s: s == "far_fn")
        assert count == 1
        assert len(obj.text) == before_text + 12
        # The original JUMP26 now targets a local island label.
        jumps = [r for r in obj.relocations
                 if r.type is RelocType.JUMP26]
        assert len(jumps) == 1
        assert jumps[0].symbol.startswith("__island_")
        hi = [r for r in obj.relocations if r.type is RelocType.HI16]
        assert hi[0].symbol == "far_fn"

    def test_two_far_calls_share_one_island(self):
        """Regression: one island used to be emitted per call site, so N
        calls to the same far symbol cost N x 12 bytes of text. Call
        sites to the same (symbol, addend) must share a single island."""
        obj = assemble(".text\n.globl f\nf: jal far_fn\njal far_fn\n"
                       "jal other_fn\njr ra", "m.o")
        before_text = len(obj.text)
        count = insert_branch_islands(obj, lambda s: s.endswith("_fn"))
        assert count == 2                    # far_fn + other_fn, not 3
        assert len(obj.text) == before_text + 2 * 12
        jumps = [r for r in obj.relocations
                 if r.type is RelocType.JUMP26]
        assert len(jumps) == 3               # every call site redirected
        far_targets = {r.symbol for r in jumps}
        assert len(far_targets) == 2         # two share one label
        # Exactly one HI16/LO16 pair per distinct target.
        hi = [r for r in obj.relocations if r.type is RelocType.HI16]
        assert sorted(r.symbol for r in hi) == ["far_fn", "other_fn"]

    def test_same_symbol_different_addend_gets_own_island(self):
        obj = assemble(".text\njal far_fn", "m.o")
        obj.relocations.append(
            Relocation(SEC_TEXT, 0, RelocType.JUMP26, "far_fn", 8))
        count = insert_branch_islands(obj, lambda s: s == "far_fn")
        assert count == 2

    def test_local_calls_untouched(self):
        obj = assemble(".text\n.globl f\nf: jal g\njr ra\n"
                       ".globl g\ng: jr ra", "m.o")
        count = insert_branch_islands(
            obj, lambda s: s not in obj.symbols
            or not obj.symbols[s].defined
        )
        assert count == 0

    def test_island_executes_correctly(self):
        """End-to-end: a call through an island reaches a function in a
        different 256 MiB region and returns."""
        pm = PhysicalMemory()
        space = AddressSpace(pm)
        space.map(0x00400000, 4096, prot=PROT_RWX)
        space.map(0x30400000, 4096, prot=PROT_RWX)

        caller = assemble("""
            .text
            .globl main
        main:
            jal far_fn
            break
        """, "caller.o")
        insert_branch_islands(caller, lambda s: s == "far_fn")
        image = ModuleImage(caller)
        image.layout_split(0x00400000, 0x10000000)
        remaining = image.apply_relocations(
            lambda s: 0x30400000 if s == "far_fn" else None
        )
        assert remaining == []
        space.write_bytes(0x00400000, bytes(image.obj.text), force=True)

        callee = assemble(".text\n.globl far_fn\nfar_fn: li v0, 77\n"
                          "jr ra", "callee.o")
        callee_image = ModuleImage(callee)
        callee_image.layout_contiguous(0x30400000)
        callee_image.apply_relocations()
        space.write_bytes(0x30400000, callee_image.image_bytes(),
                          force=True)

        from repro.hw.cpu import BreakTrap, Cpu

        cpu = Cpu(space)
        cpu.pc = 0x00400000
        with pytest.raises(BreakTrap):
            cpu.run(100)
        assert cpu.regs[isa.REG_V0] == 77

    def test_count_far_jumps(self):
        obj = assemble(".text\njal a\njal b\njal a", "m.o")
        assert count_far_jumps(obj, lambda s: s == "a") == 2
