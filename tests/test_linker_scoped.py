"""linker/scoped.py edge cases: scope_chain traversal and peek_exports.

The module-graph builders here (``chain_of``, ``diamond``) are also the
fixtures the symbol-audit tests in test_analyze.py run against, so the
static verifier is exercised on exactly the scope shapes the real
traversal produces.
"""

from repro.linker.classes import SharingClass
from repro.linker.ldl import LoadedModule
from repro.linker.scoped import peek_exports, scope_chain
from repro.linker.segments import TRAILER, TRAILER_MAGIC
from repro.objfile.format import (
    ObjectFile,
    ObjectKind,
    SEC_ABS,
    SEC_TEXT,
    Symbol,
)


def module(name, exports=(), kind=ObjectKind.SEGMENT, section=SEC_ABS):
    """A LoadedModule whose meta exports *exports* as (name, value)."""
    meta = ObjectFile(name, kind=kind)
    for sym, value in exports:
        meta.symbols[sym] = Symbol(sym, section, value)
    return LoadedModule(name, f"/shared/{name}", meta, 0x3000_0000, 0,
                        SharingClass.DYNAMIC_PUBLIC)


def chain_of(*specs):
    """Linear parent chain: first spec is the leaf, last the root."""
    modules = [module(name, exports) for name, exports in specs]
    for child, parent in zip(modules, modules[1:]):
        child.add_parent(parent)
    return modules


def diamond():
    """leaf -> (left, right) -> root; left and right share the root."""
    leaf = module("leaf")
    left = module("left", [("dup", 0x3000_1000)])
    right = module("right", [("dup", 0x3000_2000)])
    root = module("root", [("deep", 0x3000_3000)])
    leaf.add_parent(left)
    leaf.add_parent(right)
    left.add_parent(root)
    right.add_parent(root)
    return leaf, left, right, root


class TestScopeChain:
    def test_single_module_yields_itself(self):
        leaf = module("solo")
        assert list(scope_chain(leaf)) == [leaf]

    def test_linear_chain_order(self):
        leaf, mid, root = chain_of(("leaf", ()), ("mid", ()),
                                   ("root", ()))
        assert list(scope_chain(leaf)) == [leaf, mid, root]

    def test_diamond_visits_shared_root_once(self):
        leaf, left, right, root = diamond()
        walk = list(scope_chain(leaf))
        assert walk == [leaf, left, right, root]
        assert walk.count(root) == 1

    def test_bfs_level_order_beats_depth(self):
        # A deep chain on one side, a shallow parent on the other: the
        # shallow parent must be visited before the deep grandparents.
        leaf = module("leaf")
        deep1 = module("deep1")
        deep2 = module("deep2", [("target", 0x3000_1000)])
        shallow = module("shallow", [("target", 0x3000_2000)])
        leaf.add_parent(deep1)
        leaf.add_parent(shallow)
        deep1.add_parent(deep2)
        walk = list(scope_chain(leaf))
        assert walk.index(shallow) < walk.index(deep2)

    def test_shadowed_duplicate_resolves_to_nearest_level(self):
        # "children search up from their current position to the root":
        # the leaf's own export wins over the identically named export
        # two levels up.
        leaf, mid, root = chain_of(
            ("leaf", [("fn", 0x3000_0100)]),
            ("mid", ()),
            ("root", [("fn", 0x3000_9900)]),
        )
        for node in scope_chain(leaf):
            address = node.exports().get("fn")
            if address is not None:
                break
        assert address == 0x3000_0100

    def test_cycle_terminates(self):
        # add_parent refuses self, but a mutual cycle through the DAG
        # must still terminate thanks to the seen-set.
        a = module("a")
        b = module("b")
        a.add_parent(b)
        b.parents.append(a)  # bypass add_parent to force the cycle
        assert list(scope_chain(a)) == [a, b]


class TestPeekExports:
    def put(self, kernel, path, data):
        kernel.vfs.write_whole(path, data, 0)

    def test_template_exports_names(self, kernel, shell, dirs):
        obj = ObjectFile("m.o")
        obj.text.extend(bytes(4))
        obj.symbols["fn"] = Symbol("fn", SEC_TEXT, 0)
        self.put(kernel, "/src/m.o", obj.to_bytes())
        assert peek_exports(kernel, shell, "/src/m.o") == {"fn": 0}

    def test_segment_exports_absolute_addresses(self, kernel, shell,
                                                dirs):
        meta = ObjectFile("seg", kind=ObjectKind.SEGMENT)
        meta.symbols["fn"] = Symbol("fn", SEC_ABS, 0x3000_0010)
        meta_bytes = meta.to_bytes()
        image = bytes(4096)
        blob = image + meta_bytes + TRAILER.pack(
            TRAILER_MAGIC, len(image), len(meta_bytes), 0
        )
        self.put(kernel, "/src/seg", blob)
        exports = peek_exports(kernel, shell, "/src/seg")
        assert exports == {"fn": 0x3000_0010}

    def test_local_symbols_not_exported(self, kernel, shell, dirs):
        from repro.hw.asm import assemble

        obj = assemble(".text\n.globl fn\nfn:\nlabel:\njr ra", "m.o")
        self.put(kernel, "/src/m.o", obj.to_bytes())
        exports = peek_exports(kernel, shell, "/src/m.o")
        assert "fn" in exports and "label" not in exports

    def test_non_module_file_is_none(self, kernel, shell, dirs):
        self.put(kernel, "/src/readme", b"just some prose, no trailer")
        assert peek_exports(kernel, shell, "/src/readme") is None

    def test_garbage_dot_o_is_none(self, kernel, shell, dirs):
        self.put(kernel, "/src/bad.o", b"XXXXnot an object at all")
        assert peek_exports(kernel, shell, "/src/bad.o") is None

    def test_short_file_is_none(self, kernel, shell, dirs):
        self.put(kernel, "/src/tiny", b"ab")
        assert peek_exports(kernel, shell, "/src/tiny") is None

    def test_missing_file_is_none(self, kernel, shell, dirs):
        assert peek_exports(kernel, shell, "/src/nope.o") is None

    def test_empty_chain_of_missing_parents(self, kernel, shell, dirs):
        # A root with no parents: the chain is just the root, and a
        # miss there is a miss, full stop.
        root = module("root")
        misses = [node.exports().get("nowhere")
                  for node in scope_chain(root)]
        assert misses == [None]
