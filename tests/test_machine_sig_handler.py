"""Machine-code program handlers for SIGSEGV (§2's wrapped signal()).

"For compatibility with programs that already catch the SIGSEGV signal,
the library containing our signal handler provides a new version of the
standard signal library call. When the dynamic linking system's fault
handler is unable to resolve a fault, a program-provided handler for
SIGSEGV is invoked, if one exists."

Here the program-provided handler is genuine machine code, run on the
process's own CPU with saved/restored register state.
"""

import pytest

from repro.hw.asm import assemble
from repro.linker.baseline_ld import link_static
from repro.runtime.libshared import attach_runtime


RECOVERING_PROGRAM = """
        .text
        .globl main
main:
        # install handler(addr) via the wrapped signal() call
        la a0, handler
        li v0, 13           # SYS_SIGNAL
        syscall
        # deliberately touch an unmapped private page
        li t0, 0x20400000
        lw t1, 0(t0)        # faults; handler maps it and stores 55
        move v0, t1
        jr ra

handler:
        # a0 = faulting address. Map a page there (anonymous private,
        # prot rwx) and put a recognizable value in it.
        addi sp, sp, -8
        sw ra, 0(sp)
        sw a0, 4(sp)
        li a1, 4096
        li a2, 7            # PROT_RWX
        li a3, 0xFFFFFFFF   # no fd
        li v0, 10           # SYS_MMAP
        syscall
        lw t2, 4(sp)
        li t3, 55
        sw t3, 0(t2)
        lw ra, 0(sp)
        addi sp, sp, 8
        li v0, 1            # resolved: retry the instruction
        jr ra
"""

DECLINING_PROGRAM = """
        .text
        .globl main
main:
        la a0, handler
        li v0, 13
        syscall
        li t0, 0x20400000
        lw t1, 0(t0)
        move v0, t1
        jr ra

handler:
        li v0, 0            # decline: cannot fix it
        jr ra
"""

REGISTER_PRESERVATION_PROGRAM = """
        .text
        .globl main
main:
        la a0, handler
        li v0, 13
        syscall
        li s0, 1234         # callee-saved state the handler clobbers
        li t0, 0x20400000
        lw t1, 0(t0)
        # s0 must still be 1234 after the handler ran
        move v0, s0
        jr ra

handler:
        li s0, 9999         # trashing registers on purpose
        addi sp, sp, -8
        sw ra, 0(sp)
        sw a0, 4(sp)
        li a1, 4096
        li a2, 7
        li a3, 0xFFFFFFFF
        li v0, 10
        syscall
        lw ra, 0(sp)
        addi sp, sp, 8
        li v0, 1
        jr ra
"""


def run(kernel, source):
    image = link_static([assemble(source, "m.o")])
    proc = kernel.create_machine_process("p", image)
    code = kernel.run_until_exit(proc)
    return code, proc


class TestMachineHandlers:
    def test_handler_recovers_fault(self, kernel):
        attach_runtime(kernel)
        code, proc = run(kernel, RECOVERING_PROGRAM)
        assert proc.death_reason is None
        assert code == 55

    def test_declining_handler_leads_to_death(self, kernel):
        attach_runtime(kernel)
        code, proc = run(kernel, DECLINING_PROGRAM)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason

    def test_registers_restored_after_handler(self, kernel):
        attach_runtime(kernel)
        code, proc = run(kernel, REGISTER_PRESERVATION_PROGRAM)
        assert proc.death_reason is None
        assert code == 1234

    def test_no_handler_registered(self, kernel):
        attach_runtime(kernel)
        source = """
            .text
            .globl main
        main:
            li t0, 0x20400000
            lw t1, 0(t0)
            jr ra
        """
        code, proc = run(kernel, source)
        assert proc.exit_code == -1
        assert "SIGSEGV" in proc.death_reason

    def test_faulting_handler_is_contained(self, kernel):
        attach_runtime(kernel)
        source = """
            .text
            .globl main
        main:
            la a0, handler
            li v0, 13
            syscall
            li t0, 0x20400000
            lw t1, 0(t0)
            jr ra

        handler:
            # the handler itself touches another unmapped page
            li t5, 0x20500000
            lw t6, 0(t5)
            li v0, 1
            jr ra
        """
        code, proc = run(kernel, source)
        assert proc.exit_code == -1   # unresolved, process dies
        assert "SIGSEGV" in proc.death_reason
