"""repro.net — the deterministic cluster.

Wire-format integrity, seeded-fabric determinism, inode striping,
pay-for-use on unclustered boots, the single-writer-invalidation
coherence protocol (deterministic smoke + Hypothesis property),
the rwho differential oracle, replay-drift regression under NET-plane
faults, retransmission-exhaustion containment, and wedge/deadlock
detection in the cluster scheduler.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import boot
from repro.errors import InjectedNetError, NetError
from repro.inject import (
    FaultKind,
    FaultPlan,
    Plane,
    cancel_injection,
    request_injection,
)
from repro.kernel.timing import Clock
from repro.net import (
    MAX_RETRANSMITS,
    Cluster,
    Fabric,
    Frame,
    FrameKind,
    Nic,
)
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem
from repro.sfs.sharedfs import MAX_INODES
from repro.tools.cli import (
    UsageError,
    _campaign_plans,
    _net_soak_run,
    repronet_main,
    reprochaos_main,
)

PROP_SEG = "/shared/prop.seg"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def creator_body(path: str, size: int = 64, out: dict = None):
    def body(kernel, proc):
        runtime = runtime_for(kernel, proc)
        base = runtime.create_segment(path, size)
        if out is not None:
            out["base"] = base
        yield
        return 0

    return body


def writer_body(path: str, slot: int, value: int):
    def body(kernel, proc):
        runtime = runtime_for(kernel, proc)
        base = runtime.segment_base(path)
        Mem(kernel, proc).store_u32(base + 4 * slot, value)
        yield
        return 0

    return body


def reader_body(path: str, node: int, views: dict, nslots: int = 4):
    def body(kernel, proc):
        runtime = runtime_for(kernel, proc)
        base = runtime.segment_base(path)
        mem = Mem(kernel, proc)
        views[node] = [mem.load_u32(base + 4 * slot)
                       for slot in range(nslots)]
        yield
        return 0

    return body


def workload_deaths(cluster):
    """(name, reason) for every non-daemon process that died badly."""
    dead = []
    for machine in cluster.machines:
        for pid, proc in machine.kernel.processes.items():
            if pid in machine.daemon_pids:
                continue
            if proc.death_reason is not None:
                dead.append((proc.name, proc.death_reason))
    return dead


# ----------------------------------------------------------------------
# the wire format
# ----------------------------------------------------------------------

class TestFrame:
    def test_roundtrip_every_kind(self):
        for kind in FrameKind:
            frame = Frame(kind, src=3, dst=1, port=0x5257, seq=99,
                          payload=b"hello segments")
            back = Frame.unpack(frame.pack())
            assert back == frame

    def test_runt_frame_rejected(self):
        with pytest.raises(NetError, match="runt"):
            Frame.unpack(b"HN")

    def test_bad_magic_rejected(self):
        wire = bytearray(Frame(FrameKind.DATA, 0, 1, 7, 1,
                               b"x").pack())
        wire[0] ^= 0xFF
        with pytest.raises(NetError, match="magic"):
            Frame.unpack(bytes(wire))

    def test_flipped_payload_bit_rejected(self):
        wire = bytearray(Frame(FrameKind.DATA, 0, 1, 7, 1,
                               b"payload").pack())
        wire[-1] ^= 0x01
        with pytest.raises(NetError, match="checksum"):
            Frame.unpack(bytes(wire))

    def test_truncated_payload_rejected(self):
        wire = Frame(FrameKind.DATA, 0, 1, 7, 1, b"payload").pack()
        with pytest.raises(NetError, match="length"):
            Frame.unpack(wire[:-3])


# ----------------------------------------------------------------------
# the NET fault plane
# ----------------------------------------------------------------------

class TestNetPlans:
    @pytest.mark.parametrize("kind", [FaultKind.DROP, FaultKind.CORRUPT,
                                      FaultKind.DUP, FaultKind.DELAY])
    def test_valid_kinds(self, kind):
        plan = FaultPlan(Plane.NET, kind, probability=0.5)
        assert plan.plane is Plane.NET

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="not valid"):
            FaultPlan(Plane.NET, FaultKind.ERROR)


# ----------------------------------------------------------------------
# seeded fabric determinism (stub kernels, no boot)
# ----------------------------------------------------------------------

class _StubKernel:
    def __init__(self):
        self.clock = Clock()
        self.injector = None


def _stub_fabric(seed: int):
    fabric = Fabric(3, seed=seed)
    nics = [Nic(fabric, node, _StubKernel()) for node in range(3)]
    for node, nic in enumerate(nics):
        fabric.attach(node, nic)
    return fabric, nics


def _drive(seed: int):
    """A fixed traffic pattern; returns the raw delivery transcript."""
    fabric, nics = _stub_fabric(seed)
    for step in range(6):
        nics[step % 3].send(None, (step + 1) % 3, 40 + step,
                            bytes([step]) * step)
    transcript = []
    for rnd in range(1, 12):
        fabric.deliver_due(rnd)
        for nic in nics:
            while nic.inbox:
                transcript.append((rnd, nic.node_id, nic.inbox.pop(0)))
    return transcript


class TestFabricDeterminism:
    def test_same_seed_same_transcript(self):
        assert _drive(1993) == _drive(1993)

    def test_jitter_comes_from_the_seed(self):
        # Different seeds draw different per-link latencies; the frames
        # themselves (seq, payload) are the same either way.
        a, b = _drive(1), _drive(2)
        assert sorted(wire for _, _, wire in a) == \
            sorted(wire for _, _, wire in b)
        assert a != b  # the schedules differ

    def test_total_order_is_round_seq_copy(self):
        # with jitter off, frames due in the same round land in seq
        # order, regardless of how they were queued
        fabric = Fabric(3, seed=7, jitter=0)
        nics = [Nic(fabric, node, _StubKernel()) for node in range(3)]
        for node, nic in enumerate(nics):
            fabric.attach(node, nic)
        for _ in range(8):
            nics[0].send(None, 1, 9, b"x")
        fabric.deliver_due(20)  # everything is due at once
        frames = [Frame.unpack(wire) for wire in nics[1].inbox]
        seqs = [frame.seq for frame in frames]
        assert seqs == sorted(seqs)


# ----------------------------------------------------------------------
# cluster boot: striping, pay-for-use, validation
# ----------------------------------------------------------------------

class TestClusterBoot:
    def test_unclustered_boot_pays_nothing(self):
        kernel = boot().kernel
        assert kernel.nic is None
        assert kernel.coherence is None
        assert kernel.sfs.coherence is None
        assert "net" not in kernel.clock.by_category

    def test_inode_striping(self):
        cluster = Cluster(4, seed=11)
        stripe = MAX_INODES // 4
        for node, machine in enumerate(cluster.machines):
            free = machine.kernel.sfs._free_inos
            # pop() allocates from the end: the next ino handed out is
            # the lowest still-free slot of this node's own stripe
            assert node * stripe <= free[-1] < (node + 1) * stripe
            own = [ino for ino in free
                   if node * stripe <= ino < (node + 1) * stripe]
            assert free[-1] == min(own)
        cluster.shutdown()

    def test_segments_land_in_their_stripe(self):
        cluster = Cluster(4, seed=11)
        stripe = MAX_INODES // 4
        for node in (1, 3):
            out = {}
            cluster.spawn(node, f"creator{node}",
                          creator_body(f"/shared/stripe{node}.seg",
                                       out=out))
            cluster.run()
            sfs = cluster.machines[node].kernel.sfs
            lo = sfs.address_of_inode(node * stripe)
            hi = sfs.address_of_inode((node + 1) * stripe - 1)
            assert lo <= out["base"] <= hi
        cluster.shutdown()

    def test_netd_is_pid_one_everywhere(self):
        cluster = Cluster(3, seed=5)
        for machine in cluster.machines:
            assert machine.netd.pid == 1
            assert machine.netd.pid in machine.daemon_pids
        cluster.shutdown()

    @pytest.mark.parametrize("kwargs", [
        dict(nnodes=0),
        dict(nnodes=2, home=5),
        dict(nnodes=2, disks=[None]),
        dict(nnodes=2, wide_addresses=True),
    ])
    def test_bad_configurations_rejected(self, kwargs):
        with pytest.raises(NetError):
            Cluster(**kwargs)


# ----------------------------------------------------------------------
# coherence: the single-writer-invalidation protocol
# ----------------------------------------------------------------------

class TestCoherence:
    def test_fetch_upgrade_invalidate_refetch(self):
        cluster = Cluster(4, seed=42)
        views = {}
        cluster.spawn(1, "creator", creator_body(PROP_SEG))
        cluster.run()
        cluster.spawn(1, "w1", writer_body(PROP_SEG, 0, 0xAAAA))
        cluster.run()
        cluster.spawn(2, "r2", reader_body(PROP_SEG, 2, views))
        cluster.run()
        assert views[2][0] == 0xAAAA

        # remote write: node 2 upgrades, node 1's copy is invalidated
        cluster.spawn(2, "w2", writer_body(PROP_SEG, 1, 0xBBBB))
        cluster.run()
        cluster.spawn(1, "r1", reader_body(PROP_SEG, 1, views))
        cluster.spawn(3, "r3", reader_body(PROP_SEG, 3, views))
        cluster.run()
        assert views[1][:2] == [0xAAAA, 0xBBBB]
        assert views[3][:2] == [0xAAAA, 0xBBBB]
        assert not workload_deaths(cluster)

        stats = cluster.coherence_stats()
        assert sum(s["fetches"] for s in stats) >= 2
        assert sum(s["invalidations"] for s in stats) >= 1
        assert sum(s["upgrades"] for s in stats) >= 1
        # only participating nodes charged "net" cycles
        assert cluster.net_cycles()[0] >= 0
        cluster.shutdown()

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           writes=st.lists(st.tuples(st.integers(0, 2),
                                     st.integers(0, 3)),
                           min_size=1, max_size=8),
           kind=st.sampled_from([FaultKind.DROP, FaultKind.CORRUPT,
                                 FaultKind.DUP, FaultKind.DELAY]),
           site=st.sampled_from(["rpc", "rpc-reply", "*"]),
           nfaults=st.integers(min_value=0, max_value=3))
    def test_views_match_model_under_bounded_faults(
            self, seed, writes, kind, site, nfaults):
        """With fewer injected faults than the retransmit budget, every
        exchange completes: all writers succeed, and readers on every
        node agree with the last-write-per-slot model."""
        assert nfaults < MAX_RETRANSMITS
        plans = [FaultPlan(Plane.NET, kind, site=site,
                           probability=1.0, max_faults=nfaults)] \
            if nfaults else []
        request_injection(plans, seed=seed)
        try:
            cluster = Cluster(3, seed=(seed % 65521) + 1)
            cluster.spawn(0, "creator", creator_body(PROP_SEG))
            cluster.run()
            model = {}
            for index, (node, slot) in enumerate(writes):
                cluster.spawn(node, f"w{index}",
                              writer_body(PROP_SEG, slot, index + 1))
                cluster.run()
                model[slot] = index + 1
            views = {}
            for node in range(3):
                cluster.spawn(node, f"r{node}",
                              reader_body(PROP_SEG, node, views))
            cluster.run()
            assert not workload_deaths(cluster)
            expected = [model.get(slot, 0) for slot in range(4)]
            assert views == {0: expected, 1: expected, 2: expected}
            cluster.shutdown()
        finally:
            cancel_injection()

    def test_rpc_exhaustion_is_contained(self):
        """Dropping every rpc frame exhausts the retransmit budget: the
        victim dies with the typed InjectedNetError, the kernels and
        the cluster survive."""
        plans = [FaultPlan(Plane.NET, FaultKind.DROP, site="rpc",
                           probability=1.0)]
        request_injection(plans, seed=3)
        try:
            cluster = Cluster(2, seed=8)
            cluster.spawn(0, "creator", creator_body(PROP_SEG))
            cluster.run()
            views = {}
            reader = cluster.spawn(1, "r1",
                                   reader_body(PROP_SEG, 1, views))
            cluster.run()
            assert 1 not in views
            assert reader.death_reason is not None
            assert "InjectedNetError" in reader.death_reason \
                or "SIGSEGV" in reader.death_reason
            injector = cluster.machines[1].kernel.injector
            assert injector is not None and injector.stats.triggered \
                >= MAX_RETRANSMITS
            # the cluster is still alive and serviceable
            cluster.spawn(0, "r0", reader_body(PROP_SEG, 0, views))
            cluster.run()
            assert views[0][0] == 0
            cluster.shutdown()
        finally:
            cancel_injection()


# ----------------------------------------------------------------------
# rwho at cluster scale: differential oracle + netd bridge
# ----------------------------------------------------------------------

class TestClusterRwho:
    def test_shm_matches_single_kernel_oracle(self):
        from repro.apps.rwho.cluster import (
            run_cluster_rwho,
            single_kernel_rwho,
            synth_statuses,
        )

        statuses = synth_statuses(30)
        cluster = Cluster(4, seed=1993)
        result = run_cluster_rwho(cluster, statuses, "shm",
                                  readers=[1, 3])
        cluster.shutdown()
        oracle = single_kernel_rwho(statuses)
        assert result["outputs"][1] == oracle
        assert result["outputs"][3] == oracle
        # the database crossed the wire once per reading node, not once
        # per host: FETCH/GRANT counts stay constant in nhosts
        assert result["by_kind"]["FETCH"] == 2
        assert result["by_kind"]["DATA"] == 30

    def test_file_baseline_matches_and_costs_more_frames(self):
        from repro.apps.rwho.cluster import (
            run_cluster_rwho,
            single_kernel_rwho,
            synth_statuses,
        )

        statuses = synth_statuses(30)
        shm_cluster = Cluster(3, seed=1993)
        shm = run_cluster_rwho(shm_cluster, statuses, "shm",
                               readers=[1])
        shm_cluster.shutdown()
        file_cluster = Cluster(3, seed=1993)
        filed = run_cluster_rwho(file_cluster, statuses, "file",
                                 readers=[1])
        file_cluster.shutdown()
        oracle = single_kernel_rwho(statuses)
        assert shm["outputs"][1] == oracle
        assert filed["outputs"][1] == oracle
        # file baseline: one LIST + one GET round trip per host
        assert filed["frames_sent"] >= 2 * 30
        assert filed["frames_sent"] > shm["frames_sent"]


# ----------------------------------------------------------------------
# replay-drift regression
# ----------------------------------------------------------------------

def _soak(plans, seed):
    return _net_soak_run(4, seed, 24, "shm", plans)


class TestReplayDrift:
    def test_fault_free_replay_is_bit_identical(self):
        first = _soak([], 1993)
        replay = _soak([], 1993)
        assert first["outcome"] == "clean"
        assert first["stream"] == replay["stream"]
        assert first["outputs"] == replay["outputs"]
        assert first["cycles"] == replay["cycles"]
        assert len(first["stream"]) > 0  # NET events were traced

    def test_faulted_replay_is_bit_identical(self):
        plans = _campaign_plans(["net"], 0.2)
        first = _soak(plans, 1993)
        replay = _soak(plans, 1993)
        assert first["outcome"] != "kernel-death"
        assert first["totals"]["triggered"] > 0
        assert first["stream"] == replay["stream"]
        assert first["outputs"] == replay["outputs"]
        assert first["cycles"] == replay["cycles"]


# ----------------------------------------------------------------------
# scheduler wedge/deadlock detection
# ----------------------------------------------------------------------

class TestSchedulerGuards:
    def test_datagram_to_dead_port_is_a_typed_wedge(self):
        cluster = Cluster(2, seed=3)

        def lonely(kernel, proc):
            kernel.nic.send(proc, 1, 0x999, b"anyone home?")
            yield
            return 0

        cluster.spawn(0, "lonely", lonely)
        with pytest.raises(NetError, match="wedged|drain"):
            cluster.run()
        cluster.shutdown()

    def test_round_ceiling_is_enforced(self):
        cluster = Cluster(2, seed=3)

        def forever(kernel, proc):
            while True:
                yield

        cluster.spawn(0, "spin", forever)
        with pytest.raises(NetError, match="quiesce|wedged"):
            cluster.run(max_rounds=50)
        cluster.shutdown()


# ----------------------------------------------------------------------
# the CLI surface
# ----------------------------------------------------------------------

class TestCli:
    def test_topo_is_deterministic(self):
        a, b = io.StringIO(), io.StringIO()
        assert repronet_main(["topo", "--nodes", "3"], stdout=a) == 0
        assert repronet_main(["topo", "--nodes", "3"], stdout=b) == 0
        assert a.getvalue() == b.getvalue()
        assert "inos [0, 341)" in a.getvalue()

    def test_run_reports_traffic(self):
        out = io.StringIO()
        status = repronet_main(
            ["run", "--nodes", "3", "--hosts", "12"], stdout=out)
        assert status == 0
        text = out.getvalue()
        assert "frames" in text and "reader on node" in text

    def test_soak_passes_fixed_seed(self):
        out = io.StringIO()
        status = repronet_main(
            ["soak", "--nodes", "3", "--hosts", "8", "--runs", "1",
             "--rate", "0.05"], stdout=out)
        assert status == 0
        assert "OK" in out.getvalue()

    def test_usage_errors(self):
        with pytest.raises(UsageError):
            repronet_main([])
        with pytest.raises(UsageError):
            repronet_main(["run", "--bogus"])
        with pytest.raises(UsageError):
            repronet_main(["run", "--impl", "carrier-pigeon"])
        with pytest.raises(UsageError):
            reprochaos_main(["--net", "--crash", "x.py"])
