"""Object format, archives, and inspectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ObjectFormatError
from repro.hw.asm import assemble
from repro.objfile.archive import Archive
from repro.objfile.format import (
    LinkInfo,
    ObjectFile,
    ObjectKind,
    Relocation,
    RelocType,
    SEC_DATA,
    SEC_TEXT,
    SEC_UNDEF,
    SectionLayout,
    Symbol,
    SymBinding,
)
from repro.objfile.inspect import nm, objdump


def sample_object(name="sample.o"):
    obj = ObjectFile(name)
    obj.text.extend(b"\x00" * 16)
    obj.data.extend(b"\x01\x02\x03\x04")
    obj.bss_size = 32
    obj.heap_size = 128
    obj.add_symbol(Symbol("fn", SEC_TEXT, 0))
    obj.add_symbol(Symbol("var", SEC_DATA, 0))
    obj.add_symbol(Symbol("local_lbl", SEC_TEXT, 8, SymBinding.LOCAL))
    obj.reference("external")
    obj.relocations.append(
        Relocation(SEC_TEXT, 4, RelocType.JUMP26, "external", 0)
    )
    obj.link_info = LinkInfo([("m.o", "dynamic_public")], ["/shared/lib"])
    obj.entry_symbol = "fn"
    return obj


class TestSerialization:
    def test_roundtrip_identity(self):
        obj = sample_object()
        clone = ObjectFile.from_bytes(obj.to_bytes())
        assert clone.to_bytes() == obj.to_bytes()
        assert clone.name == obj.name
        assert clone.bss_size == 32
        assert clone.heap_size == 128
        assert clone.entry_symbol == "fn"
        assert clone.link_info.dynamic_modules == \
            [("m.o", "dynamic_public")]
        assert clone.link_info.search_path == ["/shared/lib"]
        assert len(clone.relocations) == 1

    def test_layout_survives(self):
        obj = sample_object()
        obj.kind = ObjectKind.EXECUTABLE
        obj.layout["text"] = SectionLayout("text", 0x400000, 16)
        clone = ObjectFile.from_bytes(obj.to_bytes())
        assert clone.kind is ObjectKind.EXECUTABLE
        assert clone.layout["text"].base == 0x400000
        assert clone.layout["text"].end == 0x400010

    def test_bad_magic(self):
        with pytest.raises(ObjectFormatError):
            ObjectFile.from_bytes(b"ELF\x7f" + b"\x00" * 64)

    def test_truncated(self):
        data = sample_object().to_bytes()
        with pytest.raises(ObjectFormatError):
            ObjectFile.from_bytes(data[: len(data) // 2])

    def test_clone_is_deep(self):
        obj = sample_object()
        clone = obj.clone()
        clone.text[0] = 0xFF
        clone.symbols["fn"].value = 99
        assert obj.text[0] == 0
        assert obj.symbols["fn"].value == 0

    @settings(max_examples=25)
    @given(st.binary(max_size=80), st.binary(max_size=80),
           st.integers(min_value=0, max_value=1 << 20),
           st.lists(st.text(
               alphabet=st.characters(min_codepoint=97, max_codepoint=122),
               min_size=1, max_size=10), max_size=5, unique=True))
    def test_roundtrip_property(self, text, data, bss, names):
        obj = ObjectFile("p.o")
        obj.text.extend(text)
        obj.data.extend(data)
        obj.bss_size = bss
        for index, name in enumerate(names):
            obj.add_symbol(Symbol(name, SEC_TEXT, index))
        clone = ObjectFile.from_bytes(obj.to_bytes())
        assert bytes(clone.text) == bytes(text)
        assert bytes(clone.data) == bytes(data)
        assert clone.bss_size == bss
        assert set(clone.symbols) == set(names)


class TestSymbols:
    def test_defined_over_undefined(self):
        obj = ObjectFile("x.o")
        obj.reference("f")
        assert not obj.symbols["f"].defined
        obj.add_symbol(Symbol("f", SEC_TEXT, 4))
        assert obj.symbols["f"].defined

    def test_undefined_after_defined_is_noop(self):
        obj = ObjectFile("x.o")
        obj.add_symbol(Symbol("f", SEC_TEXT, 4))
        obj.add_symbol(Symbol("f", SEC_UNDEF, 0))
        assert obj.symbols["f"].defined

    def test_double_definition_rejected(self):
        obj = ObjectFile("x.o")
        obj.add_symbol(Symbol("f", SEC_TEXT, 0))
        with pytest.raises(ObjectFormatError):
            obj.add_symbol(Symbol("f", SEC_DATA, 0))

    def test_defined_globals_excludes_locals_and_undef(self):
        obj = sample_object()
        names = {s.name for s in obj.defined_globals()}
        assert names == {"fn", "var"}

    def test_undefined_symbols_sorted(self):
        obj = ObjectFile("x.o")
        obj.reference("zeta")
        obj.reference("alpha")
        assert obj.undefined_symbols() == ["alpha", "zeta"]


class TestArchive:
    def _member(self, name, defines, needs=()):
        obj = ObjectFile(name)
        for symbol in defines:
            obj.add_symbol(Symbol(symbol, SEC_TEXT, 0))
        for symbol in needs:
            obj.reference(symbol)
        return obj

    def test_symbol_index_first_wins(self):
        archive = Archive("lib.a")
        archive.add(self._member("a.o", ["f"]))
        archive.add(self._member("b.o", ["f", "g"]))
        index = archive.symbol_index()
        assert index["f"].name == "a.o"
        assert index["g"].name == "b.o"

    def test_resolve_transitive(self):
        archive = Archive("lib.a")
        archive.add(self._member("a.o", ["f"], needs=["g"]))
        archive.add(self._member("b.o", ["g"]))
        archive.add(self._member("c.o", ["unused"]))
        members = archive.resolve({"f"})
        names = {m.name for m in members}
        assert names == {"a.o", "b.o"}

    def test_resolve_nothing_needed(self):
        archive = Archive("lib.a")
        archive.add(self._member("a.o", ["f"]))
        assert archive.resolve({"zzz"}) == []

    def test_duplicate_member_rejected(self):
        archive = Archive("lib.a")
        archive.add(self._member("a.o", ["f"]))
        with pytest.raises(ObjectFormatError):
            archive.add(self._member("a.o", ["g"]))

    def test_archive_roundtrip(self):
        archive = Archive("lib.a")
        archive.add(sample_object("m1.o"))
        archive.add(sample_object("m2.o"))
        clone = Archive.from_bytes(archive.to_bytes())
        assert [m.name for m in clone.members] == ["m1.o", "m2.o"]
        assert clone.member("m1.o") is not None
        assert clone.member("nope.o") is None


class TestInspectors:
    def test_nm_output(self):
        text = nm(sample_object())
        assert "T fn" in text
        assert "D var" in text
        assert "t local_lbl" in text
        assert "U external" in text

    def test_objdump_headers(self):
        text = objdump(sample_object())
        assert "sample.o" in text
        assert "entry: fn" in text
        assert "dynamic modules" in text
        assert "JUMP26" in text

    def test_objdump_disassembly(self):
        obj = assemble(".text\nnop\nadd t0, t1, t2")
        text = objdump(obj, disassemble=True)
        assert "nop" in text
        assert "add t0, t1, t2" in text
