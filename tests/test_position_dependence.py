"""§5 "Position-Dependent Files", demonstrated and contained.

"As soon as we allow a segment to contain absolute internal pointers,
we cannot change its address without changing its data as well. Files
with internal pointers cannot be copied with cp, mailed over the
Internet, or archived with tar and then restored in different places."
"""

import pytest

from repro.apps.xfig import FigText, SharedFigure, generate_figure
from repro.bench.workloads import make_shell
from repro.errors import SimulationError
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem


class TestPositionDependence:
    def test_cp_breaks_internal_pointers(self, kernel, shell):
        """A byte-for-byte copy (cp) lands at a different inode, hence a
        different address; its internal pointers still reference the
        ORIGINAL segment."""
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/orig", 8192)
        mem = Mem(kernel, shell)
        mem.store_u32(base + 0x100, 0xCAFE)   # a record...
        mem.store_u32(base, base + 0x100)     # ...and a pointer to it

        # cp /shared/orig /shared/copy
        blob = kernel.vfs.read_whole("/shared/orig")
        kernel.vfs.write_whole("/shared/copy", blob)
        copy_base = runtime.segment_base("/shared/copy")
        assert copy_base != base

        pointer_in_copy = mem.load_u32(copy_base)
        # The pointer still targets the original segment, not the copy.
        assert pointer_in_copy == base + 0x100
        assert not (copy_base <= pointer_in_copy < copy_base + 8192)

    def test_dangling_after_original_deleted(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/orig", 8192)
        mem = Mem(kernel, shell)
        mem.store_u32(base + 0x100, 0xCAFE)
        mem.store_u32(base, base + 0x100)
        blob = kernel.vfs.read_whole("/shared/orig")
        kernel.vfs.write_whole("/shared/copy", blob)
        copy_base = runtime.segment_base("/shared/copy")
        runtime.delete_segment("/shared/orig")

        # A fresh process follows the copy's pointer: it dangles.
        other = make_shell(kernel, "victim")
        runtime_for(kernel, other)
        other_mem = Mem(kernel, other)
        pointer = other_mem.load_u32(copy_base)
        from repro.vm.faults import PageFaultError

        with pytest.raises(PageFaultError):
            other_mem.load_u32(pointer)

    def test_xfig_figure_copied_by_cp_is_corrupt(self, kernel, shell):
        """The paper's concrete case: figures 'can safely be copied
        only by xfig itself'."""
        figure = generate_figure(10, seed=3)
        shared = SharedFigure(kernel, shell, "/shared/fig", create=True)
        shared.build_from(figure)
        blob = kernel.vfs.read_whole("/shared/fig")
        kernel.vfs.write_whole("/shared/figcopy", blob)
        copied = SharedFigure(kernel, shell, "/shared/figcopy")
        # The copy's head pointer references the original's records; the
        # structure read through the copy is NOT self-contained. (It may
        # even read "successfully" — through the original's pages.)
        head = copied.head
        orig_base = shared.base
        assert orig_base <= head < orig_base + 256 * 1024

    def test_xfig_itself_can_copy_safely(self, kernel, shell):
        """The sanctioned copy path rebuilds pointers: a new segment
        populated through the object routines is self-contained."""
        figure = generate_figure(10, seed=3)
        original = SharedFigure(kernel, shell, "/shared/fig",
                                create=True)
        original.build_from(figure)
        duplicate = SharedFigure(kernel, shell, "/shared/fig2",
                                 create=True)
        duplicate.build_from(original.to_figure())
        base = duplicate.base
        for address in duplicate.object_addresses():
            assert base <= address < base + 256 * 1024
        # And the duplicate survives deletion of the original.
        runtime_for(kernel, shell).delete_segment("/shared/fig")
        reread = duplicate.to_figure()
        assert len(reread.objects) == 10

    def test_archive_restore_elsewhere_detected_by_magic(self, kernel,
                                                         shell):
        """Restoring a segment at a different address breaks shmalloc's
        heap too — caught by its magic/consistency checks rather than
        silently corrupting."""
        from repro.runtime.shmalloc import SegmentHeap

        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/heapseg", 8192)
        mem = Mem(kernel, shell)
        heap = SegmentHeap(mem, base + 8, 8192 - 8)
        heap.initialize()
        heap.alloc(32)
        blob = kernel.vfs.read_whole("/shared/heapseg")
        kernel.vfs.write_whole("/shared/restored", blob)
        new_base = runtime.segment_base("/shared/restored")
        moved = SegmentHeap(mem, new_base + 8, 8192 - 8)
        # The magic IS present (it was copied), but the free list points
        # into the old segment: the structural check trips.
        assert moved.is_initialized()
        with pytest.raises(SimulationError):
            moved.check()