"""repro.rr — whole-machine record/replay and the divergence oracle.

Three layers of contract:

* the **format** (`.rrr`): byte-stable TLV round-trips for manifests,
  packed events, fault plans, and checkpoints;
* the **oracle**: a replay armed with a recording's manifest must be
  bit-identical (events, per-boot cycle totals, checkpoint digests,
  outcome), and any deliberate perturbation must surface as the first
  divergent item with its cycle;
* **time travel**: `seek --cycle N` restores the nearest checkpoint
  (digest-verified) and the re-execution from cycle N onward matches
  the recording exactly — on a single kernel and on an 8-node cluster,
  fault-free and under seeded fault plans (the Hypothesis properties).

`materialize()` is additionally pinned: for machine-pure states,
capture → materialize → capture is a fixed point, and forward execution
from the materialized kernel is bit-identical to never having stopped.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RRError, TraceCursorError
from repro.inject import FaultKind, FaultPlan, Plane
from repro.kernel.timing import CHECKPOINT_NEVER, Clock
from repro.rr import (
    Checkpoint,
    Recording,
    capture_cluster,
    capture_machine,
    diff_states,
    materialize,
    record_call,
    replay_call,
    seek_call,
    state_digest,
)
from repro.rr.recording import decode_plan, encode_plan
from repro.tools.cli import UsageError, reprorr_main

LOOP_SOURCE = """
    .text
    .globl main
main:
    li t0, 20000
loop:
    addi t0, t0, -1
    bgtz t0, loop
    li v0, 0
    jr ra
"""


def _loop_image():
    from repro.hw.asm import assemble
    from repro.linker.baseline_ld import link_static

    return link_static([assemble(LOOP_SOURCE, "main.o")])


def _solo_workload():
    """One kernel: boot, some file traffic, one machine process."""
    from repro import boot

    system = boot()
    kernel = system.kernel
    kernel.vfs.makedirs("/data")
    for index in range(4):
        kernel.vfs.write_whole(f"/data/f{index}",
                               bytes([index]) * 256)
    proc = kernel.create_machine_process("loop", _loop_image())
    kernel.run_until_exit(proc)
    kernel.shutdown()


def _cluster_workload():
    """Eight nodes running the rwho scale scenario."""
    from repro.apps.rwho.cluster import run_cluster_rwho, synth_statuses
    from repro.net import Cluster

    cluster = Cluster(8, seed=7)
    run_cluster_rwho(cluster, synth_statuses(8), "shm")
    cluster.shutdown()


# ---------------------------------------------------------------------------
# format
# ---------------------------------------------------------------------------

class TestRecordingFormat:
    def test_bytes_roundtrip(self):
        recording = Recording(
            manifest={"script": "x.py", "argv": ["a"], "env":
                      {"REPRO_CLUSTER": "4"}, "plans": [], "inject_seed":
                      3, "nodes": 4, "net_seed": 7, "interval": 1000,
                      "kinds": ["FAULT"], "capacity": 512},
            boots=[(100, [["syscalls", 60], ["switches", 40]])],
            events=[[1, 50, 2, 0, "open", 0, 0, 0]],
            checkpoints=[Checkpoint(boot=0, cycle=80, cursor=1,
                                    digest=b"\x01" * 32,
                                    state=["machine", [80, []]])],
            emitted=1, dropped=0, outcome="clean",
        )
        clone = Recording.from_bytes(recording.to_bytes())
        assert clone.manifest == recording.manifest
        assert clone.boots == recording.boots
        assert clone.events == recording.events
        assert clone.emitted == 1 and clone.dropped == 0
        assert clone.outcome == "clean"
        assert len(clone.checkpoints) == 1
        copied = clone.checkpoints[0]
        original = recording.checkpoints[0]
        assert (copied.boot, copied.cycle, copied.cursor,
                copied.digest) == (original.boot, original.cycle,
                                   original.cursor, original.digest)
        assert copied.state == original.state

    def test_bytes_deterministic(self):
        recording = record_call(_solo_workload, interval=50_000)
        assert recording.to_bytes() == recording.to_bytes()
        clone = Recording.from_bytes(recording.to_bytes())
        assert clone.to_bytes() == recording.to_bytes()

    def test_save_load(self, tmp_path):
        recording = record_call(_solo_workload, interval=50_000)
        path = str(tmp_path / "run.rrr")
        recording.save(path)
        assert Recording.load(path).to_bytes() == recording.to_bytes()

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.rrr"
        path.write_bytes(b"not a recording at all")
        with pytest.raises(RRError):
            Recording.load(str(path))

    def test_plan_roundtrip(self):
        plans = [
            FaultPlan(Plane.SYSCALL, FaultKind.ERROR, probability=0.25,
                      errno="EIO"),
            FaultPlan(Plane.IO, FaultKind.SHORT_READ, site="read",
                      max_faults=3, after=2),
            FaultPlan(Plane.LINKER, FaultKind.ERROR, transient=True),
            FaultPlan(Plane.NET, FaultKind.DROP, probability=0.5),
        ]
        for plan in plans:
            clone = decode_plan(encode_plan(plan))
            assert encode_plan(clone) == encode_plan(plan)

    def test_nearest_checkpoint(self):
        cps = [Checkpoint(0, 100, 1, b"a", []),
               Checkpoint(0, 200, 2, b"b", []),
               Checkpoint(0, 300, 3, b"c", [])]
        recording = Recording(manifest={}, boots=[], events=[],
                              checkpoints=cps)
        assert recording.nearest_checkpoint(50) is None
        assert recording.nearest_checkpoint(100).cycle == 100
        assert recording.nearest_checkpoint(250).cycle == 200
        assert recording.nearest_checkpoint(9999).cycle == 300


# ---------------------------------------------------------------------------
# the clock's checkpoint hook
# ---------------------------------------------------------------------------

class TestClockCheckpointHook:
    def test_disarmed_clock_never_fires(self):
        clock = Clock()
        fired = []
        clock.on_checkpoint = fired.append
        clock.charge("syscalls", 10_000)
        assert not fired
        assert clock.checkpoint_at == CHECKPOINT_NEVER

    def test_fires_once_then_disarms(self):
        clock = Clock()
        fired = []
        clock.on_checkpoint = fired.append
        clock.checkpoint_at = 100
        clock.charge("syscalls", 150)
        clock.charge("syscalls", 150)
        assert len(fired) == 1
        assert clock.checkpoint_at == CHECKPOINT_NEVER

    def test_hook_may_rearm(self):
        clock = Clock()
        fired = []

        def hook(c):
            fired.append(c.cycles)
            c.checkpoint_at = c.cycles + 100

        clock.on_checkpoint = hook
        clock.checkpoint_at = 100
        for _ in range(10):
            clock.charge("syscalls", 60)
        assert fired == [120, 240, 360, 480, 600]


# ---------------------------------------------------------------------------
# oracle: replay and deliberate divergence
# ---------------------------------------------------------------------------

class TestOracle:
    def test_fault_free_replay_is_clean(self):
        recording = record_call(_solo_workload, interval=50_000)
        assert recording.outcome == "clean"
        assert recording.checkpoints, "expected periodic checkpoints"
        report = replay_call(recording, _solo_workload)
        assert report.ok, report.render()
        assert report.events_compared == len(recording.events)
        assert "bit-identical" in report.render()

    def test_faulted_replay_is_bit_identical(self):
        plans = [FaultPlan(Plane.SYSCALL, FaultKind.ERROR,
                           probability=0.01, errno="EIO")]
        recording = record_call(_solo_workload, interval=50_000,
                                plans=plans, inject_seed=11)
        report = replay_call(recording, _solo_workload)
        assert report.ok, report.render()

    def test_oracle_reports_divergence_with_cycle(self):
        """A workload that behaves differently on its second run must
        be caught, and the report must carry a usable location."""
        runs = {"n": 0}

        def flaky():
            from repro import boot

            system = boot()
            kernel = system.kernel
            kernel.vfs.makedirs("/data")
            runs["n"] += 1
            if runs["n"] > 1:  # replay-only extra work
                kernel.vfs.write_whole("/data/extra", b"x" * 64)
            proc = kernel.create_machine_process("loop", _loop_image())
            kernel.run_until_exit(proc)
            kernel.shutdown()

        recording = record_call(flaky, interval=50_000)
        report = replay_call(recording, flaky)
        assert not report.ok
        divergence = report.divergence
        assert divergence.what in ("event", "event-count", "cycles",
                                   "checkpoint")
        assert "divergence" in report.render()

    def test_outcome_divergence(self):
        runs = {"n": 0}

        def sometimes_fails():
            from repro import boot

            boot().kernel.shutdown()
            runs["n"] += 1
            if runs["n"] > 1:
                raise SystemExit(3)

        recording = record_call(sometimes_fails, interval=None)
        report = replay_call(recording, sometimes_fails)
        assert not report.ok
        assert report.divergence.what == "outcome"
        assert report.divergence.replayed == "workload-failure"


# ---------------------------------------------------------------------------
# materialize: the true state-restore fast path
# ---------------------------------------------------------------------------

class TestMaterialize:
    def _mid_run_kernel(self):
        from repro.kernel.kernel import Kernel
        from repro.runtime.libshared import attach_runtime

        kernel = Kernel()
        attach_runtime(kernel)
        proc = kernel.create_machine_process("loop", _loop_image())
        while kernel.clock.cycles < 40_000 and proc.alive:
            kernel.run_slice(proc)
            kernel.clock.context_switch()
        return kernel, proc

    def test_capture_is_a_fixed_point(self):
        kernel, _proc = self._mid_run_kernel()
        state = capture_machine(kernel)
        clone = materialize(state)
        assert diff_states(state, capture_machine(clone)) is None
        assert state_digest(capture_machine(clone)) \
            == state_digest(state)

    def test_forward_execution_bit_identical(self):
        kernel, proc = self._mid_run_kernel()
        state = capture_machine(kernel)
        kernel.run_until_exit(proc)
        original = (kernel.clock.cycles, dict(kernel.clock.by_category),
                    proc.exit_code)
        clone = materialize(state)
        twin = clone.process(proc.pid)
        clone.run_until_exit(twin)
        assert (clone.clock.cycles, dict(clone.clock.by_category),
                twin.exit_code) == original
        assert state_digest(capture_machine(clone)) \
            == state_digest(capture_machine(kernel))

    def test_cluster_state_is_rejected(self):
        from repro.net import Cluster

        cluster = Cluster(2, seed=3)
        state = capture_cluster(cluster)
        cluster.shutdown()
        with pytest.raises(RRError):
            materialize(state)

    def test_live_native_process_is_rejected(self):
        from repro import boot

        system = boot()
        kernel = system.kernel

        def body(kernel, proc):
            while True:
                yield

        kernel.create_native_process("daemon", body)
        state = capture_machine(kernel)
        with pytest.raises(RRError):
            materialize(state)


# ---------------------------------------------------------------------------
# seek
# ---------------------------------------------------------------------------

class TestSeek:
    def test_seek_to_checkpoint_cycle(self):
        recording = record_call(_solo_workload, interval=50_000)
        target = recording.checkpoints[0].cycle
        result = seek_call(recording, target, _solo_workload)
        assert result.checkpoint_cycle == target
        assert result.digest_ok
        assert result.suffix_identical
        assert result.events == [event for event in recording.events
                                 if event[1] >= target]

    def test_seek_before_first_checkpoint_replays_from_boot(self):
        recording = record_call(_solo_workload, interval=50_000)
        result = seek_call(recording, 0, _solo_workload)
        assert result.checkpoint_cycle is None
        assert result.digest_ok
        assert result.suffix_identical
        assert len(result.events) == len(recording.events)

    def test_reverse_step(self):
        """Seek to a later cycle, then to an earlier one: both restore
        verified state, which is what reverse-step means here."""
        recording = record_call(_solo_workload, interval=15_000)
        assert len(recording.checkpoints) >= 2
        later = recording.checkpoints[-1].cycle + 1
        earlier = recording.checkpoints[0].cycle + 1
        forward = seek_call(recording, later, _solo_workload)
        backward = seek_call(recording, earlier, _solo_workload)
        assert forward.digest_ok and forward.suffix_identical
        assert backward.digest_ok and backward.suffix_identical
        assert backward.checkpoint_cycle < forward.checkpoint_cycle


# ---------------------------------------------------------------------------
# the Hypothesis properties (ISSUE 7 satellite 4)
# ---------------------------------------------------------------------------

def _plans_for(plane: str, rate: float):
    if not rate:
        return []
    if plane == "syscall":
        return [FaultPlan(Plane.SYSCALL, FaultKind.ERROR,
                          probability=rate, errno="EIO")]
    if plane == "io":
        return [FaultPlan(Plane.IO, FaultKind.SHORT_READ, site="read",
                          probability=rate)]
    return [FaultPlan(Plane.LINKER, FaultKind.ERROR, probability=rate,
                      transient=True)]


class TestReplayProperties:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           plane=st.sampled_from(["syscall", "io", "linker"]),
           rate=st.sampled_from([0.0, 0.002, 0.01]),
           interval=st.integers(min_value=30_000, max_value=150_000),
           pick=st.integers(min_value=0, max_value=2**32 - 1))
    def test_single_kernel_seek_bit_identical(self, seed, plane, rate,
                                              interval, pick):
        """Any (seed, fault plan, checkpoint cycle): restoring the
        checkpoint and re-executing is bit-identical to the
        uninterrupted recording — events from the target cycle onward
        match exactly and the restored digest verifies."""
        recording = record_call(_solo_workload, interval=interval,
                                plans=_plans_for(plane, rate),
                                inject_seed=seed)
        report = replay_call(recording, _solo_workload)
        assert report.ok, report.render()
        horizon = max(boot[0] for boot in recording.boots)
        cycle = pick % (horizon + 1)
        result = seek_call(recording, cycle, _solo_workload)
        assert result.digest_ok, result.render()
        assert result.suffix_identical, result.render()

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           nfaults=st.integers(min_value=0, max_value=2),
           interval=st.integers(min_value=10_000, max_value=60_000),
           pick=st.integers(min_value=0, max_value=2**32 - 1))
    def test_cluster_seek_bit_identical(self, seed, nfaults, interval,
                                        pick):
        """The same property on an 8-node cluster, with bounded
        NET-plane faults (under the retransmit budget, so the scenario
        still completes) and round-boundary checkpoints."""
        plans = [FaultPlan(Plane.NET, FaultKind.DROP, probability=1.0,
                           max_faults=nfaults)] if nfaults else []
        recording = record_call(_cluster_workload, interval=interval,
                                plans=plans, inject_seed=seed)
        report = replay_call(recording, _cluster_workload)
        assert report.ok, report.render()
        horizon = max(boot[0] for boot in recording.boots)
        cycle = pick % (horizon + 1)
        result = seek_call(recording, cycle, _cluster_workload)
        assert result.digest_ok, result.render()
        assert result.suffix_identical, result.render()


# ---------------------------------------------------------------------------
# the reprorr CLI
# ---------------------------------------------------------------------------

class TestReprorrCli:
    def _script(self, tmp_path):
        script = tmp_path / "workload.py"
        script.write_text(
            "from repro import boot\n"
            "system = boot()\n"
            "system.kernel.vfs.makedirs('/data')\n"
            "system.kernel.vfs.write_whole('/data/f', b'x' * 128)\n"
            "system.kernel.shutdown()\n"
        )
        return str(script)

    def test_record_replay_info_seek(self, tmp_path, capsys):
        script = self._script(tmp_path)
        out = str(tmp_path / "run.rrr")
        assert reprorr_main(["record", "-o", out, "--interval",
                             "100000", script]) == 0
        assert os.path.isfile(out)
        assert reprorr_main(["info", out]) == 0
        assert reprorr_main(["replay", out]) == 0
        assert reprorr_main(["seek", "--cycle", "100000", out]) == 0
        text = capsys.readouterr().out
        assert "replay ok" in text
        assert "bit-identical" in text

    def test_usage_errors(self, tmp_path):
        with pytest.raises(UsageError):
            reprorr_main([])
        with pytest.raises(UsageError):
            reprorr_main(["bogus"])
        with pytest.raises(UsageError):
            reprorr_main(["record", "/no/such/script.py"])
        with pytest.raises(UsageError):
            reprorr_main(["replay", "/no/such/recording.rrr"])
        with pytest.raises(UsageError):
            reprorr_main(["info"])
        recording = tmp_path / "r.rrr"
        recording.write_bytes(b"garbage")
        with pytest.raises(UsageError):
            reprorr_main(["replay", str(recording)])
        with pytest.raises(UsageError):  # seek without --cycle
            reprorr_main(["seek", str(recording)])

    def test_replay_missing_script_wants_override(self, tmp_path):
        script = self._script(tmp_path)
        out = str(tmp_path / "run.rrr")
        assert reprorr_main(["record", "-o", out, script]) == 0
        os.remove(script)
        with pytest.raises(UsageError):
            reprorr_main(["replay", out])
