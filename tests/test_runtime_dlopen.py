"""The explicit dlopen/dlsym interface (§3's dld / SunOS baseline)."""

import pytest

from repro.hw.asm import assemble
from repro.linker.lds import store_object
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem

MODULE = """
        .text
        .globl dl_fn
dl_fn:
        la t0, dl_value
        lw v0, 0(t0)
        jr ra
        .data
        .globl dl_value
dl_value: .word 4321
"""


@pytest.fixture
def loaded(kernel, shell):
    kernel.vfs.makedirs("/shared/lib")
    store_object(kernel, shell, "/shared/lib/dlmod.o",
                 assemble(MODULE, "dlmod.o"))
    runtime = runtime_for(kernel, shell)
    runtime.start_native(search_dirs=["/shared/lib"])
    return runtime


class TestDlopen:
    def test_open_and_sym(self, kernel, shell, loaded):
        handle = loaded.dlopen("/shared/lib/dlmod.o")
        address = loaded.dlsym(handle, "dl_value")
        assert address is not None
        assert Mem(kernel, shell).load_u32(address) == 4321

    def test_unknown_symbol_is_none(self, loaded):
        handle = loaded.dlopen("/shared/lib/dlmod.o")
        assert loaded.dlsym(handle, "nope") is None

    def test_open_links_immediately(self, kernel, shell, loaded):
        handle = loaded.dlopen("/shared/lib/dlmod.o")
        assert handle.linked
        assert handle.accessible

    def test_open_creates_public_module(self, kernel, shell, loaded):
        loaded.dlopen("/shared/lib/dlmod.o")
        assert kernel.vfs.exists("/shared/lib/dlmod")

    def test_open_missing_path(self, kernel, shell, loaded):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            loaded.dlopen("/shared/lib/ghost.o")

    def test_dlopen_dedupes_with_transparent_linking(self, kernel, shell,
                                                     loaded):
        handle1 = loaded.dlopen("/shared/lib/dlmod.o")
        # Transparent resolution reaches the same module instance.
        address = loaded.resolve_symbol("dl_fn")
        assert address == loaded.dlsym(handle1, "dl_fn")

    def test_lazy_dlopen_defers_link(self, kernel, shell):
        kernel.vfs.makedirs("/shared/app")
        store_object(kernel, shell, "/shared/app/outer.o", assemble("""
            .searchdir /shared/app
            .text
            .globl outer_fn
        outer_fn:
            jal inner_fn
            jr ra
        """, "outer.o"))
        store_object(kernel, shell, "/shared/app/inner_fn.o", assemble("""
            .text
            .globl inner_fn
        inner_fn:
            li v0, 9
            jr ra
        """, "inner_fn.o"))
        runtime = runtime_for(kernel, shell)
        runtime.start_native(search_dirs=["/shared/app"])
        handle = runtime.dlopen("/shared/app/outer.o", lazy=True)
        assert not handle.linked      # undefined refs deferred
        runtime.ldl.link_module(handle)
        assert handle.linked
        assert runtime.ldl.stats.modules_created == 2  # inner chained in
