"""The runtime library: fault handler, signal() wrapper, segments,
symbol resolution, and the §5 safety caveat."""

import pytest

from repro.errors import SyscallError
from repro.hw.asm import assemble
from repro.kernel.signals import Signal
from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.runtime.libshared import HemlockRuntime, runtime_for
from repro.runtime.views import Mem
from repro.sfs.sharedfs import MAX_FILE_SIZE


class TestSegmentLibrary:
    def test_create_segment_returns_global_address(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/seg", 4096)
        ino = kernel.vfs.stat("/shared/seg").st_ino
        assert base == kernel.sfs.address_of_inode(ino)

    def test_segment_base_for_existing(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/seg", 4096)
        assert runtime.segment_base("/shared/seg") == base

    def test_create_exclusive(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        runtime.create_segment("/shared/seg", 4096)
        with pytest.raises(Exception):
            runtime.create_segment("/shared/seg", 4096)
        # Non-exclusive re-open succeeds.
        runtime.create_segment("/shared/seg", 4096, exclusive=False)

    def test_create_oversized_rejected(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        with pytest.raises(SyscallError):
            runtime.create_segment("/shared/big", MAX_FILE_SIZE + 1)

    def test_delete_segment(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/seg", 4096)
        mem = Mem(kernel, shell)
        mem.store_u32(base, 9)  # maps it
        runtime.delete_segment("/shared/seg")
        assert not kernel.vfs.exists("/shared/seg")
        assert not shell.address_space.is_mapped(base)

    def test_runtime_for_is_idempotent(self, kernel, shell):
        first = runtime_for(kernel, shell)
        second = runtime_for(kernel, shell)
        assert first is second


class TestPointerChasing:
    def test_read_only_rights_mapped_read_only(self, kernel, shell):
        """'access rights permitting' — a segment the user may only
        read is mapped without write permission; writes still fault."""
        owner = runtime_for(kernel, shell)
        base = owner.create_segment("/shared/ro", 4096)
        mem = Mem(kernel, shell)
        mem.store_u32(base, 7)

        from repro.bench.workloads import make_shell

        other = make_shell(kernel, "other")
        other.uid = 5
        runtime_for(kernel, other)
        # Make the file read-only for others.
        _fs, inode = kernel.vfs.resolve("/shared/ro")
        inode.mode = 0o644
        other_mem = Mem(kernel, other)
        assert other_mem.load_u32(base) == 7
        from repro.vm.faults import PageFaultError

        with pytest.raises(PageFaultError):
            other_mem.store_u32(base, 8)

    def test_no_rights_not_mapped(self, kernel, shell):
        owner = runtime_for(kernel, shell)
        base = owner.create_segment("/shared/hidden", 4096)
        _fs, inode = kernel.vfs.resolve("/shared/hidden")
        inode.mode = 0o600
        from repro.bench.workloads import make_shell
        from repro.vm.faults import PageFaultError

        other = make_shell(kernel, "other")
        other.uid = 5
        runtime_for(kernel, other)
        with pytest.raises(PageFaultError):
            Mem(kernel, other).load_u32(base)

    def test_safety_caveat_wild_pointer_maps_segment(self, kernel,
                                                     shell):
        """§5 Safety: an *erroneous* reference that happens to land in
        an accessible segment is silently satisfied — the documented
        cost of the design, reproduced faithfully."""
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/innocent", 4096)
        mem = Mem(kernel, shell)
        # This "bug" dereferences a garbage pointer that happens to
        # point into the innocent segment: no crash.
        wild_pointer = base + 0x10
        assert mem.load_u32(wild_pointer) == 0
        assert runtime.segments_mapped == 1


class TestSignalWrapper:
    def test_program_handler_runs_after_runtime(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        seen = []

        def program_handler(_proc, info):
            seen.append(info.address)
            return False

        runtime.signal(program_handler)
        handlers = shell.signal_handlers[Signal.SIGSEGV]
        assert handlers[0] == runtime._segv_handler
        assert handlers[-1] == program_handler

        from repro.vm.faults import AccessKind, PageFaultError

        fault = PageFaultError(0x6F000000, AccessKind.READ, present=False)
        resolved = kernel.deliver_fault(shell, fault)
        assert not resolved       # nothing could map it...
        assert seen == [0x6F000000]  # ...so the program handler ran

    def test_program_handler_can_resolve(self, kernel, shell):
        runtime = runtime_for(kernel, shell)

        def recovery(proc, info):
            proc.address_space.map(info.address & ~0xFFF, 4096, prot=0x7)
            return True

        runtime.signal(recovery)
        mem = Mem(kernel, shell)
        assert mem.load_u32(0x12340000) == 0  # program handler mapped it


class TestSymbolResolution:
    def test_resolve_symbol_through_dag(self, system, shell):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/vars.o", assemble("""
            .text
            .globl get
        get:
            jr ra
            .data
            .globl shared_var
        shared_var: .word 31337
        """, "vars.o"))
        runtime = runtime_for(kernel, shell)
        runtime.start_native(search_dirs=["/shared/lib"])
        address = runtime.resolve_symbol("shared_var")
        assert address is not None
        mem = Mem(kernel, shell)
        assert mem.load_u32(address) == 31337

    def test_resolve_unknown_symbol(self, kernel, shell):
        runtime = runtime_for(kernel, shell)
        runtime.start_native()
        assert runtime.resolve_symbol("ghost") is None

    def test_native_process_links_module_symbolically(self, system,
                                                      shell):
        """Language-level access from a native process: resolve a name,
        then read/write the variable directly."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/vars.o", assemble("""
            .data
            .globl config_value
        config_value: .word 10
        """, "vars.o"))
        runtime = runtime_for(kernel, shell)
        runtime.start_native(
            modules=[("vars.o", SharingClass.DYNAMIC_PUBLIC.value)],
            search_dirs=["/shared/lib"],
        )
        address = runtime.resolve_symbol("config_value")
        mem = Mem(kernel, shell)
        assert mem.load_u32(address) == 10
        mem.store_u32(address, 20)
        # Visible through the file interface too (same segment pages).
        from repro.linker.segments import read_segment_meta

        meta, base, _len = read_segment_meta(kernel, shell,
                                             "/shared/lib/vars")
        offset = address - base
        raw = kernel.vfs.read_whole("/shared/lib/vars")[offset:offset + 4]
        assert int.from_bytes(raw, "little") == 20
