"""Per-segment heap allocator: unit + property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.shmalloc import (
    BLOCK_HEADER,
    HEADER_SIZE,
    DoubleFreeError,
    InvalidFreeError,
    SegmentHeap,
    SegmentHeapError,
)
from repro.runtime.views import Mem
from repro.vm.address_space import PROT_RW

BASE = 0x20000000
SIZE = 64 * 1024


@pytest.fixture
def mem(kernel, shell):
    shell.address_space.map(BASE, SIZE, prot=PROT_RW)
    return Mem(kernel, shell)


@pytest.fixture
def heap(mem):
    h = SegmentHeap(mem, BASE, SIZE)
    h.initialize()
    return h


class TestBasics:
    def test_initialize_and_detect(self, mem):
        heap = SegmentHeap(mem, BASE, SIZE)
        assert not heap.is_initialized()
        heap.initialize()
        assert heap.is_initialized()
        heap.ensure_initialized()  # idempotent
        assert heap.free_bytes() == SIZE - HEADER_SIZE

    def test_too_small_rejected(self, mem):
        with pytest.raises(SegmentHeapError):
            SegmentHeap(mem, BASE, 8)

    def test_alloc_returns_disjoint_blocks(self, heap):
        a = heap.alloc(100)
        b = heap.alloc(100)
        assert abs(a - b) >= 100 + BLOCK_HEADER

    def test_alloc_aligned(self, heap):
        for size in (1, 7, 8, 13, 100):
            assert heap.alloc(size) % 8 == 0

    def test_payload_usable(self, heap, mem):
        block = heap.alloc(64)
        mem.store_bytes(block, b"z" * 64)
        heap.check()

    def test_free_and_reuse(self, heap):
        a = heap.alloc(128)
        heap.free(a)
        b = heap.alloc(128)
        assert b == a  # first-fit reuses the freed block

    def test_coalescing(self, heap):
        blocks = [heap.alloc(100) for _ in range(4)]
        before = heap.free_bytes()
        for block in blocks:
            heap.free(block)
        assert heap.free_bytes() == SIZE - HEADER_SIZE
        assert len(list(heap.free_blocks())) == 1
        assert heap.free_bytes() > before

    def test_double_free_detected(self, heap):
        block = heap.alloc(32)
        heap.free(block)
        with pytest.raises(SegmentHeapError):
            heap.free(block)

    def test_exhaustion(self, heap):
        with pytest.raises(SegmentHeapError):
            heap.alloc(SIZE)

    def test_no_heap_detected(self, mem):
        heap = SegmentHeap(mem, BASE, SIZE)
        with pytest.raises(SegmentHeapError):
            heap.alloc(8)

    def test_heap_state_is_in_memory_not_python(self, kernel, shell,
                                                mem, heap):
        """A second SegmentHeap object sees the first one's state —
        that is what makes it work across processes."""
        block = heap.alloc(100)
        other = SegmentHeap(mem, BASE, SIZE)
        other.free(block)
        assert other.free_bytes() == SIZE - HEADER_SIZE


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"),
                      st.integers(min_value=1, max_value=2000)),
            st.tuples(st.just("free"),
                      st.integers(min_value=0, max_value=30)),
        ),
        max_size=60,
    ))
    def test_alloc_free_invariants(self, operations):
        # Fixtures don't mix with @given; build a fresh context inline.
        from repro import boot
        from repro.bench.workloads import make_shell

        kernel = boot().kernel
        shell = make_shell(kernel)
        shell.address_space.map(BASE, SIZE, prot=PROT_RW)
        mem = Mem(kernel, shell)
        heap = SegmentHeap(mem, BASE, SIZE)
        heap.initialize()
        live = []
        for op, arg in operations:
            if op == "alloc":
                try:
                    block = heap.alloc(arg)
                except SegmentHeapError:
                    continue
                # Blocks never overlap.
                for other, other_size in live:
                    assert block + arg <= other \
                        or other + other_size <= block
                live.append((block, arg))
            elif live:
                index = arg % len(live)
                block, _size = live.pop(index)
                heap.free(block)
            heap.check()
        for block, _size in live:
            heap.free(block)
        heap.check()
        assert heap.free_bytes() == SIZE - HEADER_SIZE


class TestTypedErrors:
    """The edge cases the heap sanitizer surfaced: misuse must raise a
    typed error instead of corrupting the heap tiling."""

    def test_negative_alloc_raises(self, heap):
        with pytest.raises(SegmentHeapError):
            heap.alloc(-1)

    def test_zero_size_allocs_stay_distinct(self, heap):
        first = heap.alloc(0)
        second = heap.alloc(0)
        assert first != second
        heap.free(first)
        heap.free(second)
        heap.check()

    def test_double_free_is_typed(self, heap):
        payload = heap.alloc(16)
        heap.free(payload)
        with pytest.raises(DoubleFreeError):
            heap.free(payload)
        heap.check()

    def test_interior_free_is_typed(self, heap):
        payload = heap.alloc(64)
        with pytest.raises(InvalidFreeError):
            heap.free(payload + 8)
        heap.check()
        heap.free(payload)

    def test_never_allocated_pointer_free_is_typed(self, heap):
        with pytest.raises(InvalidFreeError):
            heap.free(BASE + SIZE - 8)
        heap.check()

    def test_typed_errors_are_heap_errors(self):
        assert issubclass(InvalidFreeError, SegmentHeapError)
        assert issubclass(DoubleFreeError, SegmentHeapError)

    def test_coalescing_at_segment_end(self, heap):
        """Free the last block first: the end-of-heap neighbour must
        coalesce cleanly and restore the full free span."""
        blocks = [heap.alloc(256) for _ in range(4)]
        for payload in reversed(blocks):
            heap.free(payload)
            heap.check()
        assert heap.free_bytes() == SIZE - HEADER_SIZE
        assert len(list(heap.free_blocks())) == 1
