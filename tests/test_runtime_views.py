"""Typed views over simulated memory, incl. fault-transparent access."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem, StructDef, iterate_list
from repro.vm.address_space import PROT_RW


@pytest.fixture
def mem(kernel, shell):
    shell.address_space.map(0x20000000, 64 * 1024, prot=PROT_RW)
    return Mem(kernel, shell)


BASE = 0x20000000


class TestScalars:
    def test_u32_roundtrip(self, mem):
        mem.store_u32(BASE, 0xDEADBEEF)
        assert mem.load_u32(BASE) == 0xDEADBEEF

    def test_i32_roundtrip(self, mem):
        mem.store_i32(BASE, -12345)
        assert mem.load_i32(BASE) == -12345
        assert mem.load_u32(BASE) == 0xFFFFCFC7

    def test_u16_u8(self, mem):
        mem.store_u16(BASE, 0xABCD)
        mem.store_u8(BASE + 2, 0x7F)
        assert mem.load_u16(BASE) == 0xABCD
        assert mem.load_u8(BASE + 2) == 0x7F

    def test_bytes(self, mem):
        mem.store_bytes(BASE, b"raw data")
        assert mem.load_bytes(BASE, 8) == b"raw data"

    def test_cstring(self, mem):
        mem.store_cstring(BASE, "hello")
        assert mem.load_cstring(BASE) == "hello"

    def test_cstring_truncation(self, mem):
        mem.store_cstring(BASE, "abcdefgh", max_length=4)
        assert mem.load_cstring(BASE) == "abc"

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_u32_property(self, value):
        # Fixtures don't mix with @given; build a fresh context inline.
        from repro import boot
        from repro.bench.workloads import make_shell

        kernel = boot().kernel
        shell = make_shell(kernel)
        shell.address_space.map(BASE, 4096, prot=PROT_RW)
        mem = Mem(kernel, shell)
        mem.store_u32(BASE + 16, value)
        assert mem.load_u32(BASE + 16) == value


class TestStructDef:
    NODE = StructDef("node", [
        ("next", "ptr"),
        ("flags", "u8"),
        ("count", "u16"),
        ("value", "i32"),
        ("name", "cstr:8"),
    ])

    def test_natural_alignment(self):
        offsets = self.NODE.offsets
        assert offsets["next"] == 0
        assert offsets["flags"] == 4
        assert offsets["count"] == 6   # aligned to 2
        assert offsets["value"] == 8   # aligned to 4
        assert offsets["name"] == 12
        assert self.NODE.size == 20

    def test_get_set(self, mem):
        view = self.NODE.view(mem, BASE)
        view.update(next=0x20001000, flags=3, count=500, value=-9,
                    name="abc")
        assert view.get("next") == 0x20001000
        assert view.get("flags") == 3
        assert view.get("count") == 500
        assert view.get("value") == -9
        assert view.get("name") == "abc"

    def test_as_dict(self, mem):
        view = self.NODE.view(mem, BASE)
        view.update(next=0, flags=0, count=0, value=5, name="n")
        assert view.as_dict()["value"] == 5

    def test_cstr_padded(self, mem):
        view = self.NODE.view(mem, BASE)
        view.set("name", "toolongname")
        assert view.get("name") == "toolong"  # 8 bytes incl NUL

    def test_bytes_field_exact_length(self, mem):
        blob = StructDef("b", [("payload", "bytes:4")])
        view = blob.view(mem, BASE)
        view.set("payload", b"abcd")
        assert view.get("payload") == b"abcd"
        with pytest.raises(SimulationError):
            view.set("payload", b"abc")

    def test_array_item(self, mem):
        for index in range(3):
            self.NODE.array_item(mem, BASE, index).update(
                next=0, flags=0, count=index, value=index * 2, name="x"
            )
        assert self.NODE.array_item(mem, BASE, 2).get("value") == 4

    def test_duplicate_field_rejected(self):
        with pytest.raises(SimulationError):
            StructDef("bad", [("a", "u32"), ("a", "u32")])

    def test_unknown_type_rejected(self):
        with pytest.raises(SimulationError):
            StructDef("bad", [("a", "float")])


class TestLinkedLists:
    PAIR = StructDef("pair", [("next", "ptr"), ("value", "u32")])

    def test_iterate(self, mem):
        addresses = [BASE + 0x100 * i for i in range(4)]
        for index, address in enumerate(addresses):
            nxt = addresses[index + 1] if index + 1 < len(addresses) else 0
            self.PAIR.view(mem, address).update(next=nxt, value=index)
        values = [v.get("value")
                  for v in iterate_list(mem, addresses[0], self.PAIR)]
        assert values == [0, 1, 2, 3]

    def test_empty_list(self, mem):
        assert list(iterate_list(mem, 0, self.PAIR)) == []

    def test_cycle_detected(self, mem):
        self.PAIR.view(mem, BASE).update(next=BASE, value=1)
        with pytest.raises(SimulationError):
            list(iterate_list(mem, BASE, self.PAIR, max_nodes=10))


class TestFaultTransparency:
    def test_access_maps_segment_on_fault(self, kernel, shell):
        """Following a pointer into an unmapped shared segment just
        works: SIGSEGV -> handler maps -> access restarts."""
        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/auto", 8192)
        mem = Mem(kernel, shell)
        assert not shell.address_space.is_mapped(base)
        mem.store_u32(base, 41)
        assert shell.address_space.is_mapped(base)
        assert mem.load_u32(base) == 41

    def test_unresolvable_fault_propagates(self, kernel, shell):
        runtime_for(kernel, shell)
        mem = Mem(kernel, shell)
        from repro.vm.faults import PageFaultError

        with pytest.raises(PageFaultError):
            mem.load_u32(0x6FFFF000)  # public range, no segment there
