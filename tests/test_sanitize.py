"""repro.sanitize: the race detector, heap sanitizer, and reprosan.

Covers the acceptance contract of the sanitize plane:

* every seeded corpus case fires its expected finding, with full
  attribution (segment path, offset, absolute address, both access
  sites) and >= 8 true races across the corpus;
* armed reports are byte-identical across two runs of the same seed,
  and arming never changes the simulated cycle count (pay-for-use);
* the Hypothesis shadow-consistency property: the incrementally
  maintained tracked-page view equals the recomputed-from-scratch
  view across map/write/mprotect/unmap — and across fork/COW and
  cluster FETCH/INVALIDATE traffic in the deterministic variants;
* no false positives: every ``examples/`` program runs clean armed;
* the shared diagnostic CATALOG rejects duplicate registrations;
* the static SAN pass: the seeded broken corpus is in the analyze
  corpus and clean compiled code produces no SAN findings;
* the ``reprosan`` CLI surface, including ``--replay`` seeking an rr
  recording to the first racing access pair.
"""

import io
import runpy
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import boot
from repro.analyze import CATALOG, DuplicateCodeError, Severity, \
    register_codes
from repro.analyze.corpus import broken_objects
from repro.analyze.pipeline import analyze_object
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem
from repro.sanitize import cancel_sanitize, request_sanitize
from repro.sanitize.corpus import SEG, san_cases, case_named
from repro.tools.cli import UsageError, reprosan_main
from repro.vm.address_space import PROT_READ, PROT_RW
from repro.vm.layout import is_public_address

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(scope="module")
def corpus_reports():
    """One armed run of every corpus case (cases arm themselves)."""
    return {case.name: case.run() for case in san_cases()}


# ---------------------------------------------------------------------------
# the seeded corpus: every case fires, with attribution
# ---------------------------------------------------------------------------


class TestCorpus:
    @pytest.mark.parametrize("name",
                             [case.name for case in san_cases()])
    def test_case_fires_expected_finding(self, corpus_reports, name):
        case = case_named(name)
        report = corpus_reports[name]
        assert case.expect in report.render()
        if case.kind == "race":
            assert report.races
        else:
            assert report.heap

    @pytest.mark.parametrize("name",
                             [case.name for case in san_cases()
                              if case.kind == "race"])
    def test_race_attribution(self, corpus_reports, name):
        """Every race names the segment, offset, absolute address,
        and both access sites with cycle stamps and locksets."""
        for race in corpus_reports[name].races:
            assert race.segment.startswith("/")
            assert race.address % 4 == 0
            assert is_public_address(race.address)
            assert (race.address - race.offset) % 4096 == 0
            assert race.first.label != race.second.label
            assert race.first.kind in ("read", "write")
            assert race.second.kind in ("read", "write")
            assert 0 < race.first.cycle <= race.second.cycle
            assert isinstance(race.first.locks, tuple)

    def test_at_least_eight_true_races(self, corpus_reports):
        race_cases = [case for case in san_cases()
                      if case.kind == "race"]
        assert len(race_cases) >= 8
        total = sum(len(corpus_reports[case.name].races)
                    for case in race_cases)
        assert total >= 8

    def test_flock_one_sided_attribution(self, corpus_reports):
        """The canonical Eraser shape: the locked site shows its
        lockset, the bare site shows none."""
        report = corpus_reports["flock-one-sided"]
        assert len(report.races) == 1
        race = report.races[0]
        assert race.segment == SEG
        assert race.offset == 0x10
        assert race.kind == "write-write"
        assert any(name.startswith("flock:")
                   for name in race.first.locks)
        assert race.second.locks == ()

    def test_cluster_races_cross_label_nodes(self, corpus_reports):
        report = corpus_reports["cluster-piggyback-write"]
        race = report.races[0]
        assert race.first.label.startswith("n")
        assert "/" in race.first.label

    def test_heap_findings_attributed(self, corpus_reports):
        for name in ("heap-use-after-free", "heap-redzone",
                     "heap-double-free", "heap-leak"):
            finding = corpus_reports[name].heap[0]
            assert finding.segment == SEG
            assert is_public_address(finding.address)
            assert finding.label.startswith("pid")
            assert finding.cycle > 0

    def test_use_after_free_names_the_free_site(self, corpus_reports):
        finding = corpus_reports["heap-use-after-free"].heap[0]
        assert finding.kind == "use-after-free"
        assert "freed @cycle" in finding.detail


# ---------------------------------------------------------------------------
# determinism: replay-stable reports, pay-for-use cycles
# ---------------------------------------------------------------------------


def _store_loop_cycles() -> int:
    """A small shared-segment workload; returns its cycle total."""
    kernel = boot().kernel

    def body(kern, proc):
        runtime = runtime_for(kern, proc)
        base = runtime.create_segment("/shared/pay.seg", 4096)
        mem = Mem(kern, proc)
        yield
        for index in range(8):
            mem.store_u32(base + 4 * index, index)
            yield
        runtime.delete_segment("/shared/pay.seg")

    kernel.create_native_process("pay", body)
    kernel.schedule()
    return kernel.clock.cycles


class TestDeterminism:
    def test_armed_reports_byte_identical(self):
        case = case_named("counter-unsync")
        assert case.run().render() == case.run().render()

    def test_arming_never_charges_the_clock(self):
        disarmed = _store_loop_cycles()
        sanitizer = request_sanitize()
        try:
            armed = _store_loop_cycles()
        finally:
            cancel_sanitize()
        assert armed == disarmed
        assert sanitizer.stats.accesses > 0


# ---------------------------------------------------------------------------
# shadow consistency: incremental view == recomputed view
# ---------------------------------------------------------------------------


class TestShadowConsistency:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4),
                  st.integers(min_value=0, max_value=2)),
        min_size=1, max_size=12))
    def test_segment_lifecycle_property(self, ops):
        """Any interleaving of create/delete/store/mprotect/load over
        a pool of public segments keeps the incrementally maintained
        tracked-page index equal to the from-scratch recomputation —
        checked after every single operation."""
        sanitizer = request_sanitize()
        try:
            kernel = boot().kernel

            def driver(kern, proc):
                runtime = runtime_for(kern, proc)
                mem = Mem(kern, proc)
                live = {}
                yield
                for op, index in ops:
                    path = f"/shared/hyp{index}.seg"
                    if op == 0 and path not in live:
                        live[path] = runtime.create_segment(path, 4096)
                    elif op == 1 and path in live:
                        runtime.delete_segment(path)
                        del live[path]
                    elif op == 2 and path in live:
                        mem.store_u32(live[path], op)
                    elif op == 3 and path in live:
                        kern.syscalls.mprotect(proc, live[path],
                                               4096, PROT_READ)
                        kern.syscalls.mprotect(proc, live[path],
                                               4096, PROT_RW)
                    elif op == 4 and path in live:
                        mem.load_u32(live[path])
                    assert sanitizer.tracked_index() \
                        == sanitizer.recomputed_index()
                    yield
                for path in list(live):
                    runtime.delete_segment(path)

            kernel.create_native_process("hyp", driver)
            kernel.schedule()
        finally:
            cancel_sanitize()
        assert sanitizer.tracked_index() == sanitizer.recomputed_index()

    def test_fork_and_cow_keep_index_consistent(self):
        """Machine fork duplicates the space COW; the child joins the
        tracked index and no finding fires (fork is an HB edge)."""
        from repro.apps.libsys import build_libsys
        from repro.linker.baseline_ld import link_static
        from repro.toyc import compile_source

        sanitizer = request_sanitize()
        try:
            kernel = boot().kernel
            obj = compile_source("""
                int main() {
                    int status = 0;
                    if (fork() == 0) { return 7; }
                    wait(&status);
                    return status;
                }
            """, "m.o")
            image = link_static([obj], archives=[build_libsys()])
            parent = kernel.create_machine_process("parent", image)
            kernel.schedule()
            assert parent.exit_code == 7
        finally:
            cancel_sanitize()
        assert sanitizer.tracked_index() == sanitizer.recomputed_index()
        assert sanitizer.report.clean

    def test_cluster_coherence_keeps_index_consistent(self):
        """FETCH/INVALIDATE traffic maps, unmaps, and reprotects the
        per-node replicas; the index must survive all of it."""
        case = case_named("cluster-stale-read")
        sanitizer = request_sanitize()
        try:
            case.body()
        finally:
            cancel_sanitize()
        assert sanitizer.tracked_index() == sanitizer.recomputed_index()
        assert sanitizer.report.races      # and the seeded race fired


# ---------------------------------------------------------------------------
# no false positives: every example runs clean armed
# ---------------------------------------------------------------------------


class TestNoFalsePositives:
    @pytest.mark.parametrize(
        "script",
        sorted(path.name for path in EXAMPLES_DIR.glob("*.py")))
    def test_example_is_clean(self, script, capsys):
        sanitizer = request_sanitize()
        try:
            runpy.run_path(str(EXAMPLES_DIR / script),
                           run_name="__main__")
        finally:
            cancel_sanitize()
        capsys.readouterr()
        assert sanitizer.report.clean, \
            f"{script}:\n{sanitizer.report.render()}"


# ---------------------------------------------------------------------------
# the shared CATALOG guard
# ---------------------------------------------------------------------------


class TestCatalogGuard:
    def test_duplicate_registration_raises(self):
        before = dict(CATALOG)
        with pytest.raises(DuplicateCodeError):
            register_codes({"REL001": (Severity.ERROR, "impostor")})
        assert dict(CATALOG) == before

    def test_direct_assignment_is_guarded_too(self):
        with pytest.raises(DuplicateCodeError):
            CATALOG["SAN001"] = (Severity.ERROR, "impostor")

    def test_san_family_registered(self):
        for code in ("SAN001", "SAN002", "SAN003", "SAN004"):
            severity, _title = CATALOG[code]
            assert severity in (Severity.ERROR, Severity.WARNING)


# ---------------------------------------------------------------------------
# the static SAN pass
# ---------------------------------------------------------------------------


class TestStaticSan:
    def test_seeded_corpus_covers_every_san_code(self):
        codes = set()
        for entry in broken_objects():
            if entry.code.startswith("SAN"):
                hits = entry.analyze().by_code(entry.code)
                assert len(hits) == 1, entry.title
                codes.add(entry.code)
        assert codes == {"SAN001", "SAN002", "SAN003", "SAN004"}

    def test_clean_compiled_code_has_no_san_findings(self, kernel,
                                                     shell):
        from repro.toyc import compile_source

        obj = compile_source("""
            int counter;
            int main() {
                counter = counter + 1;
                return counter;
            }
        """, "clean.o")
        report = analyze_object(obj, only=["sanitize"])
        assert not [f for f in report.findings
                    if f.code.startswith("SAN")]


# ---------------------------------------------------------------------------
# the reprosan CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_list_names_every_case(self):
        out = io.StringIO()
        assert reprosan_main(["list"], stdout=out) == 0
        text = out.getvalue()
        for case in san_cases():
            assert case.name in text

    def test_run_renders_report_and_verdict(self):
        out = io.StringIO()
        assert reprosan_main(["run", "counter-unsync"],
                             stdout=out) == 0
        text = out.getvalue()
        assert "race write-write /shared/san.seg" in text
        assert "fired" in text

    def test_run_unknown_case_is_a_usage_error(self):
        with pytest.raises(UsageError):
            reprosan_main(["run", "no-such-case"])

    def test_bad_mode_is_a_usage_error(self):
        with pytest.raises(UsageError):
            reprosan_main(["frobnicate"])

    def test_sweep_rejects_missing_directory(self):
        with pytest.raises(UsageError):
            reprosan_main(["sweep", "/no/such/dir"])

    def test_replay_seeks_to_the_first_racing_pair(self):
        """--replay records the case, then re-executes with a seek to
        the earlier cycle of the first racing pair; the event suffix
        must be bit-identical."""
        out = io.StringIO()
        assert reprosan_main(["run", "counter-unsync", "--replay"],
                             stdout=out) == 0
        text = out.getvalue()
        assert "first racing pair" in text
        assert "bit-identical" in text
