"""Shared file system: paper constants, address mapping, boot scan."""

import pytest

from repro.errors import AddressMapError, FileLimitError, FilesystemError
from repro.fs.vfs import O_CREAT, O_WRONLY, Vfs
from repro.fs.filesystem import Filesystem
from repro.sfs.addrmap import BTreeAddressMap, LinearAddressMap
from repro.sfs.sharedfs import (
    MAX_FILE_SIZE,
    MAX_INODES,
    SEGMENT_SPAN,
    SFS_BASE,
    SharedFilesystem,
)
from repro.vm.layout import SFS_REGION
from repro.vm.pages import PhysicalMemory


@pytest.fixture
def pm():
    return PhysicalMemory()


@pytest.fixture
def sfs(pm):
    return SharedFilesystem(pm)


@pytest.fixture
def vfs(pm, sfs):
    root = Filesystem(pm)
    v = Vfs(root)
    v.mount("/shared", sfs)
    return v


class TestPaperConstants:
    def test_exactly_1024_inodes(self):
        assert MAX_INODES == 1024

    def test_one_megabyte_files(self):
        assert MAX_FILE_SIZE == 1 << 20

    def test_region_partitioning(self):
        """1024 slots x 1 MiB exactly tile the 1 GiB region."""
        assert MAX_INODES * SEGMENT_SPAN == SFS_REGION.size
        assert SFS_BASE == SFS_REGION.start

    def test_address_of_inode(self, sfs):
        assert sfs.address_of_inode(0) == 0x3000_0000
        assert sfs.address_of_inode(1) == 0x3010_0000
        assert sfs.address_of_inode(1023) == 0x6FF0_0000

    def test_address_of_inode_range(self, sfs):
        with pytest.raises(ValueError):
            sfs.address_of_inode(1024)


class TestLimits:
    def test_file_size_limit(self, vfs):
        vfs.write_whole("/shared/f", b"x")
        handle = vfs.open("/shared/f", O_WRONLY)
        handle.pwrite(MAX_FILE_SIZE - 1, b"z")  # exactly at the limit
        with pytest.raises(FileLimitError):
            handle.pwrite(MAX_FILE_SIZE, b"z")

    def test_inode_exhaustion(self, pm):
        sfs = SharedFilesystem(pm)
        # Root consumed one inode; files can use the other 1023.
        for index in range(MAX_INODES - 1):
            sfs.create_file(sfs.root, f"f{index}", uid=0)
        with pytest.raises(FileLimitError):
            sfs.create_file(sfs.root, "straw", uid=0)

    def test_inode_reuse_after_unlink(self, sfs):
        inode = sfs.create_file(sfs.root, "f", uid=0)
        number = inode.number
        sfs.unlink(sfs.root, "f")
        again = sfs.create_file(sfs.root, "g", uid=0)
        assert again.number == number  # slot (and address) reused

    def test_hard_links_prohibited(self, sfs):
        inode = sfs.create_file(sfs.root, "f", uid=0)
        with pytest.raises(FilesystemError):
            sfs.link(sfs.root, "g", inode)

    def test_symlinks_allowed(self, vfs):
        """Symlinks are fine — only hard links break the 1:1 mapping."""
        vfs.write_whole("/shared/target", b"x")
        vfs.symlink("/shared/target", "/shared/alias")
        assert vfs.read_whole("/shared/alias") == b"x"


class TestAddressTranslation:
    def test_forward_and_back(self, sfs):
        inode = sfs.create_file(sfs.root, "seg", uid=0)
        base = sfs.address_of_inode(inode.number)
        hit = sfs.inode_of_address(base + 1234)
        assert hit is not None
        found, offset = hit
        assert found is inode
        assert offset == 1234

    def test_unknown_address(self, sfs):
        assert sfs.inode_of_address(SFS_BASE + 5 * SEGMENT_SPAN) is None

    def test_directories_have_no_address(self, sfs):
        child = sfs.mkdir(sfs.root, "d", uid=0)
        assert sfs.inode_of_address(
            sfs.address_of_inode(child.number)
        ) is None

    def test_path_of_address(self, vfs, sfs):
        vfs.makedirs("/shared/lib")
        vfs.write_whole("/shared/lib/seg", b"data")
        ino = vfs.stat("/shared/lib/seg").st_ino
        base = sfs.address_of_inode(ino)
        hit = sfs.path_of_address(base + 10)
        assert hit == ("/lib/seg", 10)

    def test_unlink_unregisters(self, vfs, sfs):
        vfs.write_whole("/shared/seg", b"x")
        base = sfs.address_of_inode(vfs.stat("/shared/seg").st_ino)
        vfs.unlink("/shared/seg")
        assert sfs.inode_of_address(base) is None

    def test_segments_listing(self, vfs, sfs):
        vfs.makedirs("/shared/a")
        vfs.write_whole("/shared/a/s1", b"1")
        vfs.write_whole("/shared/s2", b"2")
        paths = {path for path, _ in sfs.segments()}
        assert paths == {"/a/s1", "/s2"}


class TestBootScan:
    def test_rebuild_matches_incremental(self, vfs, sfs):
        vfs.makedirs("/shared/d")
        for index in range(10):
            vfs.write_whole(f"/shared/d/f{index}", b"x")
        vfs.unlink("/shared/d/f3")
        before = sfs.addrmap.entries()
        count = sfs.rebuild_address_map()
        assert count == 9
        assert sfs.addrmap.entries() == before

    def test_rebuild_into_btree_map(self, pm):
        """The boot scan works for either map implementation."""
        sfs = SharedFilesystem(pm, addrmap=BTreeAddressMap())
        inode = sfs.create_file(sfs.root, "f", uid=0)
        sfs.rebuild_address_map()
        base = sfs.address_of_inode(inode.number)
        assert sfs.addrmap.lookup_address(base) == (inode.number, 0)


class TestAddressMaps:
    @pytest.mark.parametrize("factory",
                             [LinearAddressMap, BTreeAddressMap])
    def test_map_contract(self, factory):
        amap = factory()
        amap.register(0x3000_0000, SEGMENT_SPAN, 0)
        amap.register(0x3020_0000, SEGMENT_SPAN, 2)
        assert amap.lookup_address(0x3000_0000) == (0, 0)
        assert amap.lookup_address(0x3000_0000 + 100) == (0, 100)
        assert amap.lookup_address(0x3020_0000 + SEGMENT_SPAN - 1) == \
            (2, SEGMENT_SPAN - 1)
        assert amap.lookup_address(0x3010_0000) is None
        assert amap.lookup_inode(2) == 0x3020_0000
        assert amap.lookup_inode(9) is None
        amap.unregister(0)
        assert amap.lookup_address(0x3000_0000) is None
        assert amap.entries() == [(0x3020_0000, SEGMENT_SPAN, 2)]

    @pytest.mark.parametrize("factory",
                             [LinearAddressMap, BTreeAddressMap])
    def test_rebuild(self, factory):
        amap = factory()
        amap.register(0x3000_0000, SEGMENT_SPAN, 0)
        amap.rebuild([(0x3050_0000, SEGMENT_SPAN, 5)])
        assert amap.lookup_address(0x3000_0000) is None
        assert amap.lookup_address(0x3050_0000) == (5, 0)

    @pytest.mark.parametrize("factory",
                             [LinearAddressMap, BTreeAddressMap])
    def test_duplicate_inode_rejected(self, factory):
        """Regression: re-registering an inode used to silently replace
        the tree entry while the old ino->base row went stale, so a
        later unregister could delete a live segment."""
        amap = factory()
        amap.register(0x3000_0000, SEGMENT_SPAN, 7)
        with pytest.raises(AddressMapError):
            amap.register(0x3040_0000, SEGMENT_SPAN, 7)
        # The original registration must be untouched.
        assert amap.lookup_inode(7) == 0x3000_0000
        assert amap.lookup_address(0x3040_0000) is None
        amap.unregister(7)
        assert amap.lookup_address(0x3000_0000) is None

    @pytest.mark.parametrize("factory",
                             [LinearAddressMap, BTreeAddressMap])
    @pytest.mark.parametrize("base", [
        0x3000_0000,                       # exact duplicate range
        0x3000_0000 - SEGMENT_SPAN // 2,   # overlaps from below
        0x3000_0000 + SEGMENT_SPAN // 2,   # overlaps from above
    ])
    def test_overlapping_range_rejected(self, factory, base):
        amap = factory()
        amap.register(0x3000_0000, SEGMENT_SPAN, 1)
        with pytest.raises(AddressMapError):
            amap.register(base, SEGMENT_SPAN, 2)
        assert amap.lookup_inode(2) is None
        assert amap.entries() == [(0x3000_0000, SEGMENT_SPAN, 1)]

    @pytest.mark.parametrize("factory",
                             [LinearAddressMap, BTreeAddressMap])
    def test_adjacent_ranges_allowed(self, factory):
        amap = factory()
        amap.register(0x3000_0000, SEGMENT_SPAN, 1)
        amap.register(0x3000_0000 + SEGMENT_SPAN, SEGMENT_SPAN, 2)
        amap.register(0x3000_0000 - SEGMENT_SPAN, SEGMENT_SPAN, 3)
        assert len(amap.entries()) == 3

    @pytest.mark.parametrize("factory",
                             [LinearAddressMap, BTreeAddressMap])
    def test_rejection_does_not_count_comparisons(self, factory):
        amap = factory()
        for index in range(10):
            amap.register(SFS_BASE + index * SEGMENT_SPAN, SEGMENT_SPAN,
                          index)
        before = amap.comparisons
        with pytest.raises(AddressMapError):
            amap.register(SFS_BASE, SEGMENT_SPAN, 99)
        assert amap.comparisons == before

    @pytest.mark.parametrize("factory",
                             [LinearAddressMap, BTreeAddressMap])
    def test_rebuild_resets_comparison_counter(self, factory):
        """Regression: rebuild() reset the counter on the B-tree map but
        not the linear one, skewing cross-implementation A2 numbers."""
        amap = factory()
        amap.register(0x3000_0000, SEGMENT_SPAN, 0)
        amap.lookup_address(0x3000_0000)
        amap.lookup_inode(0)
        amap.rebuild([(0x3050_0000, SEGMENT_SPAN, 5)])
        assert amap.comparisons == 0

    def test_linear_cost_grows_linearly(self):
        amap = LinearAddressMap()
        for index in range(100):
            amap.register(SFS_BASE + index * SEGMENT_SPAN, SEGMENT_SPAN,
                          index)
        amap.lookup_address(SFS_BASE + 99 * SEGMENT_SPAN)
        linear_cost = amap.comparisons
        assert linear_cost >= 100  # scanned the whole table

    def test_btree_cost_is_logarithmic(self):
        amap = BTreeAddressMap()
        for index in range(1000):
            amap.register(SFS_BASE + index * SEGMENT_SPAN, SEGMENT_SPAN,
                          index)
        before = amap.comparisons
        amap.lookup_address(SFS_BASE + 999 * SEGMENT_SPAN)
        assert amap.comparisons - before < 40
