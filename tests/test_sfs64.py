"""The 64-bit shared file system (§3's stated future work)."""

import pytest

from repro import boot
from repro.bench.workloads import make_shell
from repro.errors import FileLimitError, FilesystemError
from repro.runtime.libshared import runtime_for
from repro.runtime.views import Mem
from repro.sfs.sfs64 import (
    DEFAULT_RESERVATION,
    SFS64_REGION,
    SharedFilesystem64,
)
from repro.sfs.sharedfs import MAX_FILE_SIZE, MAX_INODES
from repro.vm.pages import PhysicalMemory


@pytest.fixture
def system64():
    return boot(wide_addresses=True)


@pytest.fixture
def kernel64(system64):
    return system64.kernel


@pytest.fixture
def shell64(kernel64):
    return make_shell(kernel64)


class TestAllocation:
    def test_region_is_vast_and_public(self):
        assert SFS64_REGION.public
        assert SFS64_REGION.start == 1 << 32
        assert SFS64_REGION.size > (1 << 46)

    def test_addresses_unique_and_in_region(self, kernel64):
        sfs = kernel64.sfs
        bases = set()
        for index in range(50):
            inode = sfs.create_file(sfs.root, f"f{index}", uid=0)
            base = sfs.address_of_inode(inode.number)
            assert SFS64_REGION.contains(base)
            assert base not in bases
            bases.add(base)

    def test_no_1024_inode_limit(self, kernel64):
        """The 32-bit prototype's inode ceiling is gone."""
        sfs = kernel64.sfs
        for index in range(MAX_INODES + 50):
            sfs.create_file(sfs.root, f"f{index}", uid=0)
        assert sfs.inode_count() > MAX_INODES

    def test_files_larger_than_one_megabyte(self, kernel64, shell64):
        runtime = runtime_for(kernel64, shell64)
        base = runtime.create_segment("/shared/big", 4 << 20)
        mem = Mem(kernel64, shell64)
        mem.store_u32(base + (3 << 20), 99)   # far past the old 1 MiB cap
        assert mem.load_u32(base + (3 << 20)) == 99
        assert kernel64.vfs.stat("/shared/big").st_size == 4 << 20

    def test_reservation_enforced(self, kernel64, shell64):
        runtime = runtime_for(kernel64, shell64)
        runtime.create_segment("/shared/seg", 4096, reservation=8192)
        handle = kernel64.vfs.open("/shared/seg", 0x2)  # O_RDWR
        handle.pwrite(8191, b"x")   # still inside the reservation
        with pytest.raises(FileLimitError):
            handle.pwrite(8192, b"x")

    def test_default_reservation(self, kernel64):
        sfs = kernel64.sfs
        inode = sfs.create_file(sfs.root, "f", uid=0)
        assert inode.segment_span == DEFAULT_RESERVATION

    def test_address_range_reuse_after_destroy(self, kernel64):
        sfs = kernel64.sfs
        first = sfs.create_file(sfs.root, "a", uid=0)
        base = sfs.address_of_inode(first.number)
        sfs.unlink(sfs.root, "a")
        second = sfs.create_file(sfs.root, "b", uid=0)
        assert sfs.address_of_inode(second.number) == base

    def test_larger_reservation_skips_small_hole(self, kernel64):
        sfs = kernel64.sfs
        small = sfs.create_file_with_reservation(sfs.root, "small", 0,
                                                 1 << 20)
        small_base = sfs.address_of_inode(small.number)
        sfs.create_file(sfs.root, "keeper", uid=0)
        sfs.unlink(sfs.root, "small")
        big = sfs.create_file_with_reservation(sfs.root, "big", 0,
                                               32 << 20)
        assert sfs.address_of_inode(big.number) != small_base

    def test_hard_links_still_prohibited(self, kernel64):
        sfs = kernel64.sfs
        inode = sfs.create_file(sfs.root, "f", uid=0)
        with pytest.raises(FilesystemError):
            sfs.link(sfs.root, "g", inode)


class TestTranslation:
    def test_address_roundtrip(self, kernel64, shell64):
        runtime = runtime_for(kernel64, shell64)
        kernel64.vfs.makedirs("/shared/data")
        base = runtime.create_segment("/shared/data/seg", 4096)
        sys = kernel64.syscalls
        path, offset = sys.addr_to_path(shell64, base + 100)
        assert path == "/shared/data/seg"
        assert offset == 100
        assert sys.path_to_addr(shell64, path) == base

    def test_32bit_addresses_not_public(self, kernel64, shell64):
        from repro.errors import SyscallError

        with pytest.raises(SyscallError):
            kernel64.syscalls.addr_to_path(shell64, 0x3000_0000)

    def test_boot_rebuild_from_inode_fields(self, kernel64, shell64):
        """The B-tree is rebuilt from per-inode address fields — the
        design that 'allows it to survive across re-boots'."""
        runtime = runtime_for(kernel64, shell64)
        bases = [runtime.create_segment(f"/shared/s{i}", 4096)
                 for i in range(10)]
        kernel64.sfs.addrmap.rebuild([])     # "crash"
        count = kernel64.sfs.rebuild_address_map()
        assert count == 10
        for base in bases:
            assert kernel64.sfs.inode_of_address(base) is not None


class TestPointerChasing64:
    def test_fault_maps_64bit_segment(self, kernel64, shell64):
        """The SIGSEGV handler chases pointers into the wide region."""
        runtime = runtime_for(kernel64, shell64)
        base = runtime.create_segment("/shared/wide", 64 * 1024)
        mem = Mem(kernel64, shell64)
        assert not shell64.address_space.is_mapped(base)
        mem.store_u32(base + 4096, 0xABCD)
        assert shell64.address_space.is_mapped(base)
        assert mem.load_u32(base + 4096) == 0xABCD

    def test_cross_segment_pointers_above_4g(self, kernel64):
        a = make_shell(kernel64, "writer")
        b = make_shell(kernel64, "reader")
        runtime_a = runtime_for(kernel64, a)
        runtime_for(kernel64, b)
        base1 = runtime_a.create_segment("/shared/one", 4096)
        base2 = runtime_a.create_segment("/shared/two", 4096)
        mem_a = Mem(kernel64, a)
        # 64-bit pointers need two words; store low/high halves.
        mem_a.store_u32(base2, 31337)
        mem_a.store_u32(base1, base2 & 0xFFFFFFFF)
        mem_a.store_u32(base1 + 4, base2 >> 32)
        mem_b = Mem(kernel64, b)
        pointer = mem_b.load_u32(base1) | (mem_b.load_u32(base1 + 4) << 32)
        assert mem_b.load_u32(pointer) == 31337

    def test_mixed_sizes_coexist(self, kernel64, shell64):
        runtime = runtime_for(kernel64, shell64)
        small = runtime.create_segment("/shared/small", 4096)
        large = runtime.create_segment("/shared/large", 2 << 20,
                                       reservation=4 << 20)
        mem = Mem(kernel64, shell64)
        mem.store_u32(small, 1)
        mem.store_u32(large + (2 << 20) - 4, 2)
        assert mem.load_u32(small) == 1
        assert mem.load_u32(large + (2 << 20) - 4) == 2


class TestStandalone:
    def test_works_without_kernel(self):
        pm = PhysicalMemory()
        sfs = SharedFilesystem64(pm)
        inode = sfs.create_file(sfs.root, "f", uid=0)
        base = sfs.address_of_inode(inode.number)
        hit = sfs.inode_of_address(base + 8)
        assert hit == (inode, 8)
        assert sfs.path_of_address(base) == ("/f", 0)

    def test_exhaustion_detected(self):
        pm = PhysicalMemory()
        from repro.vm.layout import AddressRegion

        tiny = AddressRegion("tiny", 1 << 32, (1 << 32) + (1 << 20),
                             public=True)
        sfs = SharedFilesystem64(pm, region=tiny,
                                 default_reservation=1 << 20)
        sfs.create_file(sfs.root, "a", uid=0)
        with pytest.raises(FileLimitError):
            sfs.create_file(sfs.root, "b", uid=0)

    def test_old_limits_still_hold_in_32bit_mode(self):
        """Regression guard: the 32-bit prototype keeps its limits."""
        system = boot(wide_addresses=False)
        shell = make_shell(system.kernel)
        runtime = runtime_for(system.kernel, shell)
        from repro.errors import SyscallError

        with pytest.raises(SyscallError):
            runtime.create_segment("/shared/too_big", MAX_FILE_SIZE + 1)
