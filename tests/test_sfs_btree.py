"""B-tree unit and property tests (the 64-bit future-work structure)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sfs.btree import BTree


class TestBasics:
    def test_empty(self):
        tree = BTree()
        assert tree.size == 0
        assert tree.get(5) is None
        assert not tree.contains(5)
        assert tree.floor_entry(100) is None

    def test_insert_get(self):
        tree = BTree(t=2)
        for key in [50, 20, 80, 10, 60]:
            tree.insert(key, key * 10)
        assert tree.size == 5
        for key in [50, 20, 80, 10, 60]:
            assert tree.get(key) == key * 10
        assert tree.get(55) is None

    def test_replace(self):
        tree = BTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.size == 1
        assert tree.get(1) == "b"

    def test_items_sorted(self):
        tree = BTree(t=2)
        keys = [9, 3, 7, 1, 5, 8, 2, 6, 4, 0]
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_floor_entry(self):
        tree = BTree(t=2)
        for key in [10, 20, 30]:
            tree.insert(key, key)
        assert tree.floor_entry(25) == (20, 20)
        assert tree.floor_entry(30) == (30, 30)
        assert tree.floor_entry(9) is None
        assert tree.floor_entry(1000) == (30, 30)

    def test_delete_leaf_and_missing(self):
        tree = BTree(t=2)
        for key in range(10):
            tree.insert(key, key)
        assert tree.delete(3)
        assert not tree.delete(3)
        assert tree.size == 9
        assert tree.get(3) is None
        tree.check_invariants()

    def test_delete_everything(self):
        tree = BTree(t=2)
        keys = list(range(100))
        for key in keys:
            tree.insert(key, key)
        for key in keys:
            assert tree.delete(key)
            tree.check_invariants()
        assert tree.size == 0

    def test_minimum_degree_validation(self):
        with pytest.raises(ValueError):
            BTree(t=1)

    def test_splits_occur(self):
        tree = BTree(t=2)
        for key in range(50):
            tree.insert(key, key)
        assert not tree.root.leaf  # must have split at least once
        tree.check_invariants()


class TestProperties:
    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    max_size=300),
           st.sampled_from([2, 3, 8]))
    def test_matches_dict_after_inserts(self, keys, t):
        tree = BTree(t=t)
        reference = {}
        for key in keys:
            tree.insert(key, key * 3)
            reference[key] = key * 3
        tree.check_invariants()
        assert tree.size == len(reference)
        assert list(tree.items()) == sorted(reference.items())

    @settings(max_examples=60)
    @given(st.lists(
        st.tuples(st.booleans(),
                  st.integers(min_value=0, max_value=200)),
        max_size=300,
    ), st.sampled_from([2, 4]))
    def test_matches_dict_with_deletes(self, operations, t):
        tree = BTree(t=t)
        reference = {}
        for is_delete, key in operations:
            if is_delete:
                assert tree.delete(key) == (key in reference)
                reference.pop(key, None)
            else:
                tree.insert(key, key)
                reference[key] = key
        tree.check_invariants()
        assert list(tree.items()) == sorted(reference.items())

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=120, unique=True),
           st.integers(min_value=0, max_value=1100))
    def test_floor_matches_reference(self, keys, probe):
        tree = BTree(t=3)
        for key in keys:
            tree.insert(key, key)
        candidates = [k for k in keys if k <= probe]
        expected = max(candidates) if candidates else None
        hit = tree.floor_entry(probe)
        if expected is None:
            assert hit is None
        else:
            assert hit == (expected, expected)
