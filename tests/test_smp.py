"""repro.smp — deterministic multi-core simulation, proven correct.

Four layers of contract:

* **degenerate case**: ``boot(ncores=1)`` never constructs a
  coordinator and stays bit-identical to the seed scheduler — the
  module-fanout pin (2,603,166 cycles, shared with A7/A8/A9/A10/E10/
  E11) may not move;
* **differential oracle**: a coordinator *forced* onto a 1-core kernel
  must produce the same events, cycles, per-category charges, and
  outcome as the classic scheduler — the chunked quantum is an exact
  reformulation, not an approximation;
* **property-based oracles**: any ``(ncores, workload shape)`` runs
  byte-identically twice (traces, cycle totals, results), and the
  per-core TLB shadow state always matches an index recomputed from
  the page tables across map/mprotect/COW/fork/flush traffic;
* **ecosystem**: the race corpus has SMP-only races (clean on one
  core, firing on two), a 4-core Presto records/replays/seeks with
  zero divergence, and the sanitizer stays cycle-invisible at K>1.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import boot
from repro.apps.presto import PrestoApp
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.errors import KernelError
from repro.kernel.smp import SMP_SUBQUANTUM, SmpCoordinator
from repro.kernel.sync import WaitQueue
from repro.rr import record_call, replay_call, seek_call
from repro.runtime.shmalloc import (
    ArenaHeap,
    HeapExhaustedError,
    InvalidFreeError,
    SegmentHeap,
    SegmentHeapError,
)
from repro.runtime.views import Mem
from repro.sanitize.ambient import cancel_sanitize, request_sanitize
from repro.sanitize.corpus import (
    _SMP_NITEMS,
    _SMP_SHARED,
    _SMP_MERGE_WORKER,
    _RACY_TOTAL_WORKER,
    _racy_presto,
    case_named,
)
from repro.trace import tracing
from repro.vm.address_space import (
    AddressSpace,
    PROT_READ,
    PROT_RW,
    PROT_WRITE,
)
from repro.vm.layout import PAGE_SHIFT, PAGE_SIZE
from repro.vm.pages import PhysicalMemory

#: The module-fanout cycle pin shared with A7/A8/A9/A10/E10/E11 — the
#: exact total the seed scheduler produces. ``boot(ncores=1)`` must hit
#: it, and so must a coordinator forced onto a 1-core kernel.
SEED_FANOUT_CYCLES = 2_603_166
WIDTH = 12
USED = 12


def _pack(event) -> tuple:
    return (event.kind, event.cycle, event.pid, event.addr, event.name,
            event.value, event.dur, event.boot)


def _run_fanout(ncores=None, force_smp: bool = False) -> dict:
    """The E2 module fanout under tracing; full observable signature."""
    system = boot(ncores=ncores)
    kernel = system.kernel
    if force_smp:
        assert kernel.smp is None
        kernel.smp = SmpCoordinator(kernel, 1)
    with tracing(kernel) as tracer:
        shell = make_shell(kernel)
        graph = build_module_fanout(kernel, shell, width=WIDTH,
                                    used=USED, module_dir="/shared/fan")
        proc = kernel.create_machine_process("p", graph.executable)
        code = kernel.run_until_exit(proc)
        events = [_pack(event) for event in tracer.events()]
    return {
        "exit": code,
        "cycles": kernel.clock.cycles,
        "elapsed": kernel.clock.elapsed,
        "by_category": dict(kernel.clock.by_category),
        "events": events,
    }


def _run_presto(ncores: int, nworkers: int, nitems: int,
                compute_iters: int = 0) -> dict:
    """One Presto instance; everything observable, for byte-compares."""
    system = boot(ncores=ncores)
    kernel = system.kernel
    with tracing(kernel) as tracer:
        shell = make_shell(kernel)
        app = PrestoApp(kernel, shell, nitems=nitems,
                        compute_iters=compute_iters)
        result = app.run_instance(nworkers=nworkers)
        events = [_pack(event) for event in tracer.events()]
    assert result.total == app.expected_total()
    return {
        "total": result.total,
        "results": tuple(result.results),
        "per_worker": tuple(result.per_worker_items),
        "cycles": kernel.clock.cycles,
        "elapsed": kernel.clock.elapsed,
        "core_cycles": dict(kernel.clock.core_cycles),
        "by_category": dict(kernel.clock.by_category),
        "events": events,
        "smp": kernel.smp.stats() if kernel.smp is not None else None,
    }


# ---------------------------------------------------------------------------
# the degenerate case: one core is the seed scheduler
# ---------------------------------------------------------------------------


class TestDegenerateCase:
    def test_single_core_boot_has_no_coordinator(self):
        kernel = boot(ncores=1).kernel
        assert kernel.ncores == 1
        assert kernel.smp is None
        assert kernel.clock.ncores == 1

    def test_multi_core_boot_has_coordinator(self):
        kernel = boot(ncores=4).kernel
        assert kernel.ncores == 4
        assert kernel.smp is not None
        assert kernel.smp.ncores == 4

    def test_env_var_selects_core_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORES", "3")
        kernel = boot().kernel
        assert kernel.ncores == 3
        assert kernel.smp is not None

    def test_explicit_ncores_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORES", "3")
        assert boot(ncores=1).kernel.smp is None

    def test_fanout_pin_at_one_core(self):
        run = _run_fanout(ncores=1)
        assert run["exit"] == fanout_expected_exit(USED)
        assert run["cycles"] == SEED_FANOUT_CYCLES
        # Serial execution: the parallel makespan is the total work.
        assert run["elapsed"] == run["cycles"]

    def test_invalid_core_count_rejected(self):
        kernel = boot().kernel
        with pytest.raises(KernelError):
            SmpCoordinator(kernel, 0)


# ---------------------------------------------------------------------------
# the differential oracle: forced K=1 coordinator == classic scheduler
# ---------------------------------------------------------------------------


class TestDifferentialOracle:
    def test_forced_smp_fanout_is_bit_identical(self):
        classic = _run_fanout()
        forced = _run_fanout(force_smp=True)
        assert forced["exit"] == classic["exit"]
        assert forced["cycles"] == classic["cycles"] \
            == SEED_FANOUT_CYCLES
        assert forced["by_category"] == classic["by_category"]
        assert forced["events"] == classic["events"]

    def test_forced_smp_presto_is_bit_identical(self):
        classic = _run_presto(ncores=1, nworkers=3, nitems=12)

        system = boot()
        kernel = system.kernel
        kernel.smp = SmpCoordinator(kernel, 1)
        with tracing(kernel) as tracer:
            shell = make_shell(kernel)
            app = PrestoApp(kernel, shell, nitems=12)
            result = app.run_instance(nworkers=3)
            events = [_pack(event) for event in tracer.events()]
        assert result.total == app.expected_total()
        assert result.per_worker_items == list(classic["per_worker"])
        assert kernel.clock.cycles == classic["cycles"]
        assert dict(kernel.clock.by_category) == classic["by_category"]
        assert events == classic["events"]


# ---------------------------------------------------------------------------
# multi-core execution
# ---------------------------------------------------------------------------


class TestMultiCore:
    def test_fanout_still_exact_on_four_cores(self):
        run = _run_fanout(ncores=4)
        assert run["exit"] == fanout_expected_exit(USED)
        # Work is conserved; the makespan can only shrink.
        assert run["elapsed"] <= run["cycles"]

    def test_presto_interleaves_workers_across_cores(self):
        # On one core the whole (tiny) queue drains inside the first
        # worker's quantum; on two cores the sub-quantum rounds share it.
        solo = _run_presto(ncores=1, nworkers=2, nitems=_SMP_NITEMS)
        duo = _run_presto(ncores=2, nworkers=2, nitems=_SMP_NITEMS)
        assert solo["per_worker"] == (_SMP_NITEMS, 0)
        assert all(count > 0 for count in duo["per_worker"])
        assert duo["smp"]["rounds"] >= 1
        assert duo["elapsed"] < duo["cycles"]

    def test_compute_presto_speedup_at_four_cores(self):
        base = _run_presto(ncores=1, nworkers=8, nitems=64,
                           compute_iters=600)
        quad = _run_presto(ncores=4, nworkers=8, nitems=64,
                           compute_iters=600)
        assert base["elapsed"] == base["cycles"]
        speedup = base["elapsed"] / quad["elapsed"]
        assert speedup >= 2.0, f"4-core speedup only {speedup:.2f}x"
        # Deterministic balanced claim: every worker gets 1/8 of the
        # queue at both core counts.
        assert base["per_worker"] == (8,) * 8
        assert quad["per_worker"] == (8,) * 8

    def test_elapsed_is_sum_of_round_maxima(self):
        run = _run_presto(ncores=2, nworkers=2, nitems=8)
        # All per-core work is accounted somewhere, and the serial
        # prefix (boot, build, parent phases) charges elapsed 1:1.
        core_total = sum(run["core_cycles"].values())
        serial = run["cycles"] - core_total
        assert serial > 0
        assert run["elapsed"] >= serial
        assert run["elapsed"] <= run["cycles"]

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ncores=st.integers(min_value=1, max_value=8),
           nworkers=st.integers(min_value=1, max_value=4),
           nitems=st.integers(min_value=4, max_value=20))
    def test_same_shape_runs_byte_identical(self, ncores, nworkers,
                                            nitems):
        first = _run_presto(ncores, nworkers, nitems)
        second = _run_presto(ncores, nworkers, nitems)
        assert first == second


# ---------------------------------------------------------------------------
# the TLB shadow-state oracle
# ---------------------------------------------------------------------------


class _ShootdownLog:
    """Stands in for the coordinator: records every invalidation."""

    def __init__(self) -> None:
        self.tlb = []       # (home core, dropped, reason)
        self.decode = []    # sorted core sets at clear time

    def tlb_shootdown(self, space, dropped, reason) -> None:
        self.tlb.append((space.core, dropped, reason))

    def decode_shootdown(self, frame) -> None:
        self.decode.append(tuple(sorted(frame.decode_cores)))


_VM_BASE = 0x40000
_VM_PAGES = 6

_vm_ops = st.lists(
    st.one_of(
        st.tuples(st.just("store"),
                  st.integers(min_value=0, max_value=_VM_PAGES - 1),
                  st.integers(min_value=0, max_value=2 ** 31 - 1)),
        st.tuples(st.just("load"),
                  st.integers(min_value=0, max_value=_VM_PAGES - 1)),
        st.tuples(st.just("protect_ro"),
                  st.integers(min_value=0, max_value=_VM_PAGES - 1)),
        st.tuples(st.just("protect_rw"),
                  st.integers(min_value=0, max_value=_VM_PAGES - 1)),
        st.tuples(st.just("flush")),
        st.tuples(st.just("fork")),
    ),
    max_size=40,
)


def _check_tlb_shadow(space) -> None:
    """Every cached translation must match a recomputed page-table
    index: right frame, right bytes, COW write-protection applied."""
    for vpn, (data, prot, frame) in space.tlb.items():
        pte = space._pages.get(vpn)
        assert pte is not None, f"stale TLB entry for vpn {vpn}"
        assert pte.frame is frame
        assert data is frame.data
        expected = pte.prot & ~PROT_WRITE if pte.cow else pte.prot
        assert prot == expected
    assert space.tlb_fills - space.tlb_invalidations == len(space.tlb)


class TestTlbShadowOracle:
    @settings(max_examples=30, deadline=None)
    @given(ops=_vm_ops, turns=st.lists(
        st.integers(min_value=0, max_value=3), max_size=40))
    def test_shadow_matches_recomputed_index(self, ops, turns):
        from repro.vm.faults import PageFaultError

        pm = PhysicalMemory()
        log = _ShootdownLog()
        root = AddressSpace(pm, "smp-prop", tlb_enabled=True)
        root.smp = log
        root.core = 0
        root.map(_VM_BASE, _VM_PAGES * PAGE_SIZE, prot=PROT_RW)
        spaces = [root]
        turns = iter(turns + [0] * len(ops))
        for op in ops:
            space = spaces[next(turns) % len(spaces)]
            addr = _VM_BASE + (op[1] if len(op) > 1 else 0) * PAGE_SIZE
            try:
                if op[0] == "store":
                    space.store_word(addr, op[2])
                elif op[0] == "load":
                    space.load_word(addr)
                elif op[0] == "protect_ro":
                    space.mprotect(addr, PAGE_SIZE, PROT_READ)
                elif op[0] == "protect_rw":
                    space.mprotect(addr, PAGE_SIZE, PROT_RW)
                elif op[0] == "flush":
                    space.tlb_flush("test")
                elif op[0] == "fork" and len(spaces) < 3:
                    child = space.fork(name=f"child{len(spaces)}")
                    child.smp = log
                    child.core = len(spaces)
                    spaces.append(child)
            except PageFaultError:
                pass          # write to a read-only page: expected
            for checked in spaces:
                _check_tlb_shadow(checked)
        # Conservation, per home core: everything ever dropped was
        # reported to the coordinator with the owning core attached.
        for checked in spaces:
            reported = sum(dropped for core, dropped, _ in log.tlb
                           if core == checked.core)
            assert reported == checked.tlb_invalidations

    def test_decode_cores_tracked_only_under_smp(self):
        kernel = boot(ncores=2).kernel
        shell = make_shell(kernel)
        app = PrestoApp(kernel, shell, nitems=8)
        # Decode caches live on loader frames that die with the worker,
        # so the shadow check samples after every execution chunk while
        # the workers are alive.
        cores_seen = set()
        original = kernel._run_machine_chunk

        def checked_chunk(proc, start, target):
            result = original(proc, start, target)
            for pte in proc.address_space._pages.values():
                frame = pte.frame
                if frame is None:
                    continue
                assert frame.decode_cores <= set(range(kernel.ncores))
                if not frame.decode:
                    # clears always take the core set with them
                    assert not frame.decode_cores
                cores_seen.update(frame.decode_cores)
            return result

        kernel._run_machine_chunk = checked_chunk
        app.run_instance(nworkers=2)
        assert cores_seen == {0, 1}, cores_seen

    def test_decode_shootdown_counts_remote_cores(self):
        kernel = boot(ncores=4).kernel
        smp = kernel.smp
        frame = SimpleNamespace(decode_cores={0, 1, 3})
        kernel.clock.current_core = 1
        try:
            smp.decode_shootdown(frame)
        finally:
            kernel.clock.current_core = None
        assert smp.decode_shootdowns == {0: 1, 1: 0, 2: 0, 3: 1}

    def test_tlb_shootdown_ignores_own_core_and_serial_work(self):
        kernel = boot(ncores=2).kernel
        smp = kernel.smp
        space = SimpleNamespace(core=0)
        smp.tlb_shootdown(space, 3, "unmap")          # serial: no core
        kernel.clock.current_core = 0
        try:
            smp.tlb_shootdown(space, 3, "unmap")      # own core
        finally:
            kernel.clock.current_core = None
        assert smp.tlb_shootdowns == {0: 0, 1: 0}
        kernel.clock.current_core = 1
        try:
            smp.tlb_shootdown(space, 3, "unmap")      # cross-core
        finally:
            kernel.clock.current_core = None
        assert smp.tlb_shootdowns == {0: 3, 1: 0}


# ---------------------------------------------------------------------------
# contended-path plumbing: WaitQueue and ArenaHeap
# ---------------------------------------------------------------------------


def _waiter(pid: int, core: int = 0):
    return SimpleNamespace(pid=pid, core=core)


class TestWaitQueue:
    def test_fifo_handoff_in_stamp_order(self):
        queue = WaitQueue()
        procs = [_waiter(pid, core=pid % 3) for pid in range(5)]
        stamps = [queue.push(proc) for proc in procs]
        assert stamps == [0, 1, 2, 3, 4]
        assert [queue.pop() for _ in range(5)] == procs

    def test_stats_never_influence_order(self):
        queue = WaitQueue()
        late_core = _waiter(1, core=7)
        early_core = _waiter(2, core=0)
        queue.push(late_core)
        queue.push(early_core)
        assert queue.enqueued_by_core == {7: 1, 0: 1}
        assert queue.pop() is late_core

    def test_remove_drops_only_the_target(self):
        queue = WaitQueue()
        procs = [_waiter(pid) for pid in range(3)]
        for proc in procs:
            queue.push(proc)
        assert queue.remove(procs[1])
        assert not queue.remove(procs[1])
        assert queue.procs() == [procs[0], procs[2]]
        assert len(queue) == 2 and bool(queue)

    def test_stamps_survive_drain(self):
        queue = WaitQueue()
        queue.push(_waiter(1))
        queue.pop()
        assert queue.push(_waiter(2)) == 1   # monotonic, never reused


ARENA_BASE = 0x20000000
ARENA_SIZE = 16 * 1024


@pytest.fixture
def arena_mem(kernel, shell):
    shell.address_space.map(ARENA_BASE, ARENA_SIZE, prot=PROT_RW)
    return Mem(kernel, shell)


class TestArenaHeap:
    def test_one_core_degenerates_to_segment_heap(self, arena_mem):
        arena = ArenaHeap(arena_mem, ARENA_BASE, ARENA_SIZE, ncores=1)
        arena.initialize()
        assert len(arena.arenas) == 1
        # The heap state lives in the segment: a plain SegmentHeap over
        # the same region sees the same free list and hands out the
        # same addresses.
        flat = SegmentHeap(arena_mem, ARENA_BASE, ARENA_SIZE)
        assert flat.is_initialized()
        payload = arena.alloc(64, core=0)
        arena.free(payload)
        assert flat.alloc(64) == payload
        flat.free(payload)
        assert arena.free_bytes() == flat.free_bytes()

    def test_home_arena_allocation_is_core_local(self, arena_mem):
        arena = ArenaHeap(arena_mem, ARENA_BASE, ARENA_SIZE, ncores=4)
        arena.initialize()
        for core in range(4):
            payload = arena.alloc(32, core=core)
            owner = arena.arena_of(payload)
            assert owner is arena.arenas[core]
        assert arena.fallbacks == {0: 0, 1: 0, 2: 0, 3: 0}

    def test_fallback_scan_is_deterministic(self, arena_mem):
        arena = ArenaHeap(arena_mem, ARENA_BASE, ARENA_SIZE, ncores=2)
        arena.initialize()
        blocks = []
        # Exhaust core 1's home arena...
        while True:
            try:
                blocks.append(arena.arenas[1].alloc(512))
            except HeapExhaustedError:
                break
        # ...the next core-1 allocation overflows into arena 0.
        payload = arena.alloc(512, core=1)
        assert arena.arena_of(payload) is arena.arenas[0]
        assert arena.fallbacks[1] == 1
        arena.free(payload)
        for block in blocks:
            arena.free(block)
        arena.check()

    def test_exhaustion_raises_when_every_arena_is_full(self, arena_mem):
        arena = ArenaHeap(arena_mem, ARENA_BASE, ARENA_SIZE, ncores=2)
        arena.initialize()
        with pytest.raises(HeapExhaustedError):
            while True:
                arena.alloc(1024, core=0)

    def test_free_outside_region_rejected(self, arena_mem):
        arena = ArenaHeap(arena_mem, ARENA_BASE, ARENA_SIZE, ncores=2)
        arena.initialize()
        with pytest.raises(InvalidFreeError):
            arena.free(ARENA_BASE - 8)

    def test_too_many_arenas_rejected(self, arena_mem):
        with pytest.raises(SegmentHeapError):
            ArenaHeap(arena_mem, ARENA_BASE, 64, ncores=16)

    def test_addresses_are_run_to_run_identical(self, arena_mem):
        first = ArenaHeap(arena_mem, ARENA_BASE, ARENA_SIZE, ncores=4)
        first.initialize()
        plan = [(0, 16), (3, 64), (1, 128), (3, 24), (2, 8)]
        addresses = [first.alloc(size, core=core)
                     for core, size in plan]
        for address in addresses:
            first.free(address)
        second = ArenaHeap(arena_mem, ARENA_BASE, ARENA_SIZE, ncores=4)
        second.initialize()
        assert [second.alloc(size, core=core)
                for core, size in plan] == addresses


# ---------------------------------------------------------------------------
# the SMP race corpus: bugs only a real multi-core schedule can reach
# ---------------------------------------------------------------------------


class TestSmpRaceCorpus:
    @pytest.mark.parametrize("name", ["presto-smp-total",
                                      "presto-smp-merge"])
    def test_fires_on_two_cores_with_both_sites(self, name):
        report = case_named(name).run()
        assert report.races, "SMP race case did not fire"
        race = report.races[0]
        # Both access sites attributed: distinct workers, ordered
        # deterministic cycles, and the racing word named.
        assert race.first.label != race.second.label
        assert race.first.cycle < race.second.cycle
        assert race.segment.endswith("shared_data")

    def test_clean_on_one_core(self):
        for worker, shared in ((_RACY_TOTAL_WORKER, None),
                               (_SMP_MERGE_WORKER, _SMP_SHARED)):
            sanitizer = request_sanitize(report_limit=256)
            try:
                kwargs = {"shared_source": shared} if shared else {}
                _racy_presto(worker, nitems=_SMP_NITEMS, nworkers=2,
                             ncores=1, **kwargs)
            finally:
                cancel_sanitize()
            assert sanitizer.report.clean, sanitizer.report.render()

    def test_reports_replay_identically(self):
        case = case_named("presto-smp-total")
        assert case.run().render() == case.run().render()

    def test_sanitizer_is_cycle_invisible_at_two_cores(self):
        disarmed = _run_presto(ncores=2, nworkers=2, nitems=8)
        sanitizer = request_sanitize()
        try:
            armed = _run_presto(ncores=2, nworkers=2, nitems=8)
        finally:
            cancel_sanitize()
        assert armed["cycles"] == disarmed["cycles"]
        assert armed["elapsed"] == disarmed["elapsed"]
        assert armed["by_category"] == disarmed["by_category"]


# ---------------------------------------------------------------------------
# record/replay a genuinely parallel run
# ---------------------------------------------------------------------------


def _presto_quad_workload():
    system = boot(ncores=4)
    kernel = system.kernel
    shell = make_shell(kernel)
    app = PrestoApp(kernel, shell, nitems=16, compute_iters=40)
    result = app.run_instance(nworkers=4)
    assert result.total == app.expected_total()
    kernel.shutdown()


class TestSmpRecordReplay:
    def test_four_core_presto_replays_with_zero_divergence(self):
        recording = record_call(_presto_quad_workload, interval=50_000)
        assert recording.outcome == "clean"
        assert recording.checkpoints, "expected periodic checkpoints"
        report = replay_call(recording, _presto_quad_workload)
        assert report.ok, report.render()
        assert report.events_compared == len(recording.events)

    def test_seek_into_the_parallel_phase(self):
        recording = record_call(_presto_quad_workload, interval=50_000)
        last = recording.events[-1][1]
        target = last // 2
        result = seek_call(recording, target, _presto_quad_workload)
        assert result.digest_ok
        assert result.suffix_identical
