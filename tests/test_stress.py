"""Stress and interleaving torture tests."""

import pytest

from repro import boot
from repro.apps.presto import PrestoApp
from repro.bench.workloads import make_shell
from repro.errors import RelocationError
from repro.hw.asm import assemble
from repro.linker.baseline_ld import link_static
from repro.linker.module import ModuleImage


class TestSchedulingTorture:
    @pytest.mark.parametrize("quantum", [3, 17, 101])
    def test_semaphore_mutual_exclusion_under_tiny_quanta(self, quantum):
        """A shared public counter incremented under a semaphore by four
        processes stays exact no matter how hostile the preemption."""
        from repro.linker.classes import SharingClass
        from repro.linker.lds import LinkRequest, store_object
        from repro.linker.segments import read_segment_meta
        from repro.toyc import compile_source
        from repro.apps.libsys import build_libsys
        from repro.runtime.views import Mem
        from repro.runtime.libshared import runtime_for

        system = boot()
        kernel = system.kernel
        kernel.quantum = quantum
        shell = make_shell(kernel)
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/shared.o",
                     compile_source("int total = 0;", "shared.o"))
        store_object(kernel, shell, "/main.o", compile_source("""
            extern int total;
            extern int sem_get(int key, int value);
            extern int sem_p(int key);
            extern int sem_v(int key);
            int main() {
                int i;
                sem_get(3, 1);
                for (i = 0; i < 50; i = i + 1) {
                    sem_p(3);
                    total = total + 1;
                    sem_v(3);
                }
                return 0;
            }
        """, "main.o"))
        exe = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("shared.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin", search_dirs=["/shared/lib"],
            archives=[build_libsys()],
        ).executable
        workers = [kernel.create_machine_process(f"w{i}", exe)
                   for i in range(4)]
        kernel.schedule()
        for worker in workers:
            assert worker.death_reason is None

        meta, base, _len = read_segment_meta(kernel, shell,
                                             "/shared/lib/shared")
        runtime_for(kernel, shell)
        total = Mem(kernel, shell).load_i32(
            meta.symbols["total"].value
        )
        assert total == 4 * 50

    def test_presto_torture(self, kernel, shell):
        kernel.quantum = 13
        app = PrestoApp(kernel, shell, nitems=64)
        result = app.run_instance(nworkers=6)
        assert result.total == app.expected_total()
        assert sum(result.per_worker_items) == 64

    def test_many_processes(self, kernel):
        image = link_static([assemble("""
            .text
            .globl main
        main:
            li t0, 30
            move t1, zero
        loop:
            add t1, t1, t0
            addi t0, t0, -1
            bgtz t0, loop
            move v0, t1
            jr ra
        """, "m.o")])
        procs = [kernel.create_machine_process(f"p{i}", image)
                 for i in range(25)]
        kernel.schedule()
        assert all(p.exit_code == 465 for p in procs)
        assert kernel.physmem.allocated == 0  # all reclaimed


class TestScaleTorture:
    def test_wide_fanout(self):
        """A 24-module reachability graph, half used."""
        from repro.bench.workloads import (
            build_module_fanout,
            fanout_expected_exit,
        )

        system = boot(lazy=True)
        kernel = system.kernel
        shell = make_shell(kernel)
        graph = build_module_fanout(kernel, shell, width=24, used=12,
                                    module_dir="/shared/wide")
        proc = kernel.create_machine_process("p", graph.executable)
        assert kernel.run_until_exit(proc) == fanout_expected_exit(12)
        assert proc.runtime.ldl.stats.modules_linked == 12

    def test_deep_chain(self):
        from repro.bench.workloads import (
            build_module_chain,
            chain_expected_exit,
        )

        system = boot(lazy=True)
        kernel = system.kernel
        shell = make_shell(kernel)
        graph = build_module_chain(kernel, shell, depth=20,
                                   module_dir="/shared/deep")
        proc = kernel.create_machine_process("p", graph.executable)
        assert kernel.run_until_exit(proc) == chain_expected_exit(20)
        assert proc.runtime.ldl.stats.modules_created == 20

    def test_many_segments_many_processes(self, kernel):
        from repro.runtime.libshared import runtime_for
        from repro.runtime.views import Mem

        writers = [make_shell(kernel, f"w{i}") for i in range(8)]
        for index, writer in enumerate(writers):
            runtime = runtime_for(kernel, writer)
            base = runtime.create_segment(f"/shared/s{index}", 4096)
            Mem(kernel, writer).store_u32(base, index * 11)
        reader = make_shell(kernel, "reader")
        runtime_for(kernel, reader)
        mem = Mem(kernel, reader)
        for index in range(8):
            base = kernel.syscalls.path_to_addr(reader,
                                                f"/shared/s{index}")
            assert mem.load_u32(base) == index * 11


class TestSixtyFourBitGuard:
    def test_code_module_rejected_above_4g(self):
        obj = assemble(".text\n.globl f\nf: jr ra", "m.o")
        image = ModuleImage(obj)
        with pytest.raises(RelocationError):
            image.layout_contiguous(0x1_0000_0000)

    def test_data_only_module_fine_above_4g(self):
        obj = assemble(".data\n.globl d\nd: .word 5", "m.o")
        image = ModuleImage(obj)
        image.layout_contiguous(0x1_0000_0000)
        # No text, so data starts right at the base.
        assert image.symbol_address("d") == 0x1_0000_0000
