"""The toolchain command-line front ends (the lds wrapper surface)."""

import pytest

from repro.tools.cli import (
    UsageError,
    ar_main,
    asm_main,
    lds_main,
    nm_main,
    objdump_main,
    toycc_main,
)


@pytest.fixture
def workspace(kernel, shell, dirs):
    """Sources on the simulated FS, ready for the toolchain."""
    kernel.vfs.write_whole("/src/main.c", b"""
extern int shared_fn();
int main() { return shared_fn(); }
""")
    kernel.vfs.write_whole("/shared/lib/shared1.c", b"""
int shared_fn() { return 6; }
""")
    kernel.vfs.write_whole("/src/util.s", b"""
        .text
        .globl util_fn
util_fn:
        li v0, 3
        jr ra
""")
    return dirs


class TestCompilers:
    def test_toycc(self, kernel, shell, workspace):
        out = toycc_main(kernel, shell, ["-o", "/src/main.o",
                                         "/src/main.c"])
        assert out == "/src/main.o"
        assert kernel.vfs.exists("/src/main.o")

    def test_toycc_default_output(self, kernel, shell, workspace):
        out = toycc_main(kernel, shell, ["/src/main.c"])
        assert out == "/src/main.o"

    def test_as(self, kernel, shell, workspace):
        out = asm_main(kernel, shell, ["-o", "/src/util.o",
                                       "/src/util.s"])
        assert kernel.vfs.exists(out)

    def test_bad_option(self, kernel, shell, workspace):
        with pytest.raises(UsageError):
            toycc_main(kernel, shell, ["--frob", "/src/main.c"])

    def test_exactly_one_input(self, kernel, shell, workspace):
        with pytest.raises(UsageError):
            toycc_main(kernel, shell, ["/src/main.c", "/src/other.c"])


class TestLds:
    def _build(self, kernel, shell):
        toycc_main(kernel, shell, ["/src/main.c"])
        toycc_main(kernel, shell, ["-o", "/shared/lib/shared1.o",
                                   "/shared/lib/shared1.c"])

    def test_full_link_and_run(self, kernel, shell, workspace):
        self._build(kernel, shell)
        result = lds_main(kernel, shell, [
            "-o", "/bin/prog",
            "-L", "/shared/lib",
            "/src/main.o",
            "--dynamic-public", "shared1.o",
        ])
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 6

    def test_class_short_flags(self, kernel, shell, workspace):
        self._build(kernel, shell)
        result = lds_main(kernel, shell, [
            "-o", "/bin/prog", "-L", "/shared/lib",
            "/src/main.o", "-sp", "shared1.o",
        ])
        # static public: created at link time, refs resolved.
        assert kernel.vfs.exists("/shared/lib/shared1")
        assert result.retained_relocations == 0

    def test_entry_option(self, kernel, shell, workspace):
        self._build(kernel, shell)
        result = lds_main(kernel, shell, [
            "-o", "/bin/prog", "-L", "/shared/lib", "--no-crt0",
            "/src/main.o", "-dp", "shared1.o", "-e", "main",
        ])
        assert result.executable.entry_symbol == "main"

    def test_strict_flag(self, kernel, shell, workspace):
        self._build(kernel, shell)
        from repro.errors import ModuleNotFoundLinkError

        with pytest.raises(ModuleNotFoundLinkError):
            lds_main(kernel, shell, [
                "-o", "/bin/prog", "/src/main.o",
                "--strict", "-dp", "ghost.o",
            ])

    def test_archives(self, kernel, shell, workspace):
        asm_main(kernel, shell, ["/src/util.s"])
        ar_main(kernel, shell, ["/src/libutil.a", "/src/util.o"])
        kernel.vfs.write_whole("/src/uses_util.c", b"""
extern int util_fn();
int main() { return util_fn(); }
""")
        toycc_main(kernel, shell, ["/src/uses_util.c"])
        result = lds_main(kernel, shell, [
            "-o", "/bin/prog", "/src/uses_util.o",
            "-l", "/src/libutil.a",
        ])
        proc = kernel.create_machine_process("p", result.executable)
        assert kernel.run_until_exit(proc) == 3

    def test_no_inputs(self, kernel, shell, workspace):
        with pytest.raises(UsageError):
            lds_main(kernel, shell, ["-o", "/bin/prog"])

    def test_missing_value(self, kernel, shell, workspace):
        with pytest.raises(UsageError):
            lds_main(kernel, shell, ["/src/x.o", "-o"])

    def test_unknown_option(self, kernel, shell, workspace):
        with pytest.raises(UsageError):
            lds_main(kernel, shell, ["--wat", "/src/x.o"])


class TestInspectors:
    def test_nm(self, kernel, shell, workspace):
        toycc_main(kernel, shell, ["/src/main.c"])
        text = nm_main(kernel, shell, ["/src/main.o"])
        assert "T main" in text
        assert "U shared_fn" in text

    def test_objdump_disassembly(self, kernel, shell, workspace):
        asm_main(kernel, shell, ["/src/util.s"])
        text = objdump_main(kernel, shell, ["-d", "/src/util.o"])
        assert "jr ra" in text

    def test_nm_rejects_non_object(self, kernel, shell, workspace):
        from repro.errors import LinkError

        with pytest.raises(LinkError):
            nm_main(kernel, shell, ["/src/main.c"])

    def test_nm_usage(self, kernel, shell, workspace):
        with pytest.raises(UsageError):
            nm_main(kernel, shell, [])


class TestSegls:
    def test_lists_segments_with_addresses(self, kernel, shell, dirs):
        from repro.runtime.libshared import runtime_for
        from repro.tools.cli import segls_main

        runtime = runtime_for(kernel, shell)
        base = runtime.create_segment("/shared/lib/data1", 4096)
        runtime.create_segment("/shared/lib/data2", 8192)
        listing = segls_main(kernel, shell)
        assert "/shared/lib/data1" in listing
        assert "/shared/lib/data2" in listing
        assert f"0x{base:012x}" in listing

    def test_long_form_tags_modules(self, kernel, shell, workspace):
        from repro.tools.cli import segls_main

        toycc_main(kernel, shell, ["-o", "/shared/lib/shared1.o",
                                   "/shared/lib/shared1.c"])
        toycc_main(kernel, shell, ["/src/main.c"])
        lds_main(kernel, shell, [
            "-o", "/bin/prog", "-L", "/shared/lib",
            "/src/main.o", "-sp", "shared1.o",
        ])
        from repro.runtime.libshared import runtime_for

        runtime_for(kernel, shell).create_segment("/shared/plain", 4096)
        listing = segls_main(kernel, shell, ["-l"])
        module_lines = [l for l in listing.splitlines()
                        if "/shared1" in l and ".o" not in l]
        assert any("[module]" in l for l in module_lines)
        assert any("[data]" in l for l in listing.splitlines()
                   if "/plain" in l)
