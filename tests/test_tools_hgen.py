"""hgen: cross-language interface generation (§6 Language Heterogeneity)."""

import pytest

from repro.linker.classes import SharingClass
from repro.linker.lds import LinkRequest, store_object
from repro.runtime.libshared import runtime_for
from repro.tools.hgen import (
    generate_python_accessors,
    generate_toyc_header,
    load_python_accessors,
)
from repro.toyc import compile_source

MODULE_SOURCE = """
int counter = 5;
int table[6];
char tag[8];
int bump() { counter = counter + 1; return counter; }
"""


@pytest.fixture
def module():
    return compile_source(MODULE_SOURCE, "state.o")


class TestHeaderGeneration:
    def test_declarations(self, module):
        header = generate_toyc_header(module)
        assert "extern int counter;" in header
        assert "extern int table[6];" in header
        assert "extern char tag[8];" in header
        assert "extern int bump();" in header

    def test_header_compiles_and_links(self, system, shell, module):
        """The generated header really does let a C-side consumer name
        the module's objects."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/state.o", module)
        header = generate_toyc_header(module)
        consumer = header + """
            int main() {
                table[2] = 7;
                bump();
                return counter * 10 + table[2];
            }
        """
        store_object(kernel, shell, "/main.o",
                     compile_source(consumer, "main.o"))
        exe = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("state.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin", search_dirs=["/shared/lib"],
        ).executable
        proc = kernel.create_machine_process("p", exe)
        assert kernel.run_until_exit(proc) == 67  # counter 6, table[2] 7

    def test_internal_symbols_filtered(self, module):
        header = generate_toyc_header(module)
        assert "__" not in header


class TestPythonAccessors:
    def test_source_shape(self, module):
        source = generate_python_accessors(module, "State")
        assert "class State:" in source
        assert "def get_counter(self):" in source
        assert "def set_table(self, index, value):" in source
        assert "def get_tag(self):" in source
        # Functions don't get accessors — they need a CPU to run.
        assert "def get_bump" not in source

    def test_live_cross_language_access(self, system, shell, module):
        """The killer demo: a machine (C-side) process and a Python-side
        accessor read and write the same shared abstraction."""
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/state.o", module)
        store_object(kernel, shell, "/main.o", compile_source("""
            extern int bump();
            extern int table[6];
            int main() { table[0] = 41; return bump(); }
        """, "main.o"))
        exe = system.lds.link(
            shell,
            [LinkRequest("/main.o"),
             LinkRequest("state.o", SharingClass.DYNAMIC_PUBLIC)],
            output="/bin", search_dirs=["/shared/lib"],
        ).executable
        proc = kernel.create_machine_process("p", exe)
        assert kernel.run_until_exit(proc) == 6  # bump: 5 -> 6

        runtime = runtime_for(kernel, shell)
        runtime.start_native(search_dirs=["/shared/lib"])
        state = load_python_accessors(module, runtime, class_name="State")
        assert state.get_counter() == 6       # sees the C side's bump
        assert state.get_table(0) == 41
        state.set_counter(100)
        state.set_tag("py")
        assert state.get_tag() == "py"

        # And the C side sees Python's writes on its next run.
        proc2 = kernel.create_machine_process("p2", exe)
        assert kernel.run_until_exit(proc2) == 101

    def test_unknown_symbol_raises(self, system, shell, module):
        runtime = runtime_for(system.kernel, shell)
        runtime.start_native()
        state = load_python_accessors(module, runtime)
        with pytest.raises(KeyError):
            state.get_counter()  # module never linked in this scope

    def test_array_bounds_asserted(self, system, shell, module):
        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/state.o", module)
        runtime = runtime_for(kernel, shell)
        runtime.start_native(search_dirs=["/shared/lib"])
        state = load_python_accessors(module, runtime)
        state.set_table(5, 1)
        with pytest.raises(AssertionError):
            state.get_table(6)
