"""Toy C compiler tests: lexing, parsing, and execution semantics.

Execution tests compile a program, link it with the baseline linker,
and run it on the simulated machine — the compiler is correct iff the
machine computes the right answers.
"""

import pytest

from repro.errors import CompileError
from repro.hw.asm import assemble
from repro.kernel.kernel import Kernel
from repro.linker.baseline_ld import link_static
from repro.toyc import compile_source, compile_to_assembly
from repro.toyc.lexer import tokenize
from repro.toyc.parser import parse


def run_main(source: str, extra_objects=()):
    """Compile + link + run; returns (exit code, process)."""
    kernel = Kernel()
    objects = [compile_source(source, "prog.o")] + list(extra_objects)
    image = link_static(objects)
    proc = kernel.create_machine_process("p", image)
    code = kernel.run_until_exit(proc)
    assert proc.death_reason is None, proc.death_reason
    return code, proc


class TestLexer:
    def test_tokens(self):
        kinds = [(t.kind, t.text) for t in tokenize("int x = 42;")]
        assert kinds[:4] == [("keyword", "int"), ("ident", "x"),
                             ("op", "="), ("number", "42")]

    def test_comments_skipped(self):
        tokens = tokenize("a // line\n /* block\nmore */ b")
        assert [t.text for t in tokens if t.kind == "ident"] == ["a", "b"]

    def test_string_escapes(self):
        token = tokenize(r'"a\nb\t\"q\""')[0]
        assert token.text == 'a\nb\t"q"'

    def test_char_literal(self):
        assert tokenize("'x'")[0].text == "x"
        assert tokenize(r"'\n'")[0].text == "\n"

    def test_hex_numbers(self):
        assert tokenize("0xFF")[0].text == "0xFF"

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("a<=b==c<<d&&e")]
        assert "<=" in texts and "==" in texts and "<<" in texts \
            and "&&" in texts

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"abc')

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")


class TestParser:
    def test_globals_and_functions(self):
        unit = parse("""
            int x = 5;
            int arr[10];
            char msg[] = "hi";
            extern int shared;
            int f(int a) { return a; }
        """)
        assert [g.name for g in unit.globals] == \
            ["x", "arr", "msg", "shared"]
        assert unit.globals[2].ctype.array_length == 3  # "hi" + NUL
        assert unit.globals[3].extern
        assert unit.functions[0].name == "f"

    def test_multi_declarator(self):
        unit = parse("int a, b, c;")
        assert [g.name for g in unit.globals] == ["a", "b", "c"]

    def test_brace_initializer(self):
        unit = parse("int t[] = {1, 2, 3};")
        assert unit.globals[0].initializer == [1, 2, 3]
        assert unit.globals[0].ctype.array_length == 3

    def test_prototype(self):
        unit = parse("int f(int a);")
        assert unit.functions[0].extern

    def test_extern_with_initializer_rejected(self):
        with pytest.raises(CompileError):
            parse("extern int x = 5;")

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("int x = 5")

    def test_precedence_shape(self):
        from repro.toyc import ast as A

        unit = parse("int f() { return 1 + 2 * 3; }")
        ret = unit.functions[0].body.statements[0]
        assert isinstance(ret.value, A.Binary)
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_assignment_target_validation(self):
        with pytest.raises(CompileError):
            parse("int f() { 1 = 2; }")


class TestExecution:
    def test_return_constant(self):
        assert run_main("int main() { return 42; }")[0] == 42

    def test_arithmetic(self):
        assert run_main(
            "int main() { return (2 + 3) * 4 - 10 / 2 + 9 % 4; }"
        )[0] == 16

    def test_negative_and_unary(self):
        assert run_main(
            "int main() { int x; x = -5; return -x + !0 + !7 + (~0 & 1);}"
        )[0] == 7  # 5 + 1 + 0 + 1

    def test_comparisons(self):
        assert run_main("""
            int main() {
                return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3)
                     + (4 == 4) + (4 != 4);
            }
        """)[0] == 4

    def test_logical_short_circuit(self):
        code, _ = run_main("""
            int hits = 0;
            int bump() { hits = hits + 1; return 1; }
            int main() {
                int a;
                a = 0 && bump();
                a = 1 || bump();
                return hits;
            }
        """)
        assert code == 0  # neither side effect ran

    def test_while_loop(self):
        assert run_main("""
            int main() {
                int i = 0; int sum = 0;
                while (i < 10) { sum = sum + i; i = i + 1; }
                return sum;
            }
        """)[0] == 45

    def test_for_loop_with_break_continue(self):
        assert run_main("""
            int main() {
                int i; int sum = 0;
                for (i = 0; i < 100; i = i + 1) {
                    if (i == 5) { continue; }
                    if (i == 10) { break; }
                    sum = sum + i;
                }
                return sum;
            }
        """)[0] == 40  # 0..9 minus 5

    def test_if_else_chain(self):
        assert run_main("""
            int classify(int x) {
                if (x < 0) { return 0; }
                else if (x == 0) { return 1; }
                else { return 2; }
            }
            int main() {
                return classify(-4) * 100 + classify(0) * 10
                     + classify(9);
            }
        """)[0] == 12

    def test_recursion(self):
        assert run_main("""
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(10); }
        """)[0] == 55

    def test_globals_and_arrays(self):
        assert run_main("""
            int table[10];
            int total = 100;
            int main() {
                int i;
                for (i = 0; i < 10; i = i + 1) { table[i] = i * i; }
                return total + table[9];
            }
        """)[0] == 181

    def test_local_arrays(self):
        assert run_main("""
            int main() {
                int scratch[4];
                scratch[0] = 3;
                scratch[3] = 7;
                return scratch[0] + scratch[3];
            }
        """)[0] == 10

    def test_pointers_and_address_of(self):
        assert run_main("""
            int value = 5;
            int main() {
                int *p;
                p = &value;
                *p = *p + 2;
                return value;
            }
        """)[0] == 7

    def test_pointer_arithmetic_scales(self):
        assert run_main("""
            int table[4] = {10, 20, 30, 40};
            int main() {
                int *p;
                p = table;
                p = p + 2;
                return *p + p[1];
            }
        """)[0] == 70

    def test_pointer_difference(self):
        assert run_main("""
            int table[8];
            int main() {
                int *a; int *b;
                a = table;
                b = &table[6];
                return b - a;
            }
        """)[0] == 6

    def test_char_and_strings(self):
        assert run_main("""
            char msg[] = "AB";
            int main() {
                char *p;
                p = msg;
                return p[0] + p[1] + (p[2] == 0);
            }
        """)[0] == 65 + 66 + 1

    def test_sizeof(self):
        assert run_main(
            "int main() { return sizeof(int) + sizeof(char) "
            "+ sizeof(int*); }"
        )[0] == 9

    def test_function_args_and_returns(self):
        assert run_main("""
            int combine(int a, int b, int c, int d) {
                return a * 1000 + b * 100 + c * 10 + d;
            }
            int main() { return combine(1, 2, 3, 4); }
        """)[0] == 1234

    def test_call_in_expression_operands(self):
        assert run_main("""
            int two() { return 2; }
            int three() { return 3; }
            int main() { return two() * 10 + three(); }
        """)[0] == 23

    def test_shift_by_constant(self):
        assert run_main(
            "int main() { return (1 << 5) + (256 >> 4); }"
        )[0] == 48

    def test_shift_by_variable(self):
        assert run_main("""
            int main() {
                int n = 3;
                int m = 2;
                return (1 << n) + (32 >> m);
            }
        """)[0] == 16

    def test_extern_resolved_by_other_object(self):
        helper = assemble("""
            .data
            .globl magic
        magic: .word 77
        """, "helper.o")
        assert run_main("""
            extern int magic;
            int main() { return magic; }
        """, extra_objects=[helper])[0] == 77

    def test_falling_off_end_returns_zero(self):
        assert run_main("int main() { int x = 5; }")[0] == 0

    def test_global_string_pointer(self):
        assert run_main("""
            char *greeting = "Hello";
            int main() { return greeting[1]; }
        """)[0] == ord("e")


class TestCompileErrors:
    def test_too_many_params(self):
        with pytest.raises(CompileError):
            compile_source("int f(int a, int b, int c, int d, int e) "
                           "{ return 0; }")

    def test_shift_amount_constant_out_of_range(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return 1 << 40; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            compile_source("int main() { break; }")

    def test_redefined_local(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int a; int a; return 0; }")

    def test_deref_of_int_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int a; return *a; }")

    def test_assembly_is_gp_free(self):
        """§3: modules are compiled without the global-pointer register."""
        asm = compile_to_assembly("""
            int counter = 0;
            int main() { counter = counter + 1; return counter; }
        """)
        assert " gp" not in asm
