"""Toy C struct support: the C-side face of pointer-rich shared data."""

import pytest

from repro.errors import CompileError
from repro.kernel.kernel import Kernel
from repro.linker.baseline_ld import link_static
from repro.toyc import compile_source
from repro.toyc.parser import parse


def run_main(source: str):
    kernel = Kernel()
    image = link_static([compile_source(source, "prog.o")])
    proc = kernel.create_machine_process("p", image)
    code = kernel.run_until_exit(proc)
    assert proc.death_reason is None, proc.death_reason
    return code


class TestLayout:
    def test_offsets_and_size(self):
        unit = parse("""
            struct mixed { char c; int i; char tail[3]; int last; };
        """)
        decl = unit.structs["mixed"]
        assert decl.field("c").offset == 0
        assert decl.field("i").offset == 4      # aligned past the char
        assert decl.field("tail").offset == 8
        assert decl.field("last").offset == 12  # aligned past tail
        assert decl.size == 16

    def test_nested_struct_field(self):
        unit = parse("""
            struct point { int x; int y; };
            struct rect { struct point a; struct point b; };
        """)
        assert unit.structs["rect"].size == 16
        assert unit.structs["rect"].field("b").offset == 8

    def test_sizeof(self):
        assert run_main("""
            struct point { int x; int y; };
            int main() {
                return sizeof(struct point) + sizeof(struct point *);
            }
        """) == 12

    def test_self_reference_via_pointer(self):
        unit = parse("struct node { struct node *next; int v; };")
        assert unit.structs["node"].size == 8

    def test_self_containment_rejected(self):
        with pytest.raises(CompileError):
            parse("struct bad { struct bad inner; };")

    def test_redefinition_rejected(self):
        with pytest.raises(CompileError):
            parse("struct a { int x; };\nstruct a { int y; };")

    def test_unknown_struct_rejected(self):
        with pytest.raises(CompileError):
            parse("struct ghost instance;")

    def test_duplicate_field_rejected(self):
        with pytest.raises(CompileError):
            parse("struct a { int x; int x; };")


class TestAccess:
    def test_global_struct_members(self):
        assert run_main("""
            struct point { int x; int y; };
            struct point origin;
            int main() {
                origin.x = 3;
                origin.y = 4;
                return origin.x * 10 + origin.y;
            }
        """) == 34

    def test_local_struct_members(self):
        assert run_main("""
            struct pair { int a; int b; };
            int main() {
                struct pair p;
                p.a = 6;
                p.b = p.a + 1;
                return p.a * p.b;
            }
        """) == 42

    def test_arrow_through_pointer(self):
        assert run_main("""
            struct cell { int value; };
            struct cell shared_cell;
            int main() {
                struct cell *p;
                p = &shared_cell;
                p->value = 9;
                return shared_cell.value;
            }
        """) == 9

    def test_array_of_structs(self):
        assert run_main("""
            struct item { int weight; int cost; };
            struct item items[3];
            int main() {
                int i;
                int total = 0;
                for (i = 0; i < 3; i = i + 1) {
                    items[i].weight = i + 1;
                    items[i].cost = (i + 1) * 5;
                }
                for (i = 0; i < 3; i = i + 1) {
                    total = total + items[i].weight * items[i].cost;
                }
                return total;
            }
        """) == 1 * 5 + 2 * 10 + 3 * 15

    def test_nested_member_chains(self):
        assert run_main("""
            struct point { int x; int y; };
            struct circle { struct point center; int radius; };
            struct circle c;
            int main() {
                c.center.x = 5;
                c.center.y = 6;
                c.radius = 7;
                return c.center.x + c.center.y + c.radius;
            }
        """) == 18

    def test_array_member_inside_struct(self):
        assert run_main("""
            struct buf { int count; int data[4]; };
            struct buf b;
            int main() {
                b.count = 2;
                b.data[0] = 10;
                b.data[b.count - 1] = 20;
                return b.data[0] + b.data[1] + b.count;
            }
        """) == 32

    def test_char_members(self):
        assert run_main("""
            struct rec { char tag; int v; };
            struct rec r;
            int main() {
                r.tag = 'Q';
                r.v = 1;
                return r.tag + r.v;
            }
        """) == ord("Q") + 1


class TestLinkedStructures:
    def test_linked_list_traversal(self):
        assert run_main("""
            struct node { struct node *next; int value; };
            struct node pool[5];
            int main() {
                int i;
                int total = 0;
                struct node *head;
                for (i = 0; i < 5; i = i + 1) {
                    pool[i].value = i + 1;
                    if (i < 4) { pool[i].next = &pool[i + 1]; }
                    else { pool[i].next = 0; }
                }
                head = &pool[0];
                while (head) {
                    total = total + head->value;
                    head = head->next;
                }
                return total;
            }
        """) == 15

    def test_struct_pointer_parameters(self):
        assert run_main("""
            struct point { int x; int y; };
            int manhattan(struct point *a, struct point *b) {
                int dx = a->x - b->x;
                int dy = a->y - b->y;
                if (dx < 0) { dx = -dx; }
                if (dy < 0) { dy = -dy; }
                return dx + dy;
            }
            int main() {
                struct point p;
                struct point q;
                p.x = 1; p.y = 2;
                q.x = 4; q.y = 6;
                return manhattan(&p, &q);
            }
        """) == 7

    def test_pointer_arithmetic_scales_by_struct_size(self):
        assert run_main("""
            struct wide { int a; int b; int c; };
            struct wide table[4];
            int main() {
                struct wide *p;
                struct wide *q;
                p = table;
                q = p + 3;
                return q - p;
            }
        """) == 3


class TestRestrictions:
    def test_struct_by_value_param_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                struct p { int x; };
                int f(struct p arg) { return 0; }
            """)

    def test_struct_return_by_value_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                struct p { int x; };
                struct p f() { }
            """)

    def test_struct_assignment_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                struct p { int x; };
                struct p a; struct p b;
                int main() { a = b; return 0; }
            """)

    def test_dot_on_non_struct_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int x; return x.y; }")

    def test_arrow_on_non_pointer_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                struct p { int x; };
                struct p v;
                int main() { return v->x; }
            """)

    def test_unknown_field_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                struct p { int x; };
                struct p v;
                int main() { return v.z; }
            """)


class TestSharedStructs:
    def test_struct_in_shared_module(self, system, shell):
        """The xfig story in actual C: a linked structure in a shared
        module, built by one program, walked by another."""
        from repro.linker.classes import SharingClass
        from repro.linker.lds import LinkRequest, store_object

        kernel = system.kernel
        kernel.vfs.makedirs("/shared/lib")
        store_object(kernel, shell, "/shared/lib/list.o", compile_source("""
            struct node { struct node *next; int value; };
            struct node pool[8];
            struct node *head;
            int used = 0;
            int push(int value) {
                pool[used].value = value;
                pool[used].next = head;
                head = &pool[used];
                used = used + 1;
                return used;
            }
        """, "list.o"))
        store_object(kernel, shell, "/writer.o", compile_source("""
            extern int push(int value);
            int main() { push(5); push(6); return 0; }
        """, "writer.o"))
        store_object(kernel, shell, "/reader.o", compile_source("""
            struct node { struct node *next; int value; };
            extern struct node *head;
            int main() {
                int total = 0;
                struct node *cursor = head;
                while (cursor) {
                    total = total + cursor->value;
                    cursor = cursor->next;
                }
                return total;
            }
        """, "reader.o"))

        def link(obj, out):
            return system.lds.link(
                shell,
                [LinkRequest(obj),
                 LinkRequest("list.o", SharingClass.DYNAMIC_PUBLIC)],
                output=out, search_dirs=["/shared/lib"],
            ).executable

        writer = kernel.create_machine_process("w", link("/writer.o",
                                                         "/binw"))
        assert kernel.run_until_exit(writer) == 0
        reader = kernel.create_machine_process("r", link("/reader.o",
                                                         "/binr"))
        assert kernel.run_until_exit(reader) == 11
