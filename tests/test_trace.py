"""repro.trace — ring buffer, masks, spans, determinism, zero overhead.

The tracing subsystem's contract has two halves: it must *observe*
faithfully (every instrumented event, in order, with exact counters even
past ring overflow) and it must *not perturb* (identical cycle totals
with tracing on, off, or absent — the regression tests pin the seed's
totals for the E2 workload).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import boot
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.tools.cli import reprotrace_main
from repro.trace import (
    NULL_TRACER,
    Event,
    EventKind,
    Tracer,
    kinds_mask,
    set_tracer,
    tracing,
)
from repro.trace import tracer as tracer_state
from repro.trace.export import (
    chrome_trace,
    jsonl_lines,
    top_report,
    write_chrome,
    write_jsonl,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

# Seed cycle totals for the E2 workload (benchmarks/test_e2_lazy_linking
# run_fanout(width=12, used=1)), captured before the tracing subsystem
# existed. Tracing must never move these.
SEED_E2_LAZY_TOTAL = 584_767
SEED_E2_EAGER_TOTAL = 1_614_169


class FakeClock:
    """A duck-typed clock the tracer can stamp events from."""

    def __init__(self) -> None:
        self.cycles = 0


def run_fanout(width: int, used: int, lazy: bool):
    """The E2 benchmark workload (duplicated here so the tier-1 suite
    does not depend on the benchmarks directory)."""
    system = boot(lazy=lazy)
    kernel = system.kernel
    shell = make_shell(kernel)
    graph = build_module_fanout(kernel, shell, width=width, used=used,
                                module_dir="/shared/fan")
    start = kernel.clock.snapshot()
    proc = kernel.create_machine_process("p", graph.executable)
    code = kernel.run_until_exit(proc)
    total = kernel.clock.delta(start)
    assert code == fanout_expected_exit(used)
    return total


class TestRingBuffer:
    def test_append_below_capacity(self):
        tracer = Tracer(FakeClock(), capacity=8)
        for i in range(5):
            tracer.emit(EventKind.SYSCALL, name=f"call{i}")
        assert len(tracer) == 5
        assert tracer.dropped == 0
        assert [e.name for e in tracer.events()] == \
            [f"call{i}" for i in range(5)]

    def test_overflow_drops_oldest_keeps_order(self):
        tracer = Tracer(FakeClock(), capacity=4)
        for i in range(10):
            tracer.emit(EventKind.SYSCALL, name=f"call{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert tracer.emitted == 10
        assert [e.name for e in tracer.events()] == \
            ["call6", "call7", "call8", "call9"]

    def test_counters_exact_past_overflow(self):
        tracer = Tracer(FakeClock(), capacity=2)
        for _ in range(7):
            tracer.emit(EventKind.FAULT, name="read", addr=0x1000)
        for _ in range(3):
            tracer.emit(EventKind.SYSCALL, name="open")
        assert tracer.counts_by_kind[EventKind.FAULT] == 7
        assert tracer.counts_by_kind[EventKind.SYSCALL] == 3
        assert tracer.counts_by_name[(EventKind.FAULT, "read")] == 7

    def test_wraparound_overwrites_in_place(self):
        tracer = Tracer(FakeClock(), capacity=3)
        for i in range(3):
            tracer.emit(EventKind.IPC, name=f"m{i}")
        tracer.emit(EventKind.IPC, name="m3")  # overwrites m0
        assert [e.name for e in tracer.events()] == ["m1", "m2", "m3"]
        tracer.emit(EventKind.IPC, name="m4")  # overwrites m1
        assert [e.name for e in tracer.events()] == ["m2", "m3", "m4"]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(FakeClock(), capacity=0)


class TestCursor:
    """The checkpoint-safe cursor: a cursor taken at any moment replays
    exactly the events emitted after it — never a duplicate, never out
    of order — or fails loudly when the ring has overflowed past it."""

    def test_cursor_is_monotonic_emitted(self):
        tracer = Tracer(FakeClock(), capacity=8)
        assert tracer.cursor() == 0
        tracer.emit(EventKind.SYSCALL, name="a")
        tracer.emit(EventKind.SYSCALL, name="b")
        assert tracer.cursor() == 2

    def test_events_since_returns_exact_suffix(self):
        tracer = Tracer(FakeClock(), capacity=8)
        tracer.emit(EventKind.SYSCALL, name="a")
        cursor = tracer.cursor()
        tracer.emit(EventKind.SYSCALL, name="b")
        tracer.emit(EventKind.SYSCALL, name="c")
        assert [e.name for e in tracer.events_since(cursor)] \
            == ["b", "c"]
        # a fresh cursor yields an empty suffix, not a duplicate
        assert tracer.events_since(tracer.cursor()) == []

    def test_events_since_survives_partial_overflow(self):
        tracer = Tracer(FakeClock(), capacity=4)
        for i in range(3):
            tracer.emit(EventKind.SYSCALL, name=f"e{i}")
        cursor = tracer.cursor()  # at 3; ring still holds e0..e2
        for i in range(3, 6):
            tracer.emit(EventKind.SYSCALL, name=f"e{i}")
        # ring now holds e2..e5; the cursor's suffix is intact
        assert [e.name for e in tracer.events_since(cursor)] \
            == ["e3", "e4", "e5"]

    def test_events_since_rejects_overflowed_cursor(self):
        from repro.errors import TraceCursorError

        tracer = Tracer(FakeClock(), capacity=2)
        cursor = tracer.cursor()
        for i in range(5):
            tracer.emit(EventKind.SYSCALL, name=f"e{i}")
        with pytest.raises(TraceCursorError):
            tracer.events_since(cursor)

    def test_events_since_rejects_bogus_cursor(self):
        from repro.errors import TraceCursorError

        tracer = Tracer(FakeClock(), capacity=4)
        tracer.emit(EventKind.SYSCALL, name="a")
        with pytest.raises(TraceCursorError):
            tracer.events_since(-1)
        with pytest.raises(TraceCursorError):
            tracer.events_since(tracer.emitted + 1)


class TestKindMasks:
    def test_mask_filters_at_emit(self):
        tracer = Tracer(FakeClock(), kinds=[EventKind.FAULT])
        tracer.emit(EventKind.SYSCALL, name="open")
        tracer.emit(EventKind.FAULT, name="read", addr=0x2000)
        assert len(tracer) == 1
        assert tracer.events()[0].kind is EventKind.FAULT
        assert EventKind.SYSCALL not in tracer.counts_by_kind

    def test_mask_from_names(self):
        mask = kinds_mask(["fault", "LINK_RESOLVE"])
        assert mask == EventKind.FAULT.bit | EventKind.LINK_RESOLVE.bit

    def test_enable_disable(self):
        tracer = Tracer(FakeClock(), kinds=[])
        assert not tracer.wants(EventKind.DISK)
        tracer.enable_kind(EventKind.DISK)
        assert tracer.wants(EventKind.DISK)
        tracer.disable_kind(EventKind.DISK)
        tracer.emit(EventKind.DISK, name="/f")
        assert len(tracer) == 0

    def test_masked_span_is_noop(self):
        tracer = Tracer(FakeClock(), kinds=[EventKind.FAULT])
        with tracer.span(EventKind.SWITCH, name="p"):
            pass
        assert len(tracer) == 0


class TestSpans:
    def test_span_duration_from_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span(EventKind.SWITCH, name="slice", pid=3):
            clock.cycles += 250
        (event,) = tracer.events()
        assert event.dur == 250
        assert event.cycle == 0          # entry stamp
        assert event.pid == 3

    def test_nested_spans(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span(EventKind.LINK_RESOLVE, name="outer"):
            clock.cycles += 10
            with tracer.span(EventKind.LINK_RESOLVE, name="inner"):
                clock.cycles += 100
            clock.cycles += 10
        inner, outer = tracer.events()   # inner exits (and emits) first
        assert inner.name == "inner" and inner.dur == 100
        assert outer.name == "outer" and outer.dur == 120
        assert outer.cycle == 0 and inner.cycle == 10
        assert tracer.cycles_by_name[
            (EventKind.LINK_RESOLVE, "outer")] == 120

    def test_span_cycles_aggregate(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        for _ in range(3):
            with tracer.span(EventKind.SWITCH, name="p"):
                clock.cycles += 7
        assert tracer.cycles_by_name[(EventKind.SWITCH, "p")] == 21


class TestNoopTracer:
    def test_default_global_is_disabled(self):
        assert tracer_state.TRACER is NULL_TRACER
        assert NULL_TRACER.enabled is False

    def test_noop_operations(self):
        NULL_TRACER.emit(EventKind.FAULT, name="read", addr=1)
        with NULL_TRACER.span(EventKind.SWITCH, name="x"):
            pass
        assert NULL_TRACER.events() == []

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer(FakeClock())
        set_tracer(tracer)
        assert tracer_state.TRACER is tracer
        set_tracer(None)
        assert tracer_state.TRACER is NULL_TRACER


class TestInstrumentation:
    """The choke points actually emit when tracing is on."""

    def test_fanout_emits_all_core_kinds(self):
        system = boot()
        with tracing(system.kernel) as tracer:
            kernel = system.kernel
            shell = make_shell(kernel)
            graph = build_module_fanout(kernel, shell, width=3, used=2,
                                        module_dir="/shared/fan")
            proc = kernel.create_machine_process("p", graph.executable)
            kernel.run_until_exit(proc)
        kinds = set(tracer.counts_by_kind)
        assert EventKind.SYSCALL in kinds
        assert EventKind.FAULT in kinds
        assert EventKind.SIGNAL in kinds
        assert EventKind.SWITCH in kinds
        assert EventKind.MAP in kinds
        assert EventKind.LINK_RESOLVE in kinds
        assert EventKind.ISLAND in kinds
        assert EventKind.DISK in kinds
        # Lazy linking: exactly `used` modules linked as spans.
        links = [name for (kind, name) in tracer.counts_by_name
                 if kind is EventKind.LINK_RESOLVE
                 and name.startswith("link:")]
        assert len(links) == 2

    def test_events_carry_cycle_stamps_and_pids(self):
        system = boot()
        with tracing(system.kernel) as tracer:
            kernel = system.kernel
            shell = make_shell(kernel)
            graph = build_module_fanout(kernel, shell, width=2, used=1,
                                        module_dir="/shared/fan")
            proc = kernel.create_machine_process("p", graph.executable)
            kernel.run_until_exit(proc)
        events = tracer.events()
        assert events, "no events recorded"
        # Instant events are appended in clock order. (Span events are
        # recorded at exit but stamped with their *entry* cycle, so the
        # combined stream is not globally sorted.)
        instants = [e.cycle for e in events if e.dur == 0]
        assert instants == sorted(instants)
        assert any(e.pid == proc.pid for e in events
                   if e.kind is EventKind.SYSCALL)
        faults = [e for e in events if e.kind is EventKind.FAULT
                  and e.name in ("read", "write", "exec")]
        assert faults and all(e.addr for e in faults)

    def test_ipc_events(self, kernel, shell):
        with tracing(kernel) as tracer:
            kernel.syscalls.msgget(shell, 7)
            kernel.syscalls.msgsnd(shell, 7, b"hello")
            assert kernel.syscalls.msgrcv(shell, 7) == b"hello"
        assert tracer.counts_by_name[(EventKind.IPC, "msgsnd")] == 1
        assert tracer.counts_by_name[(EventKind.IPC, "msgrcv")] == 1


class TestExport:
    def _traced_run(self):
        system = boot()
        with tracing(system.kernel) as tracer:
            kernel = system.kernel
            shell = make_shell(kernel)
            graph = build_module_fanout(kernel, shell, width=3, used=2,
                                        module_dir="/shared/fan")
            proc = kernel.create_machine_process("p", graph.executable)
            kernel.run_until_exit(proc)
        return tracer

    def test_jsonl_deterministic_across_runs(self):
        first = jsonl_lines(self._traced_run().events())
        second = jsonl_lines(self._traced_run().events())
        assert first == second

    def test_jsonl_roundtrip(self):
        lines = jsonl_lines(self._traced_run().events())
        parsed = [json.loads(line) for line in lines]
        assert all(
            list(obj) == ["kind", "cycle", "pid", "addr", "name",
                          "value", "dur", "boot"]
            for obj in parsed
        )
        assert any(obj["kind"] == "FAULT" for obj in parsed)

    def test_chrome_trace_shape(self):
        document = chrome_trace(self._traced_run().events())
        assert "traceEvents" in document
        for record in document["traceEvents"]:
            assert record["ph"] in ("X", "i")
            if record["ph"] == "X":
                assert record["dur"] > 0

    def test_write_files(self, tmp_path):
        tracer = self._traced_run()
        jsonl = tmp_path / "t.trace.jsonl"
        chrome = tmp_path / "t.chrome.json"
        count = write_jsonl(tracer.events(), str(jsonl))
        assert count == len(tracer.events())
        write_chrome(tracer.events(), str(chrome))
        json.load(open(chrome))          # must be valid JSON

    def test_top_report_sections(self):
        report = top_report(self._traced_run(), top=5)
        assert "hottest syscalls" in report
        assert "faultiest pages" in report
        assert "most-resolved symbols" in report
        assert "costliest timed regions" in report


class TestReprotraceCli:
    def test_tour_example_end_to_end(self, tmp_path, capsys):
        script = str(REPO_ROOT / "examples" / "lazy_linking_tour.py")
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        assert reprotrace_main(["-o", str(out_a), script]) == 0
        assert reprotrace_main(["-o", str(out_b), script]) == 0
        capsys.readouterr()
        jsonl_a = (out_a / "lazy_linking_tour.trace.jsonl").read_bytes()
        jsonl_b = (out_b / "lazy_linking_tour.trace.jsonl").read_bytes()
        assert jsonl_a == jsonl_b        # byte-identical reruns
        events = [json.loads(line)
                  for line in jsonl_a.decode().splitlines()]
        assert any(e["kind"] == "FAULT" for e in events)
        assert any(e["kind"] == "LINK_RESOLVE" for e in events)
        assert all(isinstance(e["cycle"], int) for e in events)
        chrome = json.load(open(out_a / "lazy_linking_tour.chrome.json"))
        assert chrome["traceEvents"]

    def test_kinds_filter(self, tmp_path, capsys):
        script = str(REPO_ROOT / "examples" / "lazy_linking_tour.py")
        assert reprotrace_main(
            ["-o", str(tmp_path), "--kinds", "FAULT", script]) == 0
        capsys.readouterr()
        events = [
            json.loads(line) for line in
            (tmp_path / "lazy_linking_tour.trace.jsonl").read_text()
            .splitlines()
        ]
        assert events
        assert {e["kind"] for e in events} == {"FAULT"}

    def test_cli_restores_noop_tracer(self, tmp_path, capsys):
        script = str(REPO_ROOT / "examples" / "quickstart.py")
        reprotrace_main(["-o", str(tmp_path), script])
        capsys.readouterr()
        assert tracer_state.TRACER is NULL_TRACER

    def test_usage_error_without_script(self):
        from repro.tools.cli import UsageError

        with pytest.raises(UsageError):
            reprotrace_main([])

    def test_usage_error_for_missing_script(self):
        from repro.tools.cli import UsageError

        with pytest.raises(UsageError, match="no such script"):
            reprotrace_main(["/no/such/script.py"])


class TestClockPerturbation:
    """Tracing must not move the deterministic clock — pinned to seed."""

    def test_e2_totals_match_seed_with_tracing_disabled(self):
        assert run_fanout(12, 1, lazy=True) == SEED_E2_LAZY_TOTAL
        assert run_fanout(12, 1, lazy=False) == SEED_E2_EAGER_TOTAL

    def test_e2_totals_match_seed_with_tracing_enabled(self):
        set_tracer(Tracer(FakeClock()))
        try:
            assert run_fanout(12, 1, lazy=True) == SEED_E2_LAZY_TOTAL
            assert run_fanout(12, 1, lazy=False) == SEED_E2_EAGER_TOTAL
        finally:
            set_tracer(None)

    def test_clock_delta_helper(self):
        system = boot()
        clock = system.kernel.clock
        start = clock.snapshot()
        clock.syscall()
        clock.page_fault()
        assert clock.delta(start) == \
            clock.costs.syscall + clock.costs.page_fault
