"""Unit and property tests for bit-manipulation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    align_down,
    align_up,
    compose_hi_lo,
    fits_signed,
    fits_unsigned,
    hi16,
    is_aligned,
    lo16,
    sign_extend,
    to_signed32,
    to_unsigned32,
)


class TestTruncation:
    def test_to_unsigned32_wraps(self):
        assert to_unsigned32(0x1_0000_0005) == 5
        assert to_unsigned32(-1) == 0xFFFFFFFF

    def test_to_signed32_negative(self):
        assert to_signed32(0xFFFFFFFF) == -1
        assert to_signed32(0x80000000) == -(1 << 31)

    def test_to_signed32_positive(self):
        assert to_signed32(0x7FFFFFFF) == 0x7FFFFFFF
        assert to_signed32(5) == 5

    @given(st.integers())
    def test_roundtrip(self, value):
        assert to_unsigned32(to_signed32(value)) == to_unsigned32(value)


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0x7FFF, 16) == 0x7FFF

    def test_negative(self):
        assert sign_extend(0x8000, 16) == -0x8000
        assert sign_extend(0xFFFF, 16) == -1

    def test_byte(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x7F, 8) == 127

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    @given(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    def test_identity_in_range(self, value):
        assert sign_extend(value & 0xFFFF, 16) == value


class TestFits:
    def test_signed_bounds(self):
        assert fits_signed(32767, 16)
        assert not fits_signed(32768, 16)
        assert fits_signed(-32768, 16)
        assert not fits_signed(-32769, 16)

    def test_unsigned_bounds(self):
        assert fits_unsigned(0xFFFF, 16)
        assert not fits_unsigned(0x10000, 16)
        assert not fits_unsigned(-1, 16)


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 0x1000) == 0x1000
        assert align_down(0x1000, 0x1000) == 0x1000

    def test_align_up(self):
        assert align_up(0x1001, 0x1000) == 0x2000
        assert align_up(0x1000, 0x1000) == 0x1000
        assert align_up(0, 0x1000) == 0

    def test_is_aligned(self):
        assert is_aligned(0x4000, 0x1000)
        assert not is_aligned(0x4004, 0x1000)

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.sampled_from([2, 4, 8, 16, 4096]))
    def test_align_properties(self, value, alignment):
        down, up = align_down(value, alignment), align_up(value, alignment)
        assert down <= value <= up
        assert is_aligned(down, alignment)
        assert is_aligned(up, alignment)
        assert up - down in (0, alignment)


class TestHiLo:
    def test_simple_split(self):
        assert hi16(0x30400000) == 0x3040
        assert lo16(0x30400000) == 0
        assert lo16(0x30401234) == 0x1234

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_compose_roundtrip(self, address):
        assert compose_hi_lo(hi16(address), lo16(address)) == address
