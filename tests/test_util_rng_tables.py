"""Tests for the deterministic RNG and the table formatter."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import DeterministicRng
from repro.util.tables import format_table


class TestRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.next_u64() for _ in range(20)] == \
            [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.next_u64() for _ in range(4)] != \
            [b.next_u64() for _ in range(4)]

    def test_zero_seed_does_not_stick(self):
        rng = DeterministicRng(0)
        values = {rng.next_u64() for _ in range(10)}
        assert 0 not in values or len(values) > 1

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=-100, max_value=100),
           st.integers(min_value=0, max_value=200))
    def test_randint_in_range(self, seed, lo, span):
        rng = DeterministicRng(seed)
        hi = lo + span
        for _ in range(20):
            assert lo <= rng.randint(lo, hi) <= hi

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).randint(5, 4)

    def test_random_unit_interval(self):
        rng = DeterministicRng(7)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_choice_and_sample(self):
        rng = DeterministicRng(9)
        items = list(range(50))
        assert rng.choice(items) in items
        sample = rng.sample(items, 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10
        assert set(sample) <= set(items)

    def test_sample_too_large(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).sample([1, 2], 3)

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).choice([])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(3)
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(("name", "count"),
                           [("alpha", 3), ("beta", 12)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert "beta" in lines[3]

    def test_title(self):
        out = format_table(("a",), [(1,)], title="T")
        assert out.splitlines()[0] == "T"

    def test_numeric_right_alignment(self):
        out = format_table(("n",), [(5,), (500,)])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("500")

    def test_float_formatting(self):
        out = format_table(("x",), [(1.23456,)])
        assert "1.235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])
