"""Address-space semantics: mapping, protection, sharing, COW, fork."""

import pytest

from repro.errors import MappingError
from repro.vm.address_space import (
    AddressSpace,
    MAP_PRIVATE,
    MAP_SHARED,
    PROT_NONE,
    PROT_READ,
    PROT_RW,
    PROT_RWX,
    prot_str,
)
from repro.vm.faults import AccessKind, PageFaultError
from repro.vm.layout import PAGE_SIZE, SFS_REGION
from repro.vm.pages import MemoryObject, PhysicalMemory


@pytest.fixture
def pm():
    return PhysicalMemory()


@pytest.fixture
def space(pm):
    return AddressSpace(pm, "test")


class TestMapping:
    def test_map_and_access(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_RW)
        space.store_word(0x10000, 0xDEADBEEF)
        assert space.load_word(0x10000) == 0xDEADBEEF

    def test_unmapped_access_faults(self, space):
        with pytest.raises(PageFaultError) as info:
            space.load_word(0x10000)
        assert info.value.present is False
        assert info.value.access is AccessKind.READ

    def test_protection_fault(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_READ)
        assert space.load_word(0x10000) == 0
        with pytest.raises(PageFaultError) as info:
            space.store_word(0x10000, 1)
        assert info.value.present is True
        assert info.value.access is AccessKind.WRITE

    def test_exec_requires_exec(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_RW)
        with pytest.raises(PageFaultError) as info:
            space.fetch_word(0x10000)
        assert info.value.access is AccessKind.EXEC

    def test_prot_none_blocks_everything(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_NONE)
        for op in (lambda: space.load_word(0x10000),
                   lambda: space.store_word(0x10000, 1),
                   lambda: space.fetch_word(0x10000)):
            with pytest.raises(PageFaultError):
                op()

    def test_force_bypasses_protection_but_not_mapping(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_NONE)
        space.store_word(0x10000, 7, force=True)
        assert space.load_word(0x10000, force=True) == 7
        with pytest.raises(PageFaultError):
            space.load_word(0x20000, force=True)

    def test_overlap_rejected(self, space):
        space.map(0x10000, 2 * PAGE_SIZE)
        with pytest.raises(MappingError):
            space.map(0x11000, PAGE_SIZE)

    def test_unaligned_address_rejected(self, space):
        with pytest.raises(MappingError):
            space.map(0x10004, PAGE_SIZE)

    def test_bad_length_rejected(self, space):
        with pytest.raises(MappingError):
            space.map(0x10000, 0)

    def test_anonymous_shared_rejected(self, space):
        with pytest.raises(MappingError):
            space.map(0x10000, PAGE_SIZE, flags=MAP_SHARED)

    def test_find_free_respects_region(self, space):
        mapping = space.map(None, PAGE_SIZE, search_region=SFS_REGION)
        assert SFS_REGION.contains(mapping.start)
        second = space.map(None, PAGE_SIZE, search_region=SFS_REGION)
        assert second.start != mapping.start

    def test_unmap_then_remap(self, space):
        space.map(0x10000, PAGE_SIZE)
        space.unmap(0x10000, PAGE_SIZE)
        space.map(0x10000, PAGE_SIZE)  # no overlap error

    def test_partial_unmap_rejected(self, space):
        space.map(0x10000, 2 * PAGE_SIZE)
        with pytest.raises(MappingError):
            space.unmap(0x10000, PAGE_SIZE)

    def test_unmap_releases_frames(self, space, pm):
        space.map(0x10000, 4 * PAGE_SIZE)
        space.write_bytes(0x10000, b"x" * (4 * PAGE_SIZE))
        assert pm.allocated == 4
        space.unmap(0x10000, 4 * PAGE_SIZE)
        assert pm.allocated == 0

    def test_mapping_at(self, space):
        mapping = space.map(0x10000, PAGE_SIZE, name="seg")
        assert space.mapping_at(0x10800) is mapping
        assert space.mapping_at(0x20000) is None

    def test_describe_lists_mappings(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_RW, name="data")
        text = space.describe()
        assert "data" in text
        assert "rw-" in text

    def test_prot_str(self):
        assert prot_str(PROT_RWX) == "rwx"
        assert prot_str(PROT_NONE) == "---"


class TestMprotect:
    def test_mprotect_changes_access(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_NONE)
        space.mprotect(0x10000, PAGE_SIZE, PROT_RW)
        space.store_word(0x10000, 5)
        assert space.load_word(0x10000) == 5

    def test_mprotect_unmapped_rejected(self, space):
        with pytest.raises(MappingError):
            space.mprotect(0x10000, PAGE_SIZE, PROT_RW)

    def test_mprotect_partial_page_range(self, space):
        space.map(0x10000, 4 * PAGE_SIZE, prot=PROT_RW)
        space.mprotect(0x11000, PAGE_SIZE, PROT_NONE)
        space.store_word(0x10000, 1)          # still writable
        with pytest.raises(PageFaultError):
            space.store_word(0x11000, 1)      # protected page


class TestSharedMappings:
    def test_shared_mapping_writes_through(self, pm):
        mo = MemoryObject(pm, size=PAGE_SIZE, name="seg")
        a = AddressSpace(pm, "a")
        b = AddressSpace(pm, "b")
        a.map(0x40000000, PAGE_SIZE, memobj=mo, prot=PROT_RW,
              flags=MAP_SHARED)
        b.map(0x40000000, PAGE_SIZE, memobj=mo, prot=PROT_RW,
              flags=MAP_SHARED)
        a.store_word(0x40000000, 1234)
        assert b.load_word(0x40000000) == 1234
        assert mo.read(0, 4) == (1234).to_bytes(4, "little")

    def test_file_writes_visible_through_mapping(self, pm):
        mo = MemoryObject(pm, size=PAGE_SIZE)
        space = AddressSpace(pm)
        space.map(0x40000000, PAGE_SIZE, memobj=mo, prot=PROT_RW,
                  flags=MAP_SHARED)
        mo.write(8, b"\x2a\x00\x00\x00")
        assert space.load_word(0x40000008) == 42

    def test_mapping_offset(self, pm):
        mo = MemoryObject(pm, size=3 * PAGE_SIZE)
        mo.write(PAGE_SIZE, b"hello")
        space = AddressSpace(pm)
        space.map(0x40000000, PAGE_SIZE, memobj=mo, offset=PAGE_SIZE,
                  prot=PROT_RW, flags=MAP_SHARED)
        assert space.read_bytes(0x40000000, 5) == b"hello"

    def test_unaligned_offset_rejected(self, pm):
        mo = MemoryObject(pm, size=PAGE_SIZE)
        with pytest.raises(MappingError):
            AddressSpace(pm).map(0x40000000, PAGE_SIZE, memobj=mo,
                                 offset=100, flags=MAP_SHARED)


class TestPrivateAndCow:
    def test_private_file_mapping_does_not_write_back(self, pm):
        mo = MemoryObject(pm, size=PAGE_SIZE)
        mo.write(0, b"orig")
        space = AddressSpace(pm)
        space.map(0x10000, PAGE_SIZE, memobj=mo, prot=PROT_RW,
                  flags=MAP_PRIVATE)
        assert space.read_bytes(0x10000, 4) == b"orig"
        space.write_bytes(0x10000, b"mine")
        assert space.read_bytes(0x10000, 4) == b"mine"
        assert mo.read(0, 4) == b"orig"

    def test_fork_cow_isolation(self, pm):
        parent = AddressSpace(pm, "parent")
        parent.map(0x10000, PAGE_SIZE, prot=PROT_RW)
        parent.store_word(0x10000, 111)
        child = parent.fork("child")
        assert child.load_word(0x10000) == 111
        child.store_word(0x10000, 222)
        assert parent.load_word(0x10000) == 111
        parent.store_word(0x10004, 333)
        assert child.load_word(0x10004) == 0

    def test_fork_shares_public_mappings(self, pm):
        mo = MemoryObject(pm, size=PAGE_SIZE)
        parent = AddressSpace(pm)
        parent.map(0x40000000, PAGE_SIZE, memobj=mo, prot=PROT_RW,
                   flags=MAP_SHARED)
        child = parent.fork()
        child.store_word(0x40000000, 77)
        assert parent.load_word(0x40000000) == 77

    def test_fork_frame_economy(self, pm):
        """COW must not copy frames until a write happens."""
        parent = AddressSpace(pm)
        parent.map(0x10000, 8 * PAGE_SIZE, prot=PROT_RW)
        parent.write_bytes(0x10000, b"z" * (8 * PAGE_SIZE))
        before = pm.allocated
        child = parent.fork()
        assert pm.allocated == before  # no copies yet
        child.store_word(0x10000, 1)
        assert pm.allocated == before + 1  # exactly one page copied

    def test_destroy_releases_everything(self, pm):
        space = AddressSpace(pm)
        space.map(0x10000, 4 * PAGE_SIZE, prot=PROT_RW)
        space.write_bytes(0x10000, b"q" * (4 * PAGE_SIZE))
        child = space.fork()
        child.store_word(0x10000, 5)
        space.destroy()
        child.destroy()
        assert pm.allocated == 0


class TestStringsAndWords:
    def test_cstring_roundtrip(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_RW)
        space.write_cstring(0x10000, "hello world")
        assert space.read_cstring(0x10000) == "hello world"

    def test_cstring_respects_max(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_RW)
        space.write_bytes(0x10000, b"abcdef")
        assert space.read_cstring(0x10000, max_length=3) == "abc"

    def test_halfword_and_byte_loads(self, space):
        space.map(0x10000, PAGE_SIZE, prot=PROT_RW)
        space.write_bytes(0x10000, (0x12345678).to_bytes(4, "little"))
        assert space.load_half(0x10000) == 0x5678
        assert space.load_byte(0x10003) == 0x12

    def test_cross_page_word(self, space):
        space.map(0x10000, 2 * PAGE_SIZE, prot=PROT_RW)
        space.store_word(0x10000 + PAGE_SIZE - 2, 0xAABBCCDD)
        assert space.load_word(0x10000 + PAGE_SIZE - 2) == 0xAABBCCDD
