"""Figure 3 layout invariants."""

import pytest

from repro.vm.layout import (
    ALL_REGIONS,
    HEAP_REGION,
    KERNEL_REGION,
    PAGE_SIZE,
    SFS_REGION,
    STACK_REGION,
    TEXT_REGION,
    describe_layout,
    is_public_address,
    region_of,
)


class TestRegions:
    def test_paper_constants(self):
        """The exact addresses of Figure 3."""
        assert TEXT_REGION.start == 0x0000_0000
        assert TEXT_REGION.end == 0x1000_0000
        assert HEAP_REGION.start == 0x1000_0000
        assert HEAP_REGION.end == 0x3000_0000
        assert SFS_REGION.start == 0x3000_0000
        assert SFS_REGION.end == 0x7000_0000
        assert STACK_REGION.start == 0x7000_0000
        assert STACK_REGION.end == 0x7FFF_0000
        assert KERNEL_REGION.start == 0x8000_0000

    def test_sfs_region_is_one_gigabyte(self):
        assert SFS_REGION.size == 1 << 30

    def test_only_sfs_is_public(self):
        publics = [r for r in ALL_REGIONS if r.public]
        assert publics == [SFS_REGION]

    def test_regions_do_not_overlap(self):
        ordered = sorted(ALL_REGIONS, key=lambda r: r.start)
        for left, right in zip(ordered, ordered[1:]):
            assert left.end <= right.start

    def test_quarter_of_address_space_public(self):
        """'only one quarter of the address space is public' (§5)."""
        assert SFS_REGION.size == (1 << 32) // 4

    def test_page_size(self):
        assert PAGE_SIZE == 4096


class TestLookups:
    def test_is_public_address(self):
        assert is_public_address(0x3000_0000)
        assert is_public_address(0x6FFF_FFFF)
        assert not is_public_address(0x2FFF_FFFF)
        assert not is_public_address(0x7000_0000)

    def test_region_of(self):
        assert region_of(0x0040_0000) is TEXT_REGION
        assert region_of(0x1000_0000) is HEAP_REGION
        assert region_of(0x4000_0000) is SFS_REGION
        assert region_of(0x7100_0000) is STACK_REGION
        assert region_of(0x9000_0000) is KERNEL_REGION

    def test_region_of_gap_raises(self):
        with pytest.raises(ValueError):
            region_of(0x7FFF_8000)  # gap between stack top and kernel

    def test_describe_layout_mentions_all(self):
        text = describe_layout()
        for region in ALL_REGIONS:
            assert region.name in text
