"""Tests for physical frames and memory objects."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfMemoryError
from repro.vm.layout import PAGE_SIZE
from repro.vm.pages import Frame, MemoryObject, PhysicalMemory


class TestFrame:
    def test_zero_initialized(self):
        frame = Frame()
        assert bytes(frame.data) == b"\x00" * PAGE_SIZE
        assert frame.refcount == 1

    def test_initializer(self):
        frame = Frame(b"abc")
        assert bytes(frame.data[:4]) == b"abc\x00"

    def test_rejects_oversized_initializer(self):
        with pytest.raises(ValueError):
            Frame(b"x" * (PAGE_SIZE + 1))


class TestPhysicalMemory:
    def test_alloc_accounting(self):
        pm = PhysicalMemory(max_frames=4)
        frames = [pm.alloc() for _ in range(3)]
        assert pm.allocated == 3
        assert pm.peak == 3
        for frame in frames:
            pm.release(frame)
        assert pm.allocated == 0
        assert pm.peak == 3

    def test_exhaustion(self):
        pm = PhysicalMemory(max_frames=2)
        pm.alloc()
        pm.alloc()
        with pytest.raises(OutOfMemoryError):
            pm.alloc()

    def test_retain_release(self):
        pm = PhysicalMemory()
        frame = pm.alloc()
        pm.retain(frame)
        assert frame.refcount == 2
        pm.release(frame)
        assert pm.allocated == 1
        pm.release(frame)
        assert pm.allocated == 0

    def test_over_release_asserts(self):
        pm = PhysicalMemory()
        frame = pm.alloc()
        pm.release(frame)
        with pytest.raises(AssertionError):
            pm.release(frame)

    def test_copy_is_independent(self):
        pm = PhysicalMemory()
        frame = pm.alloc(b"hello")
        clone = pm.copy(frame)
        clone.data[0] = ord("H")
        assert frame.data[0] == ord("h")


class TestMemoryObject:
    def test_read_of_empty_is_empty(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        assert mo.read(0, 100) == b""

    def test_write_then_read(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        mo.write(10, b"hello")
        assert mo.size == 15
        assert mo.read(10, 5) == b"hello"
        assert mo.read(0, 15) == b"\x00" * 10 + b"hello"

    def test_read_clamped_to_size(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        mo.write(0, b"abc")
        assert mo.read(1, 100) == b"bc"
        assert mo.read(3, 100) == b""

    def test_cross_page_write(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        data = bytes(range(256)) * 40  # > 2 pages
        mo.write(PAGE_SIZE - 100, data)
        assert mo.read(PAGE_SIZE - 100, len(data)) == data
        assert mo.resident_pages >= 3

    def test_sparse_pages_lazy(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm, size=100 * PAGE_SIZE)
        assert mo.resident_pages == 0
        assert mo.read(50 * PAGE_SIZE, 8) == b"\x00" * 8
        assert mo.resident_pages == 0  # reading allocates nothing
        mo.write(50 * PAGE_SIZE, b"x")
        assert mo.resident_pages == 1

    def test_truncate_shrinks_and_zeroes(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        mo.write(0, b"A" * (2 * PAGE_SIZE))
        mo.truncate(10)
        assert mo.size == 10
        assert pm.allocated == 1
        mo.truncate(PAGE_SIZE)
        # The old bytes past offset 10 must not reappear.
        assert mo.read(10, 20) == b"\x00" * 20

    def test_truncate_grow(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        mo.write(0, b"ab")
        mo.truncate(1000)
        assert mo.size == 1000
        assert mo.read(0, 4) == b"ab\x00\x00"

    def test_truncate_negative(self):
        pm = PhysicalMemory()
        with pytest.raises(ValueError):
            MemoryObject(pm).truncate(-1)

    def test_free_releases_frames(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        mo.write(0, b"x" * (3 * PAGE_SIZE))
        assert pm.allocated == 3
        mo.free()
        assert pm.allocated == 0
        assert mo.size == 0

    def test_snapshot(self):
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        mo.write(0, b"hello world")
        assert mo.snapshot() == b"hello world"

    @settings(max_examples=30)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=3 * PAGE_SIZE),
                  st.binary(min_size=1, max_size=300)),
        min_size=1, max_size=12,
    ))
    def test_matches_reference_bytearray(self, writes):
        """Property: MemoryObject behaves like a growable bytearray."""
        pm = PhysicalMemory()
        mo = MemoryObject(pm)
        reference = bytearray()
        for offset, data in writes:
            if offset + len(data) > len(reference):
                reference.extend(b"\x00" * (offset + len(data)
                                            - len(reference)))
            reference[offset: offset + len(data)] = data
            mo.write(offset, data)
        assert mo.size == len(reference)
        assert mo.snapshot() == bytes(reference)
