"""Software-TLB semantics: the fast path must be invisible.

The TLB caches vpn -> (frame bytes, effective prot) per address space
and the decoded-instruction cache lives on each frame. Both are pure
host-speed optimizations: every test here checks that no observable
behavior — values read, faults raised, isolation after fork, simulated
cycle totals — differs between TLB on, TLB off, and the pre-TLB seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import boot
from repro.bench.workloads import (
    build_module_fanout,
    fanout_expected_exit,
    make_shell,
)
from repro.hw.asm import assemble
from repro.hw.cpu import Cpu, SyscallTrap
from repro.trace import EventKind, Tracer, set_tracer, tracing
from repro.trace.export import top_report
from repro.vm.address_space import (
    AddressSpace,
    MAP_SHARED,
    PROT_READ,
    PROT_RW,
    PROT_RWX,
    default_tlb_enabled,
    set_default_tlb_enabled,
)
from repro.vm.faults import PageFaultError
from repro.vm.layout import PAGE_SHIFT, PAGE_SIZE
from repro.vm.pages import MemoryObject, PhysicalMemory

# Seed cycle totals for the E2 workload, captured before the TLB
# existed (same pins as tests/test_trace.py). The TLB must never move
# these — it may only change host wall-clock.
SEED_E2_LAZY_TOTAL = 584_767
SEED_E2_EAGER_TOTAL = 1_614_169

BASE = 0x10000


@pytest.fixture
def pm():
    return PhysicalMemory()


@pytest.fixture
def space(pm):
    return AddressSpace(pm, "tlb-test", tlb_enabled=True)


@pytest.fixture
def tlb_on():
    """Force the process-wide default on (kernel-created address spaces
    follow it), so these tests mean the same under REPRO_TLB=0."""
    saved = default_tlb_enabled()
    set_default_tlb_enabled(True)
    yield
    set_default_tlb_enabled(saved)


class TestFastPath:
    def test_load_fills_then_hits(self, space):
        space.map(BASE, PAGE_SIZE, prot=PROT_RW)
        space.store_word(BASE, 0xC0FFEE)
        assert space.tlb_fills == 1
        hits = space.tlb_hits
        assert space.load_word(BASE) == 0xC0FFEE
        assert space.load_word(BASE + 4) == 0
        assert space.tlb_hits == hits + 2
        assert space.tlb_fills == 1          # same page, one entry

    def test_store_fast_path_updates_frame(self, space):
        space.map(BASE, PAGE_SIZE, prot=PROT_RW)
        space.store_word(BASE, 1)            # slow path, fills
        space.store_word(BASE, 2)            # fast path
        assert space.tlb_hits >= 1
        assert space.read_bytes(BASE, 4) == (2).to_bytes(4, "little")

    def test_fetch_requires_exec_in_entry(self, space):
        space.map(BASE, PAGE_SIZE, prot=PROT_RW)
        space.store_word(BASE, 7)            # cached without PROT_EXEC
        with pytest.raises(PageFaultError):
            space.fetch_word(BASE)           # hit must not grant exec

    def test_disabled_tlb_never_fills(self, pm):
        space = AddressSpace(pm, "no-tlb", tlb_enabled=False)
        space.map(BASE, PAGE_SIZE, prot=PROT_RW)
        space.store_word(BASE, 1)
        assert space.load_word(BASE) == 1
        assert not space.tlb
        assert space.tlb_stats() == {
            "hits": 0, "misses": 0, "fills": 0, "invalidations": 0,
            "flushes": 0, "entries": 0,
        }

    def test_toggle_off_flushes(self, space):
        space.map(BASE, PAGE_SIZE, prot=PROT_RW)
        space.store_word(BASE, 1)
        assert space.tlb
        space.set_tlb_enabled(False)
        assert not space.tlb
        assert space.load_word(BASE) == 1    # slow path still works

    def test_default_toggle(self, pm):
        saved = default_tlb_enabled()
        try:
            set_default_tlb_enabled(False)
            assert AddressSpace(pm).tlb_enabled is False
            set_default_tlb_enabled(True)
            assert AddressSpace(pm).tlb_enabled is True
        finally:
            set_default_tlb_enabled(saved)


class TestInvalidation:
    def test_unmap_drops_cached_translation(self, space):
        space.map(BASE, PAGE_SIZE, prot=PROT_RW)
        space.store_word(BASE, 9)
        space.unmap(BASE, PAGE_SIZE)
        with pytest.raises(PageFaultError):
            space.load_word(BASE)
        assert space.tlb_invalidations >= 1

    def test_mprotect_readonly_faults_cached_write(self, space):
        """The headline coherence bug the TLB must not introduce: a
        writable translation cached before mprotect(PROT_READ) must not
        let a later store slip past the new protection."""
        space.map(BASE, PAGE_SIZE, prot=PROT_RW)
        space.store_word(BASE, 1)            # warm writable entry
        space.mprotect(BASE, PAGE_SIZE, PROT_READ)
        with pytest.raises(PageFaultError) as info:
            space.store_word(BASE, 2)
        assert info.value.present is True
        assert space.load_word(BASE) == 1    # reads still fine

    def test_mprotect_partial_range_precision(self, space):
        space.map(BASE, 4 * PAGE_SIZE, prot=PROT_RW)
        for page in range(4):
            space.store_word(BASE + page * PAGE_SIZE, page)
        space.mprotect(BASE + PAGE_SIZE, PAGE_SIZE, PROT_READ)
        space.store_word(BASE, 10)           # untouched page still cached
        with pytest.raises(PageFaultError):
            space.store_word(BASE + PAGE_SIZE, 11)

    def test_fork_isolates_despite_warm_parent_tlb(self, pm):
        """A writable parent translation cached before fork must not let
        a post-fork store leak into the COW-sharing child."""
        parent = AddressSpace(pm, "parent", tlb_enabled=True)
        parent.map(BASE, PAGE_SIZE, prot=PROT_RW)
        parent.store_word(BASE, 111)
        parent.store_word(BASE, 111)         # ensure warm, writable entry
        assert parent.tlb_hits >= 1
        child = parent.fork("child")
        parent.store_word(BASE, 222)         # must COW-break, not leak
        assert child.load_word(BASE) == 111
        child.store_word(BASE, 333)
        assert parent.load_word(BASE) == 222

    def test_child_cow_entry_is_write_protected(self, pm):
        parent = AddressSpace(pm, "parent", tlb_enabled=True)
        parent.map(BASE, PAGE_SIZE, prot=PROT_RW)
        parent.store_word(BASE, 5)
        child = parent.fork("child")
        assert child.load_word(BASE) == 5    # warms child entry (COW, r/o)
        child.store_word(BASE, 6)            # slow path, breaks COW
        assert parent.load_word(BASE) == 5

    def test_shared_mapping_stays_coherent(self, pm):
        mo = MemoryObject(pm, size=PAGE_SIZE, name="seg")
        a = AddressSpace(pm, "a", tlb_enabled=True)
        b = AddressSpace(pm, "b", tlb_enabled=True)
        for s in (a, b):
            s.map(BASE, PAGE_SIZE, memobj=mo, prot=PROT_RW,
                  flags=MAP_SHARED)
        a.store_word(BASE, 1)
        assert b.load_word(BASE) == 1        # both now cached
        a.store_word(BASE, 2)                # fast path in a
        assert b.load_word(BASE) == 2        # b's entry aliases the frame
        mo.write(0, (3).to_bytes(4, "little"))
        assert a.load_word(BASE) == 3        # file writes too

    def test_truncate_invalidates_watchers(self, pm):
        mo = MemoryObject(pm, size=2 * PAGE_SIZE, name="file")
        space = AddressSpace(pm, "m", tlb_enabled=True)
        space.map(BASE, 2 * PAGE_SIZE, memobj=mo, prot=PROT_RW,
                  flags=MAP_SHARED)
        space.store_word(BASE + PAGE_SIZE, 0xAA)   # warm page 1
        vpn = (BASE + PAGE_SIZE) >> PAGE_SHIFT
        assert vpn in space.tlb
        flushes = space.tlb_flushes
        mo.truncate(PAGE_SIZE)               # frees page 1's frame
        assert vpn not in space.tlb          # watcher was flushed
        assert space.tlb_flushes == flushes + 1

    def test_replace_page_invalidates_watchers(self, pm):
        mo = MemoryObject(pm, size=PAGE_SIZE, name="file")
        space = AddressSpace(pm, "m", tlb_enabled=True)
        space.map(BASE, PAGE_SIZE, memobj=mo, prot=PROT_RW,
                  flags=MAP_SHARED)
        space.store_word(BASE, 1)
        mo.replace_page(0, pm.alloc((42).to_bytes(4, "little")))
        # The cached translation named the old frame; it must be gone.
        assert (BASE >> PAGE_SHIFT) not in space.tlb


TEXT = 0x1000


def _bare_cpu(source: str, pm=None):
    obj = assemble(source)
    pm = pm or PhysicalMemory()
    space = AddressSpace(pm, "smc", tlb_enabled=True)
    space.map(TEXT, PAGE_SIZE, prot=PROT_RWX)
    space.write_bytes(TEXT, bytes(obj.text))
    cpu = Cpu(space)
    cpu.pc = TEXT
    return cpu, space


class TestSelfModifyingText:
    def test_patched_text_redecodes(self):
        """The ldl path: text that already executed (so its decode cache
        is warm) is patched in place via the kernel's force-write; the
        next execution must see the new instructions."""
        cpu, space = _bare_cpu(".text\nli t0, 1\nsyscall")
        with pytest.raises(SyscallTrap):
            cpu.run(10)
        assert cpu.regs[8] == 1
        frame = space.tlb[TEXT >> PAGE_SHIFT][2]
        assert frame.decode                  # cache is warm
        patched = assemble(".text\nli t0, 2\nsyscall")
        space.write_bytes(TEXT, bytes(patched.text), force=True)
        assert not frame.decode              # write cleared it
        cpu.pc = TEXT
        with pytest.raises(SyscallTrap):
            cpu.run(10)
        assert cpu.regs[8] == 2

    def test_store_word_patch_redecodes(self):
        """Word-granular patching (patch_reloc_in_memory / PLT slot
        fixups use store_word(force=True)) must also invalidate."""
        cpu, space = _bare_cpu(".text\nli t0, 1\nsyscall")
        with pytest.raises(SyscallTrap):
            cpu.run(10)
        word = int.from_bytes(
            bytes(assemble(".text\nli t0, 7").text[:4]), "little")
        space.store_word(TEXT, word, force=True)
        cpu.pc = TEXT
        with pytest.raises(SyscallTrap):
            cpu.run(10)
        assert cpu.regs[8] == 7

    def test_lazy_link_plt_patching_end_to_end(self, tlb_on):
        """Full stack: lazy linking patches PLT jump slots in mapped text
        at fault time, then re-executes them. With the TLB and decode
        cache on, the run must still produce the right exit code — and
        must actually have exercised the caches."""
        system = boot(lazy=True)
        kernel = system.kernel
        shell = make_shell(kernel)
        graph = build_module_fanout(kernel, shell, width=4, used=3,
                                    module_dir="/shared/fan")
        proc = kernel.create_machine_process("p", graph.executable)
        code = kernel.run_until_exit(proc)
        assert code == fanout_expected_exit(3)
        space = proc.address_space
        assert space.tlb_hits > 0
        # The workload is link-dominated (few repeated pcs), but every
        # decoded instruction went through the cache — and the PLT
        # patches forced re-decodes rather than stale hits.
        assert proc.cpu.decode_misses > 0

    def test_kernel_loop_hits_decode_cache(self, tlb_on):
        """A looping machine process must actually reuse decoded
        instructions across iterations."""
        system = boot()
        kernel = system.kernel
        shell = make_shell(kernel)
        from repro.linker.lds import LinkRequest, store_object
        obj = assemble("""
            .text
            .globl main
        main:
            li t0, 50
            move v0, zero
        loop:
            add v0, v0, t0
            addi t0, t0, -1
            bgtz t0, loop
            andi v0, v0, 0xFF
            jr ra
        """, "loop.o")
        store_object(kernel, shell, "/loop.o", obj)
        result = system.lds.link(shell, [LinkRequest("/loop.o")],
                                 output="/loop")
        proc = kernel.create_machine_process("loop", result.executable)
        code = kernel.run_until_exit(proc)
        assert code == (50 * 51 // 2) & 0xFF
        assert proc.cpu.decode_hits > 100
        assert proc.address_space.tlb_hits > 100


class _FakeClock:
    def __init__(self) -> None:
        self.cycles = 0


class TestStatsAndTrace:
    def test_flush_emits_trace_event(self, space):
        tracer = Tracer(_FakeClock())
        set_tracer(tracer)
        try:
            space.map(BASE, PAGE_SIZE, prot=PROT_RW)
            space.store_word(BASE, 1)
            space.tlb_flush("test")
        finally:
            set_tracer(None)
        (event,) = [e for e in tracer.events()
                    if e.kind is EventKind.TLB]
        assert event.name == "flush:test"
        assert event.value == 1

    def test_destroy_publishes_counters(self, space):
        space.map(BASE, PAGE_SIZE, prot=PROT_RW)
        space.store_word(BASE, 1)
        space.load_word(BASE)
        tracer = Tracer(_FakeClock())
        set_tracer(tracer)
        try:
            space.destroy()
        finally:
            set_tracer(None)
        names = {e.name: e.value for e in tracer.events()}
        assert names["tlb:hits"] == space.tlb_hits
        assert names["tlb:fills"] == space.tlb_fills

    def test_top_report_has_tlb_section(self):
        """The reprotrace top-N report aggregates the TLB counters the
        address spaces publish when they are destroyed."""
        saved = default_tlb_enabled()
        set_default_tlb_enabled(True)
        try:
            system = boot()
            with tracing(system.kernel) as tracer:
                kernel = system.kernel
                shell = make_shell(kernel)
                graph = build_module_fanout(kernel, shell, width=3,
                                            used=2,
                                            module_dir="/shared/fan")
                proc = kernel.create_machine_process(
                    "p", graph.executable)
                kernel.run_until_exit(proc)
        finally:
            set_default_tlb_enabled(saved)
        report = top_report(tracer, top=5)
        assert "software-TLB traffic" in report
        assert "tlb:hits" in report


class TestCycleIdentity:
    """The TLB must be invisible to the deterministic clock — totals
    pinned to the pre-TLB seed, with the TLB forced on and forced off."""

    def _run_fanout(self, lazy: bool) -> int:
        system = boot(lazy=lazy)
        kernel = system.kernel
        shell = make_shell(kernel)
        graph = build_module_fanout(kernel, shell, width=12, used=1,
                                    module_dir="/shared/fan")
        start = kernel.clock.snapshot()
        proc = kernel.create_machine_process("p", graph.executable)
        code = kernel.run_until_exit(proc)
        total = kernel.clock.delta(start)
        assert code == fanout_expected_exit(1)
        return total

    @pytest.mark.parametrize("enabled", [True, False])
    def test_e2_totals_match_seed(self, enabled):
        saved = default_tlb_enabled()
        set_default_tlb_enabled(enabled)
        try:
            assert self._run_fanout(lazy=True) == SEED_E2_LAZY_TOTAL
            assert self._run_fanout(lazy=False) == SEED_E2_EAGER_TOTAL
        finally:
            set_default_tlb_enabled(saved)


# A mirrored-pair property test: drive one TLB-enabled and one
# TLB-disabled address space through the same operation sequence and
# demand identical observable behavior (values, faults) at every step.

_PAGES = 4
_OPS = st.one_of(
    st.tuples(st.just("map"), st.integers(0, _PAGES - 1)),
    st.tuples(st.just("unmap"), st.integers(0, _PAGES - 1)),
    st.tuples(st.just("protect_ro"), st.integers(0, _PAGES - 1)),
    st.tuples(st.just("protect_rw"), st.integers(0, _PAGES - 1)),
    st.tuples(st.just("store"), st.integers(0, _PAGES * PAGE_SIZE // 4 - 1),
              st.integers(0, 0xFFFFFFFF)),
    st.tuples(st.just("load"), st.integers(0, _PAGES * PAGE_SIZE // 4 - 1)),
    st.tuples(st.just("fork_write"), st.integers(0, _PAGES - 1)),
)


class _Mirror:
    """One side of the pair: an address space plus its fork children."""

    def __init__(self, enabled: bool) -> None:
        self.pm = PhysicalMemory()
        self.space = AddressSpace(self.pm, "mirror", tlb_enabled=enabled)
        self.mapped = set()

    def apply(self, op):
        space = self.space
        kind = op[0]
        try:
            if kind == "map":
                space.map(BASE + op[1] * PAGE_SIZE, PAGE_SIZE,
                          prot=PROT_RW)
                self.mapped.add(op[1])
            elif kind == "unmap":
                space.unmap(BASE + op[1] * PAGE_SIZE, PAGE_SIZE)
                self.mapped.discard(op[1])
            elif kind == "protect_ro":
                space.mprotect(BASE + op[1] * PAGE_SIZE, PAGE_SIZE,
                               PROT_READ)
            elif kind == "protect_rw":
                space.mprotect(BASE + op[1] * PAGE_SIZE, PAGE_SIZE,
                               PROT_RW)
            elif kind == "store":
                space.store_word(BASE + op[1] * 4, op[2])
            elif kind == "load":
                return ("value", space.load_word(BASE + op[1] * 4))
            elif kind == "fork_write":
                child = space.fork()
                child.store_word(BASE + op[1] * PAGE_SIZE, 0xDEAD)
                snap = child.read_bytes(BASE + op[1] * PAGE_SIZE, 8)
                child.destroy()
                return ("child", snap)
        except (PageFaultError, Exception) as exc:
            return ("raise", type(exc).__name__)
        return ("ok",)

    def snapshot(self):
        out = []
        for page in sorted(self.mapped):
            out.append(self.space.read_bytes(
                BASE + page * PAGE_SIZE, PAGE_SIZE, force=True))
        return out


class TestMirrorProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_OPS, max_size=40))
    def test_tlb_on_off_equivalence(self, ops):
        on, off = _Mirror(True), _Mirror(False)
        for op in ops:
            assert on.apply(op) == off.apply(op)
        assert on.snapshot() == off.snapshot()
        assert not (set(on.space.tlb) -
                    {BASE // PAGE_SIZE + p for p in range(_PAGES)})
